//! RV32IM instruction set: decoder and assembler helpers.
//!
//! The SCF's Compute Units are "clusters of one or more RISC-V cores
//! oriented on computation, such as Snitch or CV32E40P" (§VII) — both
//! RV32IM(+extensions) machines. This module implements the full RV32I base
//! plus the M multiply/divide extension: a [`decode`] function from raw
//! instruction words, and the [`asm`] encoder helpers the tests and kernels
//! use to build programs without an external toolchain.

use crate::error::ScfError;
use crate::Result;

/// Register index (x0–x31).
pub type Reg = u8;

/// A decoded RV32IM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Load upper immediate.
    Lui { rd: Reg, imm: i32 },
    /// Add upper immediate to PC.
    Auipc { rd: Reg, imm: i32 },
    /// Jump and link.
    Jal { rd: Reg, offset: i32 },
    /// Jump and link register.
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    /// Conditional branch.
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Memory load.
    Load {
        width: MemWidth,
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// Memory store.
    Store {
        width: MemWidth,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// ALU operation with immediate.
    OpImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Register-register ALU operation.
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// M-extension multiply/divide.
    MulDiv {
        op: MulDivOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Environment call (halts the modelled core).
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// Memory fence (no-op in this single-issue model).
    Fence,
    /// Zicsr CSR access.
    Csr {
        op: CsrOp,
        rd: Reg,
        /// `rs1` for register forms, the 5-bit zimm for immediate forms.
        src: Reg,
        csr: u16,
    },
}

/// Zicsr operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrOp {
    /// Read/write.
    Rw,
    /// Read and set bits.
    Rs,
    /// Read and clear bits.
    Rc,
    /// Immediate read/write.
    Rwi,
    /// Immediate read-set.
    Rsi,
    /// Immediate read-clear.
    Rci,
}

/// Branch condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// Load/store access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemWidth {
    /// Signed byte.
    B,
    /// Signed half-word.
    H,
    /// Word.
    W,
    /// Unsigned byte.
    Bu,
    /// Unsigned half-word.
    Hu,
}

/// Base-ISA ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition (SUB in register form with the alternate funct7).
    Add,
    /// Subtraction (register form only).
    Sub,
    /// Shift left logical.
    Sll,
    /// Set if signed less-than.
    Slt,
    /// Set if unsigned less-than.
    Sltu,
    /// Bitwise XOR.
    Xor,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Bitwise OR.
    Or,
    /// Bitwise AND.
    And,
}

/// M-extension operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulDivOp {
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of signed × signed.
    Mulh,
    /// High 32 bits of signed × unsigned.
    Mulhsu,
    /// High 32 bits of unsigned × unsigned.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

#[inline]
fn bits(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

/// Decodes one RV32IM instruction word.
///
/// # Errors
///
/// Returns [`ScfError::IllegalInstruction`] (with `pc`) for encodings
/// outside RV32IM.
pub fn decode(word: u32, pc: u32) -> Result<Instr> {
    let illegal = || ScfError::IllegalInstruction { pc, word };
    let opcode = bits(word, 6, 0);
    let rd = bits(word, 11, 7) as Reg;
    let funct3 = bits(word, 14, 12);
    let rs1 = bits(word, 19, 15) as Reg;
    let rs2 = bits(word, 24, 20) as Reg;
    let funct7 = bits(word, 31, 25);

    let imm_i = sign_extend(bits(word, 31, 20), 12);
    let imm_s = sign_extend((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12);
    let imm_b = sign_extend(
        (bits(word, 31, 31) << 12)
            | (bits(word, 7, 7) << 11)
            | (bits(word, 30, 25) << 5)
            | (bits(word, 11, 8) << 1),
        13,
    );
    let imm_u = (word & 0xFFFF_F000) as i32;
    let imm_j = sign_extend(
        (bits(word, 31, 31) << 20)
            | (bits(word, 19, 12) << 12)
            | (bits(word, 20, 20) << 11)
            | (bits(word, 30, 21) << 1),
        21,
    );

    match opcode {
        0b0110111 => Ok(Instr::Lui { rd, imm: imm_u }),
        0b0010111 => Ok(Instr::Auipc { rd, imm: imm_u }),
        0b1101111 => Ok(Instr::Jal { rd, offset: imm_j }),
        0b1100111 if funct3 == 0 => Ok(Instr::Jalr {
            rd,
            rs1,
            offset: imm_i,
        }),
        0b1100011 => {
            let cond = match funct3 {
                0b000 => BranchCond::Eq,
                0b001 => BranchCond::Ne,
                0b100 => BranchCond::Lt,
                0b101 => BranchCond::Ge,
                0b110 => BranchCond::Ltu,
                0b111 => BranchCond::Geu,
                _ => return Err(illegal()),
            };
            Ok(Instr::Branch {
                cond,
                rs1,
                rs2,
                offset: imm_b,
            })
        }
        0b0000011 => {
            let width = match funct3 {
                0b000 => MemWidth::B,
                0b001 => MemWidth::H,
                0b010 => MemWidth::W,
                0b100 => MemWidth::Bu,
                0b101 => MemWidth::Hu,
                _ => return Err(illegal()),
            };
            Ok(Instr::Load {
                width,
                rd,
                rs1,
                offset: imm_i,
            })
        }
        0b0100011 => {
            let width = match funct3 {
                0b000 => MemWidth::B,
                0b001 => MemWidth::H,
                0b010 => MemWidth::W,
                _ => return Err(illegal()),
            };
            Ok(Instr::Store {
                width,
                rs1,
                rs2,
                offset: imm_s,
            })
        }
        0b0010011 => {
            let op = match funct3 {
                0b000 => AluOp::Add,
                0b010 => AluOp::Slt,
                0b011 => AluOp::Sltu,
                0b100 => AluOp::Xor,
                0b110 => AluOp::Or,
                0b111 => AluOp::And,
                0b001 if funct7 == 0 => AluOp::Sll,
                0b101 if funct7 == 0 => AluOp::Srl,
                0b101 if funct7 == 0b0100000 => AluOp::Sra,
                _ => return Err(illegal()),
            };
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => rs2 as i32, // shamt
                _ => imm_i,
            };
            Ok(Instr::OpImm { op, rd, rs1, imm })
        }
        0b0110011 => {
            if funct7 == 0b0000001 {
                let op = match funct3 {
                    0b000 => MulDivOp::Mul,
                    0b001 => MulDivOp::Mulh,
                    0b010 => MulDivOp::Mulhsu,
                    0b011 => MulDivOp::Mulhu,
                    0b100 => MulDivOp::Div,
                    0b101 => MulDivOp::Divu,
                    0b110 => MulDivOp::Rem,
                    0b111 => MulDivOp::Remu,
                    _ => return Err(illegal()),
                };
                return Ok(Instr::MulDiv { op, rd, rs1, rs2 });
            }
            let op = match (funct3, funct7) {
                (0b000, 0b0000000) => AluOp::Add,
                (0b000, 0b0100000) => AluOp::Sub,
                (0b001, 0b0000000) => AluOp::Sll,
                (0b010, 0b0000000) => AluOp::Slt,
                (0b011, 0b0000000) => AluOp::Sltu,
                (0b100, 0b0000000) => AluOp::Xor,
                (0b101, 0b0000000) => AluOp::Srl,
                (0b101, 0b0100000) => AluOp::Sra,
                (0b110, 0b0000000) => AluOp::Or,
                (0b111, 0b0000000) => AluOp::And,
                _ => return Err(illegal()),
            };
            Ok(Instr::Op { op, rd, rs1, rs2 })
        }
        0b1110011 => {
            let csr = bits(word, 31, 20) as u16;
            let op = match funct3 {
                0b000 => {
                    return match csr {
                        0 => Ok(Instr::Ecall),
                        1 => Ok(Instr::Ebreak),
                        _ => Err(illegal()),
                    }
                }
                0b001 => CsrOp::Rw,
                0b010 => CsrOp::Rs,
                0b011 => CsrOp::Rc,
                0b101 => CsrOp::Rwi,
                0b110 => CsrOp::Rsi,
                0b111 => CsrOp::Rci,
                _ => return Err(illegal()),
            };
            Ok(Instr::Csr {
                op,
                rd,
                src: rs1,
                csr,
            })
        }
        0b0001111 => Ok(Instr::Fence),
        _ => Err(illegal()),
    }
}

/// Encoder helpers for building RV32IM programs in tests and kernels.
///
/// Panics (debug assertions) on out-of-range register or immediate values —
/// these helpers are for statically-known programs.
pub mod asm {
    use super::Reg;

    fn r(funct7: u32, rs2: Reg, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
        debug_assert!(rd < 32 && rs1 < 32 && rs2 < 32, "register out of range");
        (funct7 << 25)
            | ((rs2 as u32) << 20)
            | ((rs1 as u32) << 15)
            | (funct3 << 12)
            | ((rd as u32) << 7)
            | opcode
    }

    fn i(imm: i32, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
        debug_assert!((-2048..=2047).contains(&imm), "I-immediate out of range");
        (((imm as u32) & 0xFFF) << 20)
            | ((rs1 as u32) << 15)
            | (funct3 << 12)
            | ((rd as u32) << 7)
            | opcode
    }

    fn s(imm: i32, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
        debug_assert!((-2048..=2047).contains(&imm), "S-immediate out of range");
        let imm = imm as u32;
        ((imm >> 5 & 0x7F) << 25)
            | ((rs2 as u32) << 20)
            | ((rs1 as u32) << 15)
            | (funct3 << 12)
            | ((imm & 0x1F) << 7)
            | opcode
    }

    fn b(imm: i32, rs2: Reg, rs1: Reg, funct3: u32) -> u32 {
        debug_assert!(
            (-4096..=4095).contains(&imm) && imm % 2 == 0,
            "B-immediate out of range"
        );
        let imm = imm as u32;
        ((imm >> 12 & 1) << 31)
            | ((imm >> 5 & 0x3F) << 25)
            | ((rs2 as u32) << 20)
            | ((rs1 as u32) << 15)
            | (funct3 << 12)
            | ((imm >> 1 & 0xF) << 8)
            | ((imm >> 11 & 1) << 7)
            | 0b1100011
    }

    /// `lui rd, imm` (imm is the value for bits 31:12).
    pub fn lui(rd: Reg, imm20: i32) -> u32 {
        (((imm20 as u32) & 0xF_FFFF) << 12) | ((rd as u32) << 7) | 0b0110111
    }

    /// `auipc rd, imm`.
    pub fn auipc(rd: Reg, imm20: i32) -> u32 {
        (((imm20 as u32) & 0xF_FFFF) << 12) | ((rd as u32) << 7) | 0b0010111
    }

    /// `jal rd, offset` (byte offset, even).
    pub fn jal(rd: Reg, offset: i32) -> u32 {
        debug_assert!(offset % 2 == 0, "JAL offset must be even");
        let imm = offset as u32;
        ((imm >> 20 & 1) << 31)
            | ((imm >> 1 & 0x3FF) << 21)
            | ((imm >> 11 & 1) << 20)
            | ((imm >> 12 & 0xFF) << 12)
            | ((rd as u32) << 7)
            | 0b1101111
    }

    /// `jalr rd, rs1, offset`.
    pub fn jalr(rd: Reg, rs1: Reg, offset: i32) -> u32 {
        i(offset, rs1, 0b000, rd, 0b1100111)
    }

    /// `beq rs1, rs2, offset`.
    pub fn beq(rs1: Reg, rs2: Reg, offset: i32) -> u32 {
        b(offset, rs2, rs1, 0b000)
    }

    /// `bne rs1, rs2, offset`.
    pub fn bne(rs1: Reg, rs2: Reg, offset: i32) -> u32 {
        b(offset, rs2, rs1, 0b001)
    }

    /// `blt rs1, rs2, offset`.
    pub fn blt(rs1: Reg, rs2: Reg, offset: i32) -> u32 {
        b(offset, rs2, rs1, 0b100)
    }

    /// `bge rs1, rs2, offset`.
    pub fn bge(rs1: Reg, rs2: Reg, offset: i32) -> u32 {
        b(offset, rs2, rs1, 0b101)
    }

    /// `bltu rs1, rs2, offset`.
    pub fn bltu(rs1: Reg, rs2: Reg, offset: i32) -> u32 {
        b(offset, rs2, rs1, 0b110)
    }

    /// `bgeu rs1, rs2, offset`.
    pub fn bgeu(rs1: Reg, rs2: Reg, offset: i32) -> u32 {
        b(offset, rs2, rs1, 0b111)
    }

    /// `lw rd, offset(rs1)`.
    pub fn lw(rd: Reg, rs1: Reg, offset: i32) -> u32 {
        i(offset, rs1, 0b010, rd, 0b0000011)
    }

    /// `lb rd, offset(rs1)`.
    pub fn lb(rd: Reg, rs1: Reg, offset: i32) -> u32 {
        i(offset, rs1, 0b000, rd, 0b0000011)
    }

    /// `lbu rd, offset(rs1)`.
    pub fn lbu(rd: Reg, rs1: Reg, offset: i32) -> u32 {
        i(offset, rs1, 0b100, rd, 0b0000011)
    }

    /// `lh rd, offset(rs1)`.
    pub fn lh(rd: Reg, rs1: Reg, offset: i32) -> u32 {
        i(offset, rs1, 0b001, rd, 0b0000011)
    }

    /// `lhu rd, offset(rs1)`.
    pub fn lhu(rd: Reg, rs1: Reg, offset: i32) -> u32 {
        i(offset, rs1, 0b101, rd, 0b0000011)
    }

    /// `sw rs2, offset(rs1)`.
    pub fn sw(rs2: Reg, rs1: Reg, offset: i32) -> u32 {
        s(offset, rs2, rs1, 0b010, 0b0100011)
    }

    /// `sb rs2, offset(rs1)`.
    pub fn sb(rs2: Reg, rs1: Reg, offset: i32) -> u32 {
        s(offset, rs2, rs1, 0b000, 0b0100011)
    }

    /// `sh rs2, offset(rs1)`.
    pub fn sh(rs2: Reg, rs1: Reg, offset: i32) -> u32 {
        s(offset, rs2, rs1, 0b001, 0b0100011)
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(rd: Reg, rs1: Reg, imm: i32) -> u32 {
        i(imm, rs1, 0b000, rd, 0b0010011)
    }

    /// `slti rd, rs1, imm`.
    pub fn slti(rd: Reg, rs1: Reg, imm: i32) -> u32 {
        i(imm, rs1, 0b010, rd, 0b0010011)
    }

    /// `xori rd, rs1, imm`.
    pub fn xori(rd: Reg, rs1: Reg, imm: i32) -> u32 {
        i(imm, rs1, 0b100, rd, 0b0010011)
    }

    /// `ori rd, rs1, imm`.
    pub fn ori(rd: Reg, rs1: Reg, imm: i32) -> u32 {
        i(imm, rs1, 0b110, rd, 0b0010011)
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(rd: Reg, rs1: Reg, imm: i32) -> u32 {
        i(imm, rs1, 0b111, rd, 0b0010011)
    }

    /// `slli rd, rs1, shamt`.
    pub fn slli(rd: Reg, rs1: Reg, shamt: u8) -> u32 {
        debug_assert!(shamt < 32, "shift amount out of range");
        i(shamt as i32, rs1, 0b001, rd, 0b0010011)
    }

    /// `srli rd, rs1, shamt`.
    pub fn srli(rd: Reg, rs1: Reg, shamt: u8) -> u32 {
        debug_assert!(shamt < 32, "shift amount out of range");
        i(shamt as i32, rs1, 0b101, rd, 0b0010011)
    }

    /// `srai rd, rs1, shamt`.
    pub fn srai(rd: Reg, rs1: Reg, shamt: u8) -> u32 {
        debug_assert!(shamt < 32, "shift amount out of range");
        i((shamt as i32) | (0b0100000 << 5), rs1, 0b101, rd, 0b0010011)
    }

    /// `add rd, rs1, rs2`.
    pub fn add(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(0, rs2, rs1, 0b000, rd, 0b0110011)
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(0b0100000, rs2, rs1, 0b000, rd, 0b0110011)
    }

    /// `sll rd, rs1, rs2`.
    pub fn sll(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(0, rs2, rs1, 0b001, rd, 0b0110011)
    }

    /// `slt rd, rs1, rs2`.
    pub fn slt(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(0, rs2, rs1, 0b010, rd, 0b0110011)
    }

    /// `sltu rd, rs1, rs2`.
    pub fn sltu(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(0, rs2, rs1, 0b011, rd, 0b0110011)
    }

    /// `xor rd, rs1, rs2`.
    pub fn xor(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(0, rs2, rs1, 0b100, rd, 0b0110011)
    }

    /// `srl rd, rs1, rs2`.
    pub fn srl(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(0, rs2, rs1, 0b101, rd, 0b0110011)
    }

    /// `sra rd, rs1, rs2`.
    pub fn sra(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(0b0100000, rs2, rs1, 0b101, rd, 0b0110011)
    }

    /// `or rd, rs1, rs2`.
    pub fn or(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(0, rs2, rs1, 0b110, rd, 0b0110011)
    }

    /// `and rd, rs1, rs2`.
    pub fn and(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(0, rs2, rs1, 0b111, rd, 0b0110011)
    }

    /// `mul rd, rs1, rs2`.
    pub fn mul(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(1, rs2, rs1, 0b000, rd, 0b0110011)
    }

    /// `mulh rd, rs1, rs2`.
    pub fn mulh(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(1, rs2, rs1, 0b001, rd, 0b0110011)
    }

    /// `mulhu rd, rs1, rs2`.
    pub fn mulhu(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(1, rs2, rs1, 0b011, rd, 0b0110011)
    }

    /// `div rd, rs1, rs2`.
    pub fn div(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(1, rs2, rs1, 0b100, rd, 0b0110011)
    }

    /// `divu rd, rs1, rs2`.
    pub fn divu(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(1, rs2, rs1, 0b101, rd, 0b0110011)
    }

    /// `rem rd, rs1, rs2`.
    pub fn rem(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(1, rs2, rs1, 0b110, rd, 0b0110011)
    }

    /// `remu rd, rs1, rs2`.
    pub fn remu(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        r(1, rs2, rs1, 0b111, rd, 0b0110011)
    }

    /// `csrrs rd, csr, rs1`.
    pub fn csrrs(rd: Reg, csr: u16, rs1: Reg) -> u32 {
        ((csr as u32) << 20) | ((rs1 as u32) << 15) | (0b010 << 12) | ((rd as u32) << 7) | 0b1110011
    }

    /// `csrrw rd, csr, rs1`.
    pub fn csrrw(rd: Reg, csr: u16, rs1: Reg) -> u32 {
        ((csr as u32) << 20) | ((rs1 as u32) << 15) | (0b001 << 12) | ((rd as u32) << 7) | 0b1110011
    }

    /// `rdcycle rd` (pseudo-instruction: `csrrs rd, cycle, x0`).
    pub fn rdcycle(rd: Reg) -> u32 {
        csrrs(rd, 0xC00, 0)
    }

    /// `rdinstret rd`.
    pub fn rdinstret(rd: Reg) -> u32 {
        csrrs(rd, 0xC02, 0)
    }

    /// `csrr rd, mhartid`.
    pub fn rdhartid(rd: Reg) -> u32 {
        csrrs(rd, 0xF14, 0)
    }

    /// `ecall`.
    pub fn ecall() -> u32 {
        0b1110011
    }

    /// `ebreak`.
    pub fn ebreak() -> u32 {
        (1 << 20) | 0b1110011
    }

    /// `nop` (`addi x0, x0, 0`).
    pub fn nop() -> u32 {
        addi(0, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_round_trip_rtype() {
        let word = asm::add(3, 1, 2);
        assert_eq!(
            decode(word, 0).expect("valid"),
            Instr::Op {
                op: AluOp::Add,
                rd: 3,
                rs1: 1,
                rs2: 2
            }
        );
        let word = asm::sub(5, 6, 7);
        assert_eq!(
            decode(word, 0).expect("valid"),
            Instr::Op {
                op: AluOp::Sub,
                rd: 5,
                rs1: 6,
                rs2: 7
            }
        );
    }

    #[test]
    fn decode_itype_negative_imm() {
        let word = asm::addi(1, 2, -5);
        assert_eq!(
            decode(word, 0).expect("valid"),
            Instr::OpImm {
                op: AluOp::Add,
                rd: 1,
                rs1: 2,
                imm: -5
            }
        );
    }

    #[test]
    fn decode_known_golden_words() {
        // Golden encodings cross-checked against the RISC-V spec examples.
        // addi x1, x0, 1  => 0x00100093
        assert_eq!(asm::addi(1, 0, 1), 0x0010_0093);
        // add x3, x1, x2  => 0x002081B3
        assert_eq!(asm::add(3, 1, 2), 0x0020_81B3);
        // lui x5, 0x12345 => 0x123452B7
        assert_eq!(asm::lui(5, 0x12345), 0x1234_52B7);
        // ecall           => 0x00000073
        assert_eq!(asm::ecall(), 0x0000_0073);
        // lw x6, 8(x2)    => 0x00812303
        assert_eq!(asm::lw(6, 2, 8), 0x0081_2303);
        // sw x6, 12(x2)   => 0x00612623
        assert_eq!(asm::sw(6, 2, 12), 0x0061_2623);
        // mul x7, x5, x6  => 0x026283B3
        assert_eq!(asm::mul(7, 5, 6), 0x0262_83B3);
    }

    #[test]
    fn branch_offsets_round_trip() {
        for off in [-4096, -128, -2, 2, 64, 4094] {
            let word = asm::beq(1, 2, off);
            match decode(word, 0).expect("valid") {
                Instr::Branch {
                    cond: BranchCond::Eq,
                    rs1: 1,
                    rs2: 2,
                    offset,
                } => assert_eq!(offset, off, "offset {off}"),
                other => panic!("decoded {other:?}"),
            }
        }
    }

    #[test]
    fn jal_offsets_round_trip() {
        for off in [-1048576, -2048, -2, 2, 2048, 1048574] {
            let word = asm::jal(1, off);
            match decode(word, 0).expect("valid") {
                Instr::Jal { rd: 1, offset } => assert_eq!(offset, off, "offset {off}"),
                other => panic!("decoded {other:?}"),
            }
        }
    }

    #[test]
    fn store_offsets_round_trip() {
        for off in [-2048, -1, 0, 1, 2047] {
            let word = asm::sw(3, 4, off);
            match decode(word, 0).expect("valid") {
                Instr::Store {
                    width: MemWidth::W,
                    rs1: 4,
                    rs2: 3,
                    offset,
                } => assert_eq!(offset, off),
                other => panic!("decoded {other:?}"),
            }
        }
    }

    #[test]
    fn shifts_decode_with_shamt() {
        assert_eq!(
            decode(asm::slli(1, 2, 5), 0).expect("valid"),
            Instr::OpImm {
                op: AluOp::Sll,
                rd: 1,
                rs1: 2,
                imm: 5
            }
        );
        assert_eq!(
            decode(asm::srai(1, 2, 31), 0).expect("valid"),
            Instr::OpImm {
                op: AluOp::Sra,
                rd: 1,
                rs1: 2,
                imm: 31
            }
        );
    }

    #[test]
    fn muldiv_family_decodes() {
        let cases = [
            (asm::mul(1, 2, 3), MulDivOp::Mul),
            (asm::mulh(1, 2, 3), MulDivOp::Mulh),
            (asm::mulhu(1, 2, 3), MulDivOp::Mulhu),
            (asm::div(1, 2, 3), MulDivOp::Div),
            (asm::divu(1, 2, 3), MulDivOp::Divu),
            (asm::rem(1, 2, 3), MulDivOp::Rem),
            (asm::remu(1, 2, 3), MulDivOp::Remu),
        ];
        for (word, want) in cases {
            match decode(word, 0).expect("valid") {
                Instr::MulDiv { op, .. } => assert_eq!(op, want),
                other => panic!("decoded {other:?}"),
            }
        }
    }

    #[test]
    fn illegal_instructions_rejected() {
        assert!(decode(0x0000_0000, 0x40).is_err());
        assert!(decode(0xFFFF_FFFF, 0x40).is_err());
        if let Err(ScfError::IllegalInstruction { pc, .. }) = decode(0, 0x40) {
            assert_eq!(pc, 0x40);
        } else {
            panic!("expected IllegalInstruction");
        }
    }

    #[test]
    fn system_instructions() {
        assert_eq!(decode(asm::ecall(), 0).expect("valid"), Instr::Ecall);
        assert_eq!(decode(asm::ebreak(), 0).expect("valid"), Instr::Ebreak);
    }

    #[test]
    fn csr_instructions_decode() {
        assert_eq!(
            decode(asm::rdcycle(5), 0).expect("valid"),
            Instr::Csr {
                op: CsrOp::Rs,
                rd: 5,
                src: 0,
                csr: 0xC00
            }
        );
        assert_eq!(
            decode(asm::csrrw(1, 0x340, 2), 0).expect("valid"),
            Instr::Csr {
                op: CsrOp::Rw,
                rd: 1,
                src: 2,
                csr: 0x340
            }
        );
    }
}
