//! # f2-scf
//!
//! Reproduction of the §VII thrust of the ICSC Flagship 2 paper: the
//! **Scalable Compute Fabric (SCF)** — a RISC-V heterogeneous acceleration
//! fabric for >1 W HPC deep-learning inference — and its prototype
//! **Compute Unit** (Fig. 9: GF12nm, ~1.21 mm², up to 150 GFLOPS and
//! 1.5 TFLOPS/W at 460 MHz / 0.55 V on BFloat16 transformer blocks).
//!
//! * [`isa`] / [`cpu`] — a from-scratch RV32IM instruction-set simulator
//!   (decoder, encoder helpers and a cycle-counting core model) standing in
//!   for the Snitch/CV32E40P compute cores.
//! * [`memory`] — banked L1 TCDM with cycle-accurate bank-conflict
//!   arbitration, plus flat memories and a DMA model.
//! * [`tensor_core`] — a RedMule-style bf16 GEMM engine with f32
//!   accumulation: bit-exact results plus cycle/energy accounting.
//! * [`cluster`] — the Compute Unit: cores + TCDM + DMA + tensor core
//!   executing full transformer blocks (GEMMs on the tensor core,
//!   softmax/layernorm on the cores).
//! * [`noc`] / [`fabric`] — a FlooNoC-style interconnect and the scaled-up
//!   SCF of Fig. 8: many CUs, a CVA6-class host, HBM; throughput scaling.
//! * [`power`] — the GF12 energy model behind the TFLOPS/W figures.
//!
//! ```
//! use f2_scf::isa::asm;
//! use f2_scf::cpu::{Cpu, HaltReason};
//! use f2_scf::memory::FlatMemory;
//!
//! // A 3-instruction RV32 program: x5 = 2 + 40.
//! let program = [asm::addi(5, 0, 2), asm::addi(5, 5, 40), asm::ecall()];
//! let mut mem = FlatMemory::with_program(0, &program);
//! let mut cpu = Cpu::new(0);
//! let run = cpu.run(&mut mem, 100).expect("valid program");
//! assert_eq!(run.halt, HaltReason::Ecall);
//! assert_eq!(cpu.reg(5), 42);
//! ```

pub mod cluster;
pub mod cpu;
pub mod error;
pub mod experiments;
pub mod fabric;
pub mod isa;
pub mod memory;
pub mod multicore;
pub mod noc;
pub mod power;
pub mod tensor_core;
pub mod vector;

pub use error::ScfError;

/// Convenience result alias used across `f2-scf`.
pub type Result<T> = std::result::Result<T, ScfError>;
