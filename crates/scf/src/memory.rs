//! Memory models: flat byte memory, banked L1 TCDM and a cluster DMA.
//!
//! §VII: Compute Units share "a local L1 SRAM to enable coordinated
//! computation". Snitch-style clusters implement that L1 as a
//! tightly-coupled data memory (TCDM) of word-interleaved SRAM banks; when
//! two requesters hit the same bank in one cycle, one stalls. [`Tcdm`]
//! counts exactly those conflicts; [`Dma`] models the HBM-to-TCDM transfers
//! that double-buffer weights.

use crate::error::ScfError;
use crate::Result;
use std::cell::RefCell;

// Zeroed-buffer recycling for simulator state.
//
// Experiment sweeps and the bench suite construct and drop whole clusters in
// a tight loop; routing the multi-hundred-KiB state buffers through the
// system allocator each time makes construction cost depend on allocator
// tuning state (observed on 1-vCPU CI machines as a sustained minor-fault
// storm: glibc trims the freed buffers and every page refaults on the next
// iteration). Instead, dropped buffers return — re-zeroed only over their
// dirty span — to a small thread-local pool, making construction
// O(touched state) and allocator-independent. Pool invariant: every stored
// buffer is entirely zero.

const POOL_CAP: usize = 32;

thread_local! {
    static BYTE_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
    static WORD_POOL: RefCell<Vec<Vec<u32>>> = const { RefCell::new(Vec::new()) };
}

fn take_zeroed_bytes(len: usize) -> Vec<u8> {
    BYTE_POOL
        .with(|p| {
            let mut p = p.borrow_mut();
            p.iter()
                .position(|b| b.len() == len)
                .map(|i| p.swap_remove(i))
        })
        .unwrap_or_else(|| vec![0; len])
}

fn recycle_bytes(mut buf: Vec<u8>, dirty: usize) {
    BYTE_POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < POOL_CAP && !buf.is_empty() {
            let hi = dirty.min(buf.len());
            buf[..hi].fill(0);
            p.push(buf);
        }
    });
}

fn take_zeroed_words(len: usize) -> Vec<u32> {
    WORD_POOL
        .with(|p| {
            let mut p = p.borrow_mut();
            p.iter()
                .position(|b| b.len() == len)
                .map(|i| p.swap_remove(i))
        })
        .unwrap_or_else(|| vec![0; len])
}

fn recycle_words(mut buf: Vec<u32>, dirty: usize) {
    WORD_POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < POOL_CAP && !buf.is_empty() {
            let hi = dirty.min(buf.len());
            buf[..hi].fill(0);
            p.push(buf);
        }
    });
}

/// Byte-addressable memory interface used by the ISS core.
pub trait Memory {
    /// Fast-path hook: returns the underlying [`FlatMemory`] when the
    /// implementation is exactly a flat memory with no routing on top.
    /// [`crate::cpu::Cpu::run`] uses this to dispatch into a non-generic
    /// engine entry compiled once inside this crate, so hot-loop code
    /// quality does not depend on which downstream crate monomorphized
    /// the generic entry point.
    fn as_flat(&mut self) -> Option<&mut FlatMemory> {
        None
    }

    /// Loads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`ScfError::MemoryFault`] for unmapped addresses.
    fn load_u8(&mut self, addr: u32) -> Result<u8>;

    /// Stores one byte.
    ///
    /// # Errors
    ///
    /// Returns [`ScfError::MemoryFault`] for unmapped addresses.
    fn store_u8(&mut self, addr: u32, value: u8) -> Result<()>;

    /// Loads a 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`ScfError::MemoryFault`] for unmapped/misaligned addresses.
    fn load_u32(&mut self, addr: u32) -> Result<u32> {
        if !addr.is_multiple_of(4) {
            return Err(ScfError::MemoryFault {
                addr,
                cause: "misaligned word load",
            });
        }
        let b0 = self.load_u8(addr)? as u32;
        let b1 = self.load_u8(addr + 1)? as u32;
        let b2 = self.load_u8(addr + 2)? as u32;
        let b3 = self.load_u8(addr + 3)? as u32;
        Ok(b0 | (b1 << 8) | (b2 << 16) | (b3 << 24))
    }

    /// Stores a 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`ScfError::MemoryFault`] for unmapped/misaligned addresses.
    fn store_u32(&mut self, addr: u32, value: u32) -> Result<()> {
        if !addr.is_multiple_of(4) {
            return Err(ScfError::MemoryFault {
                addr,
                cause: "misaligned word store",
            });
        }
        self.store_u8(addr, value as u8)?;
        self.store_u8(addr + 1, (value >> 8) as u8)?;
        self.store_u8(addr + 2, (value >> 16) as u8)?;
        self.store_u8(addr + 3, (value >> 24) as u8)?;
        Ok(())
    }

    /// Loads a 16-bit little-endian half-word.
    ///
    /// # Errors
    ///
    /// Returns [`ScfError::MemoryFault`] for unmapped/misaligned addresses.
    fn load_u16(&mut self, addr: u32) -> Result<u16> {
        if !addr.is_multiple_of(2) {
            return Err(ScfError::MemoryFault {
                addr,
                cause: "misaligned half-word load",
            });
        }
        let b0 = self.load_u8(addr)? as u16;
        let b1 = self.load_u8(addr + 1)? as u16;
        Ok(b0 | (b1 << 8))
    }

    /// Stores a 16-bit little-endian half-word.
    ///
    /// # Errors
    ///
    /// Returns [`ScfError::MemoryFault`] for unmapped/misaligned addresses.
    fn store_u16(&mut self, addr: u32, value: u16) -> Result<()> {
        if !addr.is_multiple_of(2) {
            return Err(ScfError::MemoryFault {
                addr,
                cause: "misaligned half-word store",
            });
        }
        self.store_u8(addr, value as u8)?;
        self.store_u8(addr + 1, (value >> 8) as u8)?;
        Ok(())
    }
}

/// A flat byte memory of fixed size starting at address 0.
///
/// Equality compares contents only. The backing buffer comes from (and
/// returns to) a thread-local recycling pool; `dirty_hi` conservatively
/// bounds the bytes that may be nonzero so re-zeroing on drop touches only
/// the written span.
#[derive(Debug, Clone)]
pub struct FlatMemory {
    bytes: Vec<u8>,
    /// Exclusive upper bound of possibly-nonzero bytes.
    dirty_hi: u32,
}

impl PartialEq for FlatMemory {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for FlatMemory {}

impl Drop for FlatMemory {
    fn drop(&mut self) {
        recycle_bytes(std::mem::take(&mut self.bytes), self.dirty_hi as usize);
    }
}

impl FlatMemory {
    /// Creates a zeroed memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        Self {
            bytes: take_zeroed_bytes(size),
            dirty_hi: 0,
        }
    }

    /// Creates a 64 KiB memory with `program` (instruction words) loaded at
    /// `base`.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit.
    pub fn with_program(base: u32, program: &[u32]) -> Self {
        let mut mem = Self::new(64 * 1024);
        mem.load_program(base, program);
        mem
    }

    /// Writes `program` words starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit.
    pub fn load_program(&mut self, base: u32, program: &[u32]) {
        for (i, &word) in program.iter().enumerate() {
            let addr = base as usize + i * 4;
            assert!(addr + 4 <= self.bytes.len(), "program exceeds memory");
            self.bytes[addr..addr + 4].copy_from_slice(&word.to_le_bytes());
            self.dirty_hi = self.dirty_hi.max((addr + 4) as u32);
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl Memory for FlatMemory {
    fn as_flat(&mut self) -> Option<&mut FlatMemory> {
        Some(self)
    }

    fn load_u8(&mut self, addr: u32) -> Result<u8> {
        self.bytes
            .get(addr as usize)
            .copied()
            .ok_or(ScfError::MemoryFault {
                addr,
                cause: "load beyond memory size",
            })
    }

    fn store_u8(&mut self, addr: u32, value: u8) -> Result<()> {
        match self.bytes.get_mut(addr as usize) {
            Some(slot) => {
                *slot = value;
                self.dirty_hi = self.dirty_hi.max(addr.saturating_add(1));
                Ok(())
            }
            None => Err(ScfError::MemoryFault {
                addr,
                cause: "store beyond memory size",
            }),
        }
    }

    // Single-slice fast paths: the trait defaults decompose into per-byte
    // accesses, which makes the instruction fetch four bounds checks per
    // step — the hottest operation of the whole ISS.

    fn load_u32(&mut self, addr: u32) -> Result<u32> {
        if !addr.is_multiple_of(4) {
            return Err(ScfError::MemoryFault {
                addr,
                cause: "misaligned word load",
            });
        }
        match self.bytes.get(addr as usize..addr as usize + 4) {
            Some(b) => Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice"))),
            None => Err(ScfError::MemoryFault {
                addr,
                cause: "load beyond memory size",
            }),
        }
    }

    fn store_u32(&mut self, addr: u32, value: u32) -> Result<()> {
        if !addr.is_multiple_of(4) {
            return Err(ScfError::MemoryFault {
                addr,
                cause: "misaligned word store",
            });
        }
        match self.bytes.get_mut(addr as usize..addr as usize + 4) {
            Some(b) => {
                b.copy_from_slice(&value.to_le_bytes());
                self.dirty_hi = self.dirty_hi.max(addr.saturating_add(4));
                Ok(())
            }
            None => Err(ScfError::MemoryFault {
                addr,
                cause: "store beyond memory size",
            }),
        }
    }

    fn load_u16(&mut self, addr: u32) -> Result<u16> {
        if !addr.is_multiple_of(2) {
            return Err(ScfError::MemoryFault {
                addr,
                cause: "misaligned half-word load",
            });
        }
        match self.bytes.get(addr as usize..addr as usize + 2) {
            Some(b) => Ok(u16::from_le_bytes(b.try_into().expect("2-byte slice"))),
            None => Err(ScfError::MemoryFault {
                addr,
                cause: "load beyond memory size",
            }),
        }
    }

    fn store_u16(&mut self, addr: u32, value: u16) -> Result<()> {
        if !addr.is_multiple_of(2) {
            return Err(ScfError::MemoryFault {
                addr,
                cause: "misaligned half-word store",
            });
        }
        match self.bytes.get_mut(addr as usize..addr as usize + 2) {
            Some(b) => {
                b.copy_from_slice(&value.to_le_bytes());
                self.dirty_hi = self.dirty_hi.max(addr.saturating_add(2));
                Ok(())
            }
            None => Err(ScfError::MemoryFault {
                addr,
                cause: "store beyond memory size",
            }),
        }
    }
}

/// Banked, word-interleaved L1 TCDM with per-cycle conflict accounting.
///
/// Like [`FlatMemory`], the data array is pool-recycled: `dirty_hi` bounds
/// the word indices that may be nonzero, and dropping the TCDM re-zeroes
/// only that span before returning the buffer to the thread-local pool.
#[derive(Debug, Clone)]
pub struct Tcdm {
    banks: usize,
    words_per_bank: usize,
    data: Vec<u32>,
    /// Exclusive upper bound of possibly-nonzero word indices.
    dirty_hi: u32,
    // Bank access bookkeeping for the current cycle. `bank_busy[b]` is the
    // number of requests bank `b` served in `bank_stamp[b]`; a stale stamp
    // means "no requests this cycle", so `tick` is O(1) instead of clearing
    // every bank (the partitioned-stepping engine ticks per boundary event).
    current_cycle: u64,
    bank_stamp: Vec<u64>, // cycle the bank's busy count belongs to
    bank_busy: Vec<u64>,  // requests already served that cycle per bank
    conflict_stalls: u64,
    accesses: u64,
}

impl PartialEq for Tcdm {
    fn eq(&self, other: &Self) -> bool {
        // `dirty_hi` is a recycling detail, not observable state.
        self.banks == other.banks
            && self.words_per_bank == other.words_per_bank
            && self.data == other.data
            && self.current_cycle == other.current_cycle
            && self.bank_stamp == other.bank_stamp
            && self.bank_busy == other.bank_busy
            && self.conflict_stalls == other.conflict_stalls
            && self.accesses == other.accesses
    }
}

impl Drop for Tcdm {
    fn drop(&mut self) {
        recycle_words(std::mem::take(&mut self.data), self.dirty_hi as usize);
    }
}

impl Tcdm {
    /// Creates a TCDM of `banks` banks × `words_per_bank` 32-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`ScfError::InvalidConfig`] on zero geometry or a bank count
    /// that is not a power of two (interleaving requires it).
    pub fn new(banks: usize, words_per_bank: usize) -> Result<Self> {
        if banks == 0 || words_per_bank == 0 {
            return Err(ScfError::InvalidConfig(
                "TCDM geometry must be positive".to_string(),
            ));
        }
        if !banks.is_power_of_two() {
            return Err(ScfError::InvalidConfig(
                "TCDM bank count must be a power of two".to_string(),
            ));
        }
        Ok(Self {
            banks,
            words_per_bank,
            data: take_zeroed_words(banks * words_per_bank),
            dirty_hi: 0,
            current_cycle: 0,
            bank_stamp: vec![0; banks],
            bank_busy: vec![0; banks],
            conflict_stalls: 0,
            accesses: 0,
        })
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.banks * self.words_per_bank * 4
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Accesses (reads + writes) so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Cycles lost to bank conflicts so far.
    pub fn conflict_stalls(&self) -> u64 {
        self.conflict_stalls
    }

    /// Begins a new arbitration cycle. O(1): per-bank busy counts carry the
    /// cycle they were recorded in, so stale counts are ignored lazily by
    /// [`Tcdm::access`] instead of being cleared here.
    pub fn tick(&mut self, cycle: u64) {
        self.current_cycle = cycle;
    }

    fn bank_of(&self, word_index: usize) -> usize {
        word_index % self.banks
    }

    /// Word-granular access at `word_index`; returns the extra stall cycles
    /// caused by a bank conflict in this arbitration cycle.
    ///
    /// # Errors
    ///
    /// Returns [`ScfError::MemoryFault`] if the index is out of range.
    pub fn access(&mut self, word_index: usize) -> Result<u32> {
        if word_index >= self.data.len() {
            return Err(ScfError::MemoryFault {
                addr: (word_index * 4) as u32,
                cause: "TCDM index out of range",
            });
        }
        let bank = self.bank_of(word_index);
        if self.bank_stamp[bank] != self.current_cycle {
            self.bank_stamp[bank] = self.current_cycle;
            self.bank_busy[bank] = 0;
        }
        let stall = self.bank_busy[bank];
        self.bank_busy[bank] += 1;
        self.conflict_stalls += stall;
        self.accesses += 1;
        Ok(stall as u32)
    }

    /// Reads a word (no arbitration side effects).
    ///
    /// # Errors
    ///
    /// Returns [`ScfError::MemoryFault`] if out of range.
    pub fn read_word(&self, word_index: usize) -> Result<u32> {
        self.data
            .get(word_index)
            .copied()
            .ok_or(ScfError::MemoryFault {
                addr: (word_index * 4) as u32,
                cause: "TCDM index out of range",
            })
    }

    /// Writes a word (no arbitration side effects).
    ///
    /// # Errors
    ///
    /// Returns [`ScfError::MemoryFault`] if out of range.
    pub fn write_word(&mut self, word_index: usize, value: u32) -> Result<()> {
        match self.data.get_mut(word_index) {
            Some(slot) => {
                *slot = value;
                self.dirty_hi = self.dirty_hi.max((word_index as u32).saturating_add(1));
                Ok(())
            }
            None => Err(ScfError::MemoryFault {
                addr: (word_index * 4) as u32,
                cause: "TCDM index out of range",
            }),
        }
    }
}

/// Cluster DMA engine: bulk HBM ⇄ TCDM transfers at a fixed word rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dma {
    /// Words moved per cycle when streaming.
    pub words_per_cycle: f64,
    /// Fixed programming/setup cost per transfer (cycles).
    pub setup_cycles: u64,
}

impl Dma {
    /// A Snitch-cluster-class DMA: 512-bit bus (16 words/cycle), 20-cycle
    /// setup.
    pub fn cluster_default() -> Self {
        Self {
            words_per_cycle: 16.0,
            setup_cycles: 20,
        }
    }

    /// Cycles to transfer `bytes`.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        let words = bytes.div_ceil(4);
        self.setup_cycles + (words as f64 / self.words_per_cycle).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_memory_word_round_trip() {
        let mut m = FlatMemory::new(64);
        m.store_u32(8, 0xDEAD_BEEF).expect("in range");
        assert_eq!(m.load_u32(8).expect("in range"), 0xDEAD_BEEF);
        assert_eq!(m.load_u8(8).expect("in range"), 0xEF); // little endian
    }

    #[test]
    fn flat_memory_faults() {
        let mut m = FlatMemory::new(16);
        assert!(m.load_u8(16).is_err());
        assert!(m.store_u8(100, 1).is_err());
        assert!(m.load_u32(2).is_err()); // misaligned
        assert!(m.load_u16(1).is_err());
    }

    #[test]
    fn program_loading() {
        let m = FlatMemory::with_program(4, &[0x1111_1111, 0x2222_2222]);
        let mut m = m;
        assert_eq!(m.load_u32(4).expect("in range"), 0x1111_1111);
        assert_eq!(m.load_u32(8).expect("in range"), 0x2222_2222);
    }

    #[test]
    fn tcdm_conflicts_counted() {
        let mut t = Tcdm::new(4, 64).expect("valid");
        t.tick(1);
        // Two accesses to bank 0 (indices 0 and 4) in the same cycle: the
        // second stalls one cycle.
        assert_eq!(t.access(0).expect("in range"), 0);
        assert_eq!(t.access(4).expect("in range"), 1);
        // Different bank: no stall.
        assert_eq!(t.access(1).expect("in range"), 0);
        assert_eq!(t.conflict_stalls(), 1);
        // New cycle clears arbitration.
        t.tick(2);
        assert_eq!(t.access(0).expect("in range"), 0);
    }

    #[test]
    fn tcdm_geometry_checks() {
        assert!(Tcdm::new(0, 16).is_err());
        assert!(Tcdm::new(3, 16).is_err()); // not a power of two
        let t = Tcdm::new(8, 128).expect("valid");
        assert_eq!(t.capacity_bytes(), 8 * 128 * 4);
        assert_eq!(t.banks(), 8);
    }

    #[test]
    fn tcdm_data_round_trip() {
        let mut t = Tcdm::new(4, 8).expect("valid");
        t.write_word(5, 42).expect("in range");
        assert_eq!(t.read_word(5).expect("in range"), 42);
        assert!(t.read_word(32).is_err());
        assert!(t.write_word(32, 0).is_err());
        assert!(t.access(32).is_err());
    }

    #[test]
    fn dma_cycle_model() {
        let dma = Dma::cluster_default();
        assert_eq!(dma.transfer_cycles(0), 20);
        assert_eq!(dma.transfer_cycles(64), 20 + 1);
        assert_eq!(dma.transfer_cycles(64 * 16), 20 + 16);
    }
}
