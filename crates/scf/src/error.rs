//! Error type for the Scalable Compute Fabric crate.

use std::error::Error;
use std::fmt;

/// Error raised by SCF simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScfError {
    /// An instruction word could not be decoded.
    IllegalInstruction {
        /// Program counter of the fault.
        pc: u32,
        /// The offending instruction word.
        word: u32,
    },
    /// A memory access fell outside the mapped range or was misaligned.
    MemoryFault {
        /// Faulting address.
        addr: u32,
        /// Human-readable cause.
        cause: &'static str,
    },
    /// The core exceeded its step budget without halting.
    Timeout,
    /// Internal partitioned-stepping marker: a core's private run-ahead hit
    /// a shared-memory boundary and must synchronize with the cluster. This
    /// is raised by boundary-aware [`crate::memory::Memory`] views and is
    /// consumed inside [`crate::multicore::MulticoreCluster::run`]; it never
    /// escapes the public `run` APIs.
    Yield,
    /// A configuration parameter was invalid.
    InvalidConfig(String),
}

impl fmt::Display for ScfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScfError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
            ScfError::MemoryFault { addr, cause } => {
                write!(f, "memory fault at {addr:#010x}: {cause}")
            }
            ScfError::Timeout => write!(f, "core did not halt within its step budget"),
            ScfError::Yield => write!(f, "internal partitioned-stepping yield"),
            ScfError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for ScfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn check<T: Send + Sync + Error>() {}
        check::<ScfError>();
        let e = ScfError::IllegalInstruction {
            pc: 0x100,
            word: 0xdead_beef,
        };
        assert!(e.to_string().contains("0xdeadbeef"));
        assert!(e.to_string().contains("0x00000100"));
    }
}
