//! RedMule-style bf16 tensor core.
//!
//! §VII: CUs can be "augmented with special purpose units, such as … tensor
//! cores \[50\]" — RedMule, a mixed-precision matrix engine with bf16 operands
//! and wide accumulation. [`TensorCore::gemm`] computes the exact result
//! (bf16 inputs, f32 accumulation, matching [`f2_core::bf16`]) and a cycle
//! estimate from the systolic schedule: each output tile of `rows × cols`
//! accumulates one K-slice per cycle after an array-fill ramp.

use crate::error::ScfError;
use crate::Result;
use f2_core::bf16::Bf16;

/// Geometry of the PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorCoreConfig {
    /// PE rows (output-tile rows).
    pub rows: usize,
    /// PE columns (output-tile columns).
    pub cols: usize,
}

impl TensorCoreConfig {
    /// The prototype CU's array: 12×16 PEs (192 bf16 FMAs per cycle).
    pub fn prototype() -> Self {
        Self { rows: 12, cols: 16 }
    }

    /// FMA operations per cycle at full utilisation.
    pub fn fmas_per_cycle(&self) -> usize {
        self.rows * self.cols
    }
}

/// Execution statistics of one GEMM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmStats {
    /// Modelled cycles.
    pub cycles: u64,
    /// Floating-point operations performed (2 per MAC).
    pub flops: u64,
    /// Achieved / peak FMA utilisation in `[0, 1]`.
    pub utilization: f64,
}

/// The tensor core engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorCore {
    config: TensorCoreConfig,
}

impl TensorCore {
    /// Creates an engine with the given array geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ScfError::InvalidConfig`] for an empty array.
    pub fn new(config: TensorCoreConfig) -> Result<Self> {
        if config.rows == 0 || config.cols == 0 {
            return Err(ScfError::InvalidConfig(
                "tensor core array must be non-empty".to_string(),
            ));
        }
        Ok(Self { config })
    }

    /// Array geometry.
    pub fn config(&self) -> TensorCoreConfig {
        self.config
    }

    /// Computes `C = A · B` with `A: m×k`, `B: k×n` (row-major bf16) and
    /// returns the f32 result plus cycle statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ScfError::InvalidConfig`] if the slice lengths do not match
    /// the given dimensions or any dimension is zero.
    pub fn gemm(
        &self,
        a: &[Bf16],
        b: &[Bf16],
        m: usize,
        k: usize,
        n: usize,
    ) -> Result<(Vec<f32>, GemmStats)> {
        if m == 0 || k == 0 || n == 0 {
            return Err(ScfError::InvalidConfig(
                "GEMM dimensions must be positive".to_string(),
            ));
        }
        if a.len() != m * k || b.len() != k * n {
            return Err(ScfError::InvalidConfig(format!(
                "GEMM operand sizes {}x{} mismatch dims {m}x{k}x{n}",
                a.len(),
                b.len()
            )));
        }
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == Bf16::ZERO {
                    continue;
                }
                for j in 0..n {
                    c[i * n + j] = av.mul_acc(b[p * n + j], c[i * n + j]);
                }
            }
        }
        Ok((c, self.gemm_stats(m, k, n)))
    }

    /// Cycle statistics of an `m×k×n` GEMM without computing data (used by
    /// the cluster scheduler for large layers).
    pub fn gemm_stats(&self, m: usize, k: usize, n: usize) -> GemmStats {
        let tiles_m = m.div_ceil(self.config.rows) as u64;
        let tiles_n = n.div_ceil(self.config.cols) as u64;
        // Fill/drain: one array diagonal per tile.
        let fill = (self.config.rows + self.config.cols) as u64;
        let cycles = tiles_m * tiles_n * (k as u64 + fill);
        let macs = (m * n * k) as u64;
        let ideal = macs.div_ceil(self.config.fmas_per_cycle() as u64);
        GemmStats {
            cycles,
            flops: 2 * macs,
            utilization: ideal as f64 / cycles as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(values: &[f32]) -> Vec<Bf16> {
        values.iter().map(|&v| Bf16::from_f32(v)).collect()
    }

    #[test]
    fn gemm_matches_reference() {
        let tc = TensorCore::new(TensorCoreConfig { rows: 2, cols: 2 }).expect("valid");
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]]
        let a = bf(&[1.0, 2.0, 3.0, 4.0]);
        let b = bf(&[5.0, 6.0, 7.0, 8.0]);
        let (c, stats) = tc.gemm(&a, &b, 2, 2, 2).expect("valid dims");
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
        assert_eq!(stats.flops, 16);
    }

    #[test]
    fn gemm_accumulates_in_f32() {
        // Summing many small bf16 values: f32 accumulation keeps precision a
        // bf16 accumulator would lose.
        let tc = TensorCore::new(TensorCoreConfig::prototype()).expect("valid");
        let k = 512;
        let a = vec![Bf16::from_f32(0.001); k];
        let b = vec![Bf16::ONE; k];
        let (c, _) = tc.gemm(&a, &b, 1, k, 1).expect("valid dims");
        let exact = 0.001f32.to_bits(); // bf16(0.001) ~ 0.0010071
        let _ = exact;
        let expected = Bf16::from_f32(0.001).to_f32() * k as f32;
        assert!(
            (c[0] - expected).abs() / expected < 1e-3,
            "c {} vs {}",
            c[0],
            expected
        );
    }

    #[test]
    fn utilization_high_for_large_aligned_gemms() {
        let tc = TensorCore::new(TensorCoreConfig::prototype()).expect("valid");
        let stats = tc.gemm_stats(768, 768, 768);
        assert!(stats.utilization > 0.9, "utilization {}", stats.utilization);
    }

    #[test]
    fn utilization_drops_for_tiny_gemms() {
        let tc = TensorCore::new(TensorCoreConfig::prototype()).expect("valid");
        let big = tc.gemm_stats(768, 768, 768);
        let tiny = tc.gemm_stats(3, 5, 3);
        assert!(tiny.utilization < big.utilization);
    }

    #[test]
    fn cycles_scale_linearly_with_k() {
        let tc = TensorCore::new(TensorCoreConfig::prototype()).expect("valid");
        let s1 = tc.gemm_stats(12, 100, 16);
        let s2 = tc.gemm_stats(12, 200, 16);
        assert!(s2.cycles > s1.cycles);
        assert!(s2.cycles < 2 * s1.cycles + 64);
    }

    #[test]
    fn invalid_dims_rejected() {
        let tc = TensorCore::new(TensorCoreConfig::prototype()).expect("valid");
        assert!(tc.gemm(&[], &[], 0, 1, 1).is_err());
        assert!(tc.gemm(&[Bf16::ONE; 4], &[Bf16::ONE; 3], 2, 2, 2).is_err());
        assert!(TensorCore::new(TensorCoreConfig { rows: 0, cols: 4 }).is_err());
    }

    #[test]
    fn prototype_geometry() {
        let c = TensorCoreConfig::prototype();
        assert_eq!(c.fmas_per_cycle(), 192);
    }
}
