//! Spatz-style compact vector unit.
//!
//! §VII lists "vector processing units tightly-coupled to the cores \[48\]"
//! (Spatz) among the CU's special-purpose options. For the transformer's
//! elementwise phases (softmax, layernorm) a vector unit retires `lanes`
//! elements per cycle instead of the scalar core's one-elements-per-loop
//! pace, at the cost of per-instruction issue overhead and extra area. The
//! model exposes exactly the trade the §VII ablation needs: elementwise
//! cycle count and energy versus lane count.

use crate::error::ScfError;
use crate::Result;

/// Vector-unit configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorUnitConfig {
    /// Parallel lanes (elements retired per cycle at full utilisation).
    pub lanes: usize,
    /// Hardware vector length (elements per vector instruction).
    pub vlen: usize,
    /// Issue/configuration overhead per vector instruction (cycles).
    pub issue_overhead: u32,
}

impl VectorUnitConfig {
    /// A Spatz-class unit: 8 lanes, 256-element vectors, 3-cycle issue.
    pub fn spatz_like() -> Self {
        Self {
            lanes: 8,
            vlen: 256,
            issue_overhead: 3,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ScfError::InvalidConfig`] for zero lanes/vlen or `vlen`
    /// not a multiple of `lanes`.
    pub fn validate(&self) -> Result<()> {
        if self.lanes == 0 || self.vlen == 0 {
            return Err(ScfError::InvalidConfig(
                "vector unit needs lanes and vlen".to_string(),
            ));
        }
        if !self.vlen.is_multiple_of(self.lanes) {
            return Err(ScfError::InvalidConfig(format!(
                "vlen {} must be a multiple of lanes {}",
                self.vlen, self.lanes
            )));
        }
        Ok(())
    }

    /// Cycles to apply a `passes`-pass elementwise kernel (each pass touches
    /// every element once, e.g. softmax ≈ 3 passes: max, exp-sum, divide)
    /// over `elements` elements, including per-instruction FPU latency
    /// `fpu_cycles` amortised across the vector.
    pub fn elementwise_cycles(&self, elements: u64, passes: u32, fpu_cycles: u64) -> u64 {
        if elements == 0 {
            return 0;
        }
        let per_pass_instr = elements.div_ceil(self.vlen as u64);
        let chime = (self.vlen / self.lanes) as u64; // cycles per vector instr body
        let per_pass = per_pass_instr * (chime + self.issue_overhead as u64 + fpu_cycles);
        per_pass * passes as u64
    }

    /// Area estimate relative to one scalar core (Spatz reports ~1 core-area
    /// per 2 lanes at matched technology).
    pub fn core_area_equivalent(&self) -> f64 {
        self.lanes as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatz_config_valid() {
        assert!(VectorUnitConfig::spatz_like().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(VectorUnitConfig {
            lanes: 0,
            vlen: 8,
            issue_overhead: 1
        }
        .validate()
        .is_err());
        assert!(VectorUnitConfig {
            lanes: 8,
            vlen: 12,
            issue_overhead: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn cycles_scale_inversely_with_lanes() {
        let narrow = VectorUnitConfig {
            lanes: 2,
            vlen: 256,
            issue_overhead: 3,
        };
        let wide = VectorUnitConfig {
            lanes: 16,
            vlen: 256,
            issue_overhead: 3,
        };
        let n = 100_000;
        let c_narrow = narrow.elementwise_cycles(n, 3, 4);
        let c_wide = wide.elementwise_cycles(n, 3, 4);
        assert!(c_wide < c_narrow / 4, "wide {c_wide} vs narrow {c_narrow}");
    }

    #[test]
    fn long_vectors_amortise_issue_overhead() {
        let short = VectorUnitConfig {
            lanes: 8,
            vlen: 16,
            issue_overhead: 10,
        };
        let long = VectorUnitConfig {
            lanes: 8,
            vlen: 512,
            issue_overhead: 10,
        };
        let n = 65_536;
        assert!(long.elementwise_cycles(n, 1, 0) < short.elementwise_cycles(n, 1, 0));
    }

    #[test]
    fn zero_elements_zero_cycles() {
        assert_eq!(
            VectorUnitConfig::spatz_like().elementwise_cycles(0, 3, 4),
            0
        );
    }

    #[test]
    fn area_tracks_lanes() {
        assert_eq!(VectorUnitConfig::spatz_like().core_area_equivalent(), 4.0);
    }
}
