//! This thrust's registry entries for the unified `f2` runner.

use std::time::Instant;

use f2_core::experiment::render::fmt;
use f2_core::experiment::{Experiment, ExperimentCtx, ExperimentReport, ParamSpec};
use f2_core::kpi::GigabytesPerSecond;
use f2_core::workload::transformer::{bert_base_block, tiny_block, TransformerConfig};

use crate::cluster::{ComputeUnit, CuConfig};
use crate::fabric::scaling_sweep;
use crate::multicore::{
    sweep_configs, vector_add_program, MulticoreCluster, MulticoreConfig, MulticoreReport,
};
use crate::power::CuPowerModel;

/// E12 / Fig. 9 — the prototype Compute Unit on BFloat16 transformer blocks.
///
/// Reproduces "up to 150 GFLOPS and 1.5 TFLOPS/W at 460 MHz, 0.55 V" plus
/// the per-phase cycle breakdown and ablations over core count, elementwise
/// engine, and supply voltage. The CU model is analytic, so quick and full
/// fidelity coincide.
pub struct CuTransformer;

impl CuTransformer {
    fn block_table(
        &self,
        ctx: &mut ExperimentCtx,
        cu: &ComputeUnit,
        blocks: &[(&str, &str, TransformerConfig)],
    ) {
        let mut rows = Vec::new();
        for (name, slug, block) in blocks {
            let r = cu.run_transformer_block(block);
            ctx.kpi(&format!("blocks/{slug}_gflops"), r.achieved.value());
            ctx.kpi(
                &format!("blocks/{slug}_tflops_per_watt"),
                r.efficiency.value() / 1000.0,
            );
            rows.push(vec![
                name.to_string(),
                r.flops.to_string(),
                r.cycles.gemm.to_string(),
                (r.cycles.softmax + r.cycles.layernorm).to_string(),
                fmt(r.achieved.value(), 1),
                fmt(r.power.value() * 1000.0, 1),
                fmt(r.efficiency.value() / 1000.0, 2),
                fmt(r.gemm_utilization * 100.0, 1),
            ]);
        }
        ctx.table(
            &[
                "Block",
                "FLOPs",
                "GEMM cyc",
                "Elementwise cyc",
                "GFLOPS",
                "Power mW",
                "TFLOPS/W",
                "Array util %",
            ],
            &rows,
        );
    }
}

impl Experiment for CuTransformer {
    fn name(&self) -> &'static str {
        "cu_transformer"
    }

    fn summary(&self) -> &'static str {
        "E12 / Fig. 9: prototype CU KPIs on BF16 transformer blocks"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["e12", "scf", "figure"]
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> f2_core::Result<ExperimentReport> {
        let cu = ComputeUnit::prototype();
        ctx.note(&format!(
            "Prototype CU: {} cores + {}x{} bf16 tensor array, {} KiB TCDM,",
            cu.config().cores,
            cu.config().tensor.rows,
            cu.config().tensor.cols,
            cu.config().tcdm_kib
        ));
        ctx.note(&format!(
            "GF12 @ {:.0} MHz / {:.2} V, area {} mm2; ISS-calibrated scalar loop: {:.1} cyc/elem",
            cu.power_model().clock.value(),
            cu.power_model().vdd,
            cu.power_model().area.value(),
            cu.loop_cycles_per_element()
        ));

        ctx.section("Fig. 9 KPIs on transformer blocks");
        let blocks_phase = ctx.span("cu:transformer_blocks");
        self.block_table(
            ctx,
            &cu,
            &[
                ("BERT-base (n=128)", "bert_base", bert_base_block()),
                ("tiny (n=64,d=128)", "tiny", tiny_block()),
                (
                    "long-seq (n=512,d=768)",
                    "long_seq",
                    TransformerConfig::new(768, 12, 512, 3072).expect("valid config"),
                ),
            ],
        );
        ctx.note("\nPublished: up to 150 GFLOPS, 1.5 TFLOPS/W on transformer blocks.");

        drop(blocks_phase);
        ctx.section("Ablation: core count (elementwise scaling)");
        let _phase = ctx.span("cu:ablations");
        let mut rows = Vec::new();
        for cores in [2usize, 4, 8, 16] {
            let cfg = CuConfig {
                cores,
                ..CuConfig::prototype()
            };
            let cu = ComputeUnit::new(cfg, CuPowerModel::gf12_prototype()).expect("valid config");
            let r = cu.run_transformer_block(&bert_base_block());
            ctx.kpi(&format!("cores/{cores}_gflops"), r.achieved.value());
            rows.push(vec![
                cores.to_string(),
                (r.cycles.softmax + r.cycles.layernorm).to_string(),
                fmt(r.achieved.value(), 1),
                fmt(r.efficiency.value() / 1000.0, 2),
            ]);
        }
        ctx.table(&["Cores", "Elementwise cyc", "GFLOPS", "TFLOPS/W"], &rows);

        ctx.section("Ablation: elementwise engine — scalar cores vs Spatz vector unit");
        let long = TransformerConfig::new(768, 12, 512, 3072).expect("valid config");
        let mut rows = Vec::new();
        for (label, slug, cfg) in [
            ("8 scalar cores", "scalar", CuConfig::prototype()),
            (
                "Spatz 8-lane vector unit",
                "vector",
                CuConfig::prototype_with_vector(),
            ),
        ] {
            let cu = ComputeUnit::new(cfg, CuPowerModel::gf12_prototype()).expect("valid config");
            let r = cu.run_transformer_block(&long);
            ctx.kpi(&format!("engine/{slug}_gflops"), r.achieved.value());
            rows.push(vec![
                label.to_string(),
                (r.cycles.softmax + r.cycles.layernorm).to_string(),
                fmt(r.achieved.value(), 1),
                fmt(r.efficiency.value() / 1000.0, 2),
            ]);
        }
        ctx.table(&["Engine", "Elementwise cyc", "GFLOPS", "TFLOPS/W"], &rows);

        ctx.section("Ablation: supply voltage (CV^2 scaling)");
        let mut rows = Vec::new();
        for vdd in [0.55, 0.65, 0.8] {
            let cu = ComputeUnit::new(
                CuConfig::prototype(),
                CuPowerModel::gf12_prototype().at_voltage(vdd),
            )
            .expect("valid config");
            let r = cu.run_transformer_block(&bert_base_block());
            ctx.kpi(
                &format!("vdd/{}_tflops_per_watt", (vdd * 100.0) as u32),
                r.efficiency.value() / 1000.0,
            );
            rows.push(vec![
                fmt(vdd, 2),
                fmt(r.power.value() * 1000.0, 1),
                fmt(r.efficiency.value() / 1000.0, 2),
            ]);
        }
        ctx.table(&["Vdd", "Power mW", "TFLOPS/W"], &rows);
        Ok(ctx.report(self.name()))
    }
}

/// E12 ablation — TCDM banking sensitivity, execution-driven.
///
/// Eight Snitch-like ISS cores run an SPMD vector kernel against the shared
/// L1 while the bank count sweeps, exposing the conflict-rate knee that
/// sizes the interleaving. The per-configuration simulations are
/// independent, so the sweep runs on the context's worker pool and the
/// experiment cross-checks it against a sequential sweep (bit-identical
/// reports); the host-side speedup is wall-clock and therefore reported as
/// a note, never a KPI.
pub struct TcdmBanking;

impl TcdmBanking {
    fn vector_len(ctx: &ExperimentCtx) -> u32 {
        ctx.param_u64("vector_len", if ctx.quick() { 256 } else { 512 }) as u32
    }

    fn preload_n(n: u32) -> impl Fn(&mut MulticoreCluster) + Sync {
        move |cluster: &mut MulticoreCluster| {
            for i in 0..n as usize {
                cluster
                    .tcdm_mut()
                    .write_word(i, i as u32)
                    .expect("in range");
                cluster
                    .tcdm_mut()
                    .write_word(n as usize + i, 7 * i as u32)
                    .expect("in range");
            }
        }
    }

    fn run_sequential(
        configs: &[MulticoreConfig],
        program: &[u32],
        preload: &(impl Fn(&mut MulticoreCluster) + Sync),
    ) -> Vec<MulticoreReport> {
        configs
            .iter()
            .map(|cfg| {
                let mut cluster = MulticoreCluster::spmd(*cfg, program).expect("valid config");
                preload(&mut cluster);
                cluster.run().expect("programs halt")
            })
            .collect()
    }
}

impl Experiment for TcdmBanking {
    fn name(&self) -> &'static str {
        "tcdm_banking"
    }

    fn summary(&self) -> &'static str {
        "E12 ablation: execution-driven TCDM banking and core-count sweep"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["e12", "scf", "iss"]
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::u64(
                "vector_len",
                "SPMD vector-add elements (quick 256, full 512)",
            ),
            ParamSpec::u64("cores", "ISS cores in the banking sweep (default 8)"),
        ]
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> f2_core::Result<ExperimentReport> {
        let n = Self::vector_len(ctx);
        let cores = ctx.param_u64("cores", 8) as usize;
        let program = vector_add_program(n);
        let preload = Self::preload_n(n);

        ctx.section(&format!(
            "{cores}-core SPMD vector-add ({n} elements): TCDM banks vs conflicts"
        ));
        let bank_counts: &[usize] = if ctx.quick() {
            &[1, 4, 16, 64]
        } else {
            &[1, 2, 4, 8, 16, 32, 64]
        };
        let configs: Vec<MulticoreConfig> = bank_counts
            .iter()
            .map(|&banks| MulticoreConfig {
                cores,
                tcdm_banks: banks,
                tcdm_words_per_bank: 4096 / banks,
                max_cycles: 50_000_000,
            })
            .collect();

        let banks_phase = ctx.span("tcdm:banks_sweep");
        let t_seq = Instant::now();
        let sequential = Self::run_sequential(&configs, &program, &preload);
        let t_seq = t_seq.elapsed();

        let t_par = Instant::now();
        let reports =
            sweep_configs(ctx.exec(), &configs, &program, &preload).expect("programs halt");
        let t_par = t_par.elapsed();
        drop(banks_phase);

        assert_eq!(
            reports, sequential,
            "parallel sweep must be bit-identical to the sequential sweep"
        );

        let mut rows = Vec::new();
        for (cfg, report) in configs.iter().zip(&reports) {
            ctx.kpi(
                &format!("banking/banks_{}_cycles", cfg.tcdm_banks),
                report.cycles as f64,
            );
            ctx.kpi(
                &format!("banking/banks_{}_conflict_rate", cfg.tcdm_banks),
                report.conflict_rate(),
            );
            ctx.record(&format!("tcdm_banking/banks_{}", cfg.tcdm_banks), report);
            rows.push(vec![
                cfg.tcdm_banks.to_string(),
                report.cycles.to_string(),
                report.tcdm_accesses.to_string(),
                report.conflict_stalls.to_string(),
                fmt(report.conflict_rate(), 3),
            ]);
        }
        ctx.table(
            &[
                "Banks",
                "Cycles",
                "TCDM accesses",
                "Conflict stalls",
                "Stalls/access",
            ],
            &rows,
        );
        ctx.note("\nShape check: conflicts collapse once banks >= 2x cores — the");
        ctx.note("interleaving rule Snitch-class clusters (and the Fig. 9 CU) follow.");
        ctx.note(&format!(
            "\nHost sweep: sequential {:.1} ms, parallel {:.1} ms on {} workers \
             ({:.2}x, identical reports).",
            t_seq.as_secs_f64() * 1e3,
            t_par.as_secs_f64() * 1e3,
            ctx.threads(),
            t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9),
        ));

        ctx.section("Core-count scaling at 32 banks (execution-driven)");
        let _phase = ctx.span("tcdm:core_scaling");
        let core_counts: &[usize] = if ctx.quick() {
            &[1, 2, 8]
        } else {
            &[1, 2, 4, 8, 16]
        };
        let scaling: Vec<MulticoreConfig> = core_counts
            .iter()
            .map(|&cores| MulticoreConfig {
                cores,
                tcdm_banks: 32,
                tcdm_words_per_bank: 128,
                max_cycles: 50_000_000,
            })
            .collect();
        let reports = sweep_configs(ctx.exec(), &scaling, &program, |_| {}).expect("programs halt");
        let base = reports[0].cycles;
        let mut rows = Vec::new();
        for (cfg, report) in scaling.iter().zip(&reports) {
            ctx.kpi(
                &format!("scaling/cores_{}_speedup", cfg.cores),
                base as f64 / report.cycles as f64,
            );
            ctx.record(&format!("tcdm_banking/cores_{}", cfg.cores), report);
            rows.push(vec![
                cfg.cores.to_string(),
                report.cycles.to_string(),
                fmt(base as f64 / report.cycles as f64, 2),
            ]);
        }
        ctx.table(&["Cores", "Cycles", "Speedup"], &rows);
        Ok(ctx.report(self.name()))
    }
}

/// E13 / Fig. 8 — Scalable Compute Fabric sizing study.
///
/// Reproduces the fabric-scaling behaviour the SCF template is designed
/// around: near-linear throughput growth with CU count until the shared
/// HBM (or NoC bisection) saturates, and entry into the >1 W power regime
/// the paper targets.
pub struct ScfScaling;

impl Experiment for ScfScaling {
    fn name(&self) -> &'static str {
        "scf_scaling"
    }

    fn summary(&self) -> &'static str {
        "E13 / Fig. 8: SCF throughput scaling until HBM saturation"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["e13", "scf", "figure"]
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> f2_core::Result<ExperimentReport> {
        let block = bert_base_block();
        let counts: &[usize] = if ctx.quick() {
            &[1, 4, 16, 64, 256, 1024]
        } else {
            &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
        };

        for (label, slug, hbm) in [
            ("single HBM2E stack (410 GB/s)", "hbm410", 410.0),
            ("dual stack (820 GB/s)", "hbm820", 820.0),
        ] {
            ctx.section(&format!("Throughput scaling, {label}"));
            let _phase = ctx.span(&format!("scf:scaling_{slug}"));
            let reports =
                scaling_sweep(counts, &block, GigabytesPerSecond::new(hbm)).expect("valid sweep");
            let mut knee = None;
            let rows: Vec<Vec<String>> = reports
                .iter()
                .map(|r| {
                    if r.hbm_bound && knee.is_none() {
                        knee = Some(r.cu_count);
                    }
                    vec![
                        r.cu_count.to_string(),
                        fmt(r.achieved.value() / 1000.0, 2),
                        fmt(r.blocks_per_second, 0),
                        fmt(r.power.value(), 2),
                        fmt(r.scaling_efficiency * 100.0, 0),
                        if r.hbm_bound { "memory" } else { "compute" }.to_string(),
                    ]
                })
                .collect();
            ctx.table(
                &[
                    "CUs",
                    "TFLOPS",
                    "Blocks/s",
                    "Power W",
                    "Scaling %",
                    "Bound by",
                ],
                &rows,
            );
            let last = reports.last().expect("non-empty sweep");
            ctx.kpi(
                &format!("{slug}/max_tflops"),
                last.achieved.value() / 1000.0,
            );
            ctx.kpi(
                &format!("{slug}/knee_cu_count"),
                knee.unwrap_or(last.cu_count) as f64,
            );
        }
        ctx.note("\nShape check: linear scaling until HBM saturates; doubling HBM");
        ctx.note("moves the knee out; fabric power crosses 1 W within a handful of");
        ctx.note("CUs — the >1W HPC-inference regime of Fig. 7/8.");
        Ok(ctx.report(self.name()))
    }
}

/// This crate's experiments, for registry assembly.
pub fn experiments() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(CuTransformer),
        Box::new(TcdmBanking),
        Box::new(ScfScaling),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cu_transformer_hits_published_regime() {
        let mut ctx = ExperimentCtx::quiet(f2_core::rng::DEFAULT_SEED, true, 1);
        let report = CuTransformer.run(&mut ctx).expect("runs");
        let gflops = report.kpi("blocks/bert_base_gflops").expect("kpi");
        assert!(
            gflops > 100.0 && gflops <= 160.0,
            "published 'up to 150 GFLOPS' regime (got {gflops})"
        );
    }

    #[test]
    fn tcdm_banking_conflicts_collapse_with_banks() {
        let mut ctx = ExperimentCtx::quiet(f2_core::rng::DEFAULT_SEED, true, 2);
        let report = TcdmBanking.run(&mut ctx).expect("runs");
        let few = report.kpi("banking/banks_1_conflict_rate").expect("kpi");
        let many = report.kpi("banking/banks_64_conflict_rate").expect("kpi");
        assert!(few > many, "conflict rate must fall as banks grow");
    }

    #[test]
    fn scf_scaling_knee_moves_with_hbm() {
        let mut ctx = ExperimentCtx::quiet(f2_core::rng::DEFAULT_SEED, true, 1);
        let report = ScfScaling.run(&mut ctx).expect("runs");
        let single = report.kpi("hbm410/knee_cu_count").expect("kpi");
        let dual = report.kpi("hbm820/knee_cu_count").expect("kpi");
        assert!(dual >= single, "doubling HBM moves the knee out");
    }
}
