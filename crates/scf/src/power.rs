//! GF12 energy model of the Compute Unit.
//!
//! Fig. 9: the prototype CU in GlobalFoundries 12 nm occupies ~1.21 mm² and
//! reaches "up to 150 GFLOPS and 1.5 TFLOPS/W at 460 MHz, 0.55 V". The model
//! charges per-event energies (bf16 FMA, core cycle, TCDM access, DMA word)
//! calibrated to land on those figures at the prototype's operating point;
//! everything else (utilisation, phase overlap) comes from the simulator,
//! so the TFLOPS/W a workload achieves is *derived*, not asserted.

use f2_core::kpi::{Joules, Megahertz, SquareMillimeters, Watts};

/// Per-event energies of the CU at a given operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CuPowerModel {
    /// Energy of one bf16 FMA in the tensor array (pJ).
    pub fma_pj: f64,
    /// Energy of one active core cycle (pJ) — clock-gated when idle.
    pub core_cycle_pj: f64,
    /// Energy of one TCDM word access (pJ).
    pub tcdm_access_pj: f64,
    /// Energy of one DMA word moved (pJ).
    pub dma_word_pj: f64,
    /// Leakage + always-on clock tree power (W).
    pub static_power: Watts,
    /// Operating clock.
    pub clock: Megahertz,
    /// Core supply voltage (V).
    pub vdd: f64,
    /// CU area.
    pub area: SquareMillimeters,
}

impl CuPowerModel {
    /// The Fig. 9 prototype operating point: GF12, 460 MHz, 0.55 V.
    pub fn gf12_prototype() -> Self {
        Self {
            fma_pj: 1.2,
            core_cycle_pj: 20.0,
            tcdm_access_pj: 1.1,
            dma_word_pj: 3.0,
            static_power: Watts::new(0.005),
            clock: Megahertz::new(460.0),
            vdd: 0.55,
            area: SquareMillimeters::new(1.21),
        }
    }

    /// Scales the dynamic energies for a different supply voltage (CV²).
    pub fn at_voltage(mut self, vdd: f64) -> Self {
        let scale = (vdd / self.vdd).powi(2);
        self.fma_pj *= scale;
        self.core_cycle_pj *= scale;
        self.tcdm_access_pj *= scale;
        self.dma_word_pj *= scale;
        self.vdd = vdd;
        self
    }

    /// Total energy of an execution described by event counts.
    pub fn energy(&self, events: &CuEnergyEvents, total_cycles: u64) -> Joules {
        let dynamic_pj = events.fma_ops as f64 * self.fma_pj
            + events.core_cycles as f64 * self.core_cycle_pj
            + events.tcdm_accesses as f64 * self.tcdm_access_pj
            + events.dma_words as f64 * self.dma_word_pj;
        let time_s = total_cycles as f64 / self.clock.to_hertz();
        Joules::new(dynamic_pj * 1e-12) + self.static_power * f2_core::kpi::Seconds::new(time_s)
    }

    /// Average power over an execution.
    pub fn average_power(&self, events: &CuEnergyEvents, total_cycles: u64) -> Watts {
        let time_s = total_cycles as f64 / self.clock.to_hertz();
        if time_s == 0.0 {
            return self.static_power;
        }
        self.energy(events, total_cycles) / f2_core::kpi::Seconds::new(time_s)
    }
}

/// Event counts accumulated by the CU simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CuEnergyEvents {
    /// bf16 FMA operations executed by the tensor array.
    pub fma_ops: u64,
    /// Active core cycles summed over all cores.
    pub core_cycles: u64,
    /// TCDM word accesses.
    pub tcdm_accesses: u64,
    /// DMA words moved.
    pub dma_words: u64,
}

impl CuEnergyEvents {
    /// Merges another event record into this one.
    pub fn merge(&mut self, other: &CuEnergyEvents) {
        self.fma_ops += other.fma_ops;
        self.core_cycles += other.core_cycles;
        self.tcdm_accesses += other.tcdm_accesses;
        self.dma_words += other.dma_words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_matches_hand_computation() {
        let m = CuPowerModel::gf12_prototype();
        let events = CuEnergyEvents {
            fma_ops: 1_000_000,
            core_cycles: 0,
            tcdm_accesses: 0,
            dma_words: 0,
        };
        let e = m.energy(&events, 0);
        assert!((e.value() - 1.2e-6).abs() < 1e-12);
    }

    #[test]
    fn static_power_floor() {
        let m = CuPowerModel::gf12_prototype();
        let p = m.average_power(&CuEnergyEvents::default(), 460_000); // 1 ms
        assert!((p.value() - 0.005).abs() < 1e-9);
    }

    #[test]
    fn voltage_scaling_is_quadratic() {
        let m = CuPowerModel::gf12_prototype();
        let hi = m.at_voltage(0.8);
        assert!((hi.fma_pj / m.fma_pj - (0.8f64 / 0.55).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn peak_efficiency_near_published_figure() {
        // Pure tensor-array activity at full utilisation should sit near the
        // 1.5 TFLOPS/W headline (elementwise work then pulls it down).
        let m = CuPowerModel::gf12_prototype();
        let cycles = 1_000_000u64;
        let fmas = cycles * 192; // full prototype array
        let events = CuEnergyEvents {
            fma_ops: fmas,
            core_cycles: 0,
            tcdm_accesses: fmas / 8, // operand reuse through the array
            dma_words: 0,
        };
        let flops = 2.0 * fmas as f64;
        let e = m.energy(&events, cycles);
        let tflops_per_w = flops / e.value() / 1e12;
        assert!(
            (1.2..=1.8).contains(&tflops_per_w),
            "peak efficiency {tflops_per_w:.2} TFLOPS/W"
        );
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CuEnergyEvents {
            fma_ops: 1,
            core_cycles: 2,
            tcdm_accesses: 3,
            dma_words: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.fma_ops, 2);
        assert_eq!(a.dma_words, 8);
    }
}
