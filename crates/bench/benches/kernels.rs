//! `cargo bench` entry point over the kernel micro-benchmarks, whose
//! definitions live in [`flagship2::kernels`] (also runnable as
//! `f2 run kernels`). `cargo bench -- <filter>` selects by substring.

use f2_core::benchkit::Harness;

fn main() {
    let mut h = Harness::from_env();
    flagship2::kernels::register_benches(&mut h);
    h.finish();
}
