//! End-to-end test of the serving stack over the real registry: a live
//! `f2 serve` instance on an ephemeral loopback port, driven through raw
//! HTTP and through the `loadgen` client, down to clean shutdown.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use f2_bench::loadgen::{self, LoadgenOptions, Mix};
use f2_core::json::Json;
use f2_core::serve::{self, http};

fn start_server() -> serve::ServerHandle {
    serve::start(
        flagship2::experiments::registry(),
        serve::ServeConfig {
            threads: 2,
            shards: 8,
            read_timeout: Duration::from_secs(10),
            ..serve::ServeConfig::default()
        },
    )
    .expect("bind an ephemeral loopback port")
}

fn roundtrip(addr: std::net::SocketAddr, method: &str, path: &str, body: &[u8]) -> http::Response {
    let stream = TcpStream::connect(addr).expect("server is listening");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("socket option");
    let mut client = BufReader::new(stream);
    http::write_request(client.get_mut(), method, path, "e2e", body).expect("request sent");
    http::parse_response(&mut client).expect("response parses")
}

fn parse_body(resp: &http::Response) -> Json {
    Json::parse(std::str::from_utf8(&resp.body).expect("utf8")).expect("well-formed body")
}

#[test]
fn serve_answers_the_full_protocol_over_the_real_registry() {
    let server = start_server();
    let addr = server.addr();

    // /healthz and /experiments reflect the real registry.
    let health = parse_body(&roundtrip(addr, "GET", "/healthz", b""));
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    let listed = parse_body(&roundtrip(addr, "GET", "/experiments", b""));
    let names: Vec<&str> = listed
        .as_array()
        .expect("array")
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"fig1_landscape"));
    assert!(names.contains(&"fig7_riscv_sota"));

    // Unknown names and malformed bodies earn clean 4xx responses.
    assert_eq!(
        roundtrip(addr, "POST", "/run", br#"{"experiment":"nope"}"#).status,
        404
    );
    assert_eq!(roundtrip(addr, "POST", "/run", b"{broken").status, 400);
    assert_eq!(roundtrip(addr, "GET", "/nope", b"").status, 404);

    // A real experiment computes once, then replays bit-identically.
    let body = br#"{"experiment":"fig1_landscape","seed":0,"quick":true,"threads":1}"#;
    let first = roundtrip(addr, "POST", "/run", body);
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-f2-cache"), Some("miss"));
    let report = parse_body(&first);
    assert_eq!(
        report.get("schema").and_then(Json::as_str),
        Some(serve::RUN_SCHEMA)
    );
    assert!(report
        .get("report")
        .and_then(|r| r.get("kpis"))
        .and_then(Json::as_array)
        .is_some_and(|kpis| !kpis.is_empty()));
    let second = roundtrip(addr, "POST", "/run", body);
    assert_eq!(second.header("x-f2-cache"), Some("hit"));
    assert_eq!(
        second.body, first.body,
        "cached replay must be bit-identical"
    );

    // /metrics accounts for the traffic so far.
    let metrics = parse_body(&roundtrip(addr, "GET", "/metrics", b""));
    assert_eq!(
        metrics.get("schema").and_then(Json::as_str),
        Some(serve::METRICS_SCHEMA)
    );
    let cache = metrics.get("cache").expect("cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(1.0));
    assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(1.0));

    server.join().expect("clean join");
}

#[test]
fn loadgen_cached_burst_is_all_hits_after_one_warmup_round() {
    let server = start_server();
    let opts = LoadgenOptions {
        addr: server.addr().to_string(),
        rps: 200.0,
        duration_s: 0.25,
        connections: 4,
        mix: Mix::Cached,
        warmup: 1,
        wait_s: 5.0,
        out: None,
        expect_all_hits: true,
        shutdown: false,
        recent: None,
    };
    let report = loadgen::execute(&opts).expect("server reachable");
    assert!(report.completed > 0, "burst must complete requests");
    assert_eq!(report.failed, 0, "no request may fail");
    assert_eq!(report.body_mismatches, 0, "bodies must be bit-identical");
    assert_eq!(
        report.cache_misses, 0,
        "one warmup round must fully prime the cached mix"
    );
    assert_eq!(report.cache_hits, report.completed);
    assert!(report.throughput_rps > 0.0);
    assert_eq!(
        report.echo_mismatches, 0,
        "every /run must echo the client's trace id"
    );
    assert_eq!(
        report.status_counts.get(&200).copied(),
        Some(report.completed),
        "every response was a 200 and every 200 was counted"
    );
    assert_eq!(loadgen::run(&opts), 0, "exit code agrees with the report");
    server.join().expect("clean join");
}

#[test]
fn loadgen_sweep_exercises_distinct_keys_then_shutdown_stops_the_server() {
    let server = start_server();
    let addr = server.addr().to_string();
    let report = loadgen::execute(&LoadgenOptions {
        addr: addr.clone(),
        rps: 100.0,
        duration_s: 0.3,
        connections: 3,
        mix: Mix::Sweep,
        warmup: 0,
        wait_s: 5.0,
        out: None,
        expect_all_hits: false,
        shutdown: false,
        recent: None,
    })
    .expect("server reachable");
    assert!(report.completed > 0);
    assert_eq!(report.failed, 0);
    assert_eq!(report.body_mismatches, 0);
    assert_eq!(report.echo_mismatches, 0);
    // Ten distinct keys were computed at most once each; everything else
    // came from the cache.
    assert!(report.cache_misses <= 10);

    // The flight recorder replays the traffic in the access-log record
    // shape — dumped as JSONL, it passes `f2 check-log`.
    let recent = loadgen::fetch_recent(&addr).expect("flight recorder answers");
    assert!(recent.lines().count() > 0);
    for line in recent.lines() {
        let record = Json::parse(line).expect("record is one JSON object");
        assert_eq!(
            record.get("schema").and_then(Json::as_str),
            Some(serve::LOG_SCHEMA)
        );
        let id = record
            .get("trace_id")
            .and_then(Json::as_str)
            .expect("trace id");
        assert!(id.starts_with("lg-"), "loadgen stamped every /run: {id}");
    }
    let dump = std::env::temp_dir().join("f2-serve-e2e-recent.jsonl");
    std::fs::write(&dump, &recent).expect("writable tmp");
    assert_eq!(f2_bench::runner::check_log(&dump), 0);
    let _ = std::fs::remove_file(&dump);

    // The --shutdown path stops the daemon; wait() observes it without
    // initiating anything itself.
    assert_eq!(
        loadgen::run(&LoadgenOptions {
            addr,
            shutdown: true,
            ..LoadgenOptions::default()
        }),
        0
    );
    server.wait().expect("clean daemon-side join");
}
