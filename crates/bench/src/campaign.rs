//! `f2 campaign` — expand a scenario manifest and sweep it on the pool.
//!
//! A campaign turns one small JSON manifest into a (possibly very long)
//! list of [`Scenario`]s and runs every one through the experiment
//! registry, with a checkpoint journal so an interrupted sweep resumes
//! instead of recomputing. Everything is deterministic: the manifest's
//! seed drives every random draw through [`f2_core::rng::rng_for`], so
//! the same manifest always expands to the same scenario list and the
//! same merged report, bit for bit, at any `--threads` and across
//! interrupt/resume cycles.
//!
//! ## Manifest (`f2-campaign-manifest-v1`)
//!
//! ```json
//! {
//!   "schema": "f2-campaign-manifest-v1",
//!   "seed": 7,
//!   "base": {"fidelity": "quick", "threads": 1},
//!   "specs": [
//!     {"experiment": "imc_energy",
//!      "grid": {"seed": [1, 2, 3], "mvm_n": [32, 64]}},
//!     {"experiment": "storage_io",
//!      "random": {"count": 1000,
//!                 "dims": {"num_samples": {"min": 16, "max": 64, "int": true}}}}
//!   ]
//! }
//! ```
//!
//! * `seed` (optional) — manifest seed for the random generators.
//! * `base` (optional) — scenario members every expanded scenario starts
//!   from (same format as `f2 run --scenario`).
//! * `grid` specs take the cartesian product of their axes. Axes are
//!   sorted by name; the last sorted axis varies fastest. The special
//!   axis `seed` overrides the scenario seed; every other axis must be a
//!   param the experiment declares.
//! * `random` specs draw `count` scenarios. Each dim draws uniformly in
//!   `[min, max)` (or the integers `min..=max` with `"int": true`) from
//!   `rng_for(seed, "campaign/<spec>/<i>/<dim>")`, and each scenario's
//!   seed from `rng_for(seed, "campaign/seed/<spec>/<i>")` — scenario
//!   `i` of spec `s` is the same no matter what ran before it.
//!
//! ## Outputs
//!
//! The checkpoint (`f2-campaign-checkpoint-v1`) is a JSONL journal: a
//! header line binding the manifest hash and scenario count, then one
//! result line per finished scenario, appended as they complete. On
//! `--resume` finished scenarios are replayed from the journal (a
//! partial trailing line from a crash is ignored); a header that does
//! not match the manifest is an error, not silent recomputation.
//!
//! The merged report (`f2-campaign-v1`) lists every result in scenario
//! order plus per-KPI distributions (`count`/`mean`/`p10`/`p50`/`p90`),
//! and `--golden` checks those distributions against a committed
//! `f2-campaign-dist-v1` snapshot (`F2_BLESS=1` rewrites it) — a
//! distribution-level golden, so a 1000-scenario sweep is gated by one
//! small reviewable file.
//!
//! `--progress <file.jsonl>` makes a long sweep monitorable: it appends
//! `f2-campaign-progress-v1` heartbeat events (scenarios done/total,
//! elapsed, fresh-scenario throughput, ETA), throttled to one event per
//! [`PROGRESS_EVERY`] plus an unconditional final `done == total` event.
//! Heartbeats never touch the checkpoint journal or the merged report,
//! so resume stays bit-identical with or without them.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use f2_core::exec::Pool;
use f2_core::experiment::{golden, ExperimentCtx, Registry};
use f2_core::json::{Json, ToJson};
use f2_core::rng::{rng_for, Rng};
use f2_core::scenario::{ParamValue, Scenario};

/// Schema tag of the campaign manifest document.
pub const MANIFEST_SCHEMA: &str = "f2-campaign-manifest-v1";
/// Schema tag of the merged campaign report.
pub const SCHEMA: &str = "f2-campaign-v1";
/// Schema tag of the checkpoint journal header.
pub const CHECKPOINT_SCHEMA: &str = "f2-campaign-checkpoint-v1";
/// Schema tag of the distribution golden snapshot.
pub const DIST_SCHEMA: &str = "f2-campaign-dist-v1";
/// Schema tag of the `--progress` heartbeat events.
pub const PROGRESS_SCHEMA: &str = "f2-campaign-progress-v1";

/// Minimum spacing between throttled progress heartbeats; the final
/// `done == total` event is always written regardless.
pub const PROGRESS_EVERY: Duration = Duration::from_millis(500);

/// Relative tolerance of the distribution-golden comparison (`count` is
/// compared exactly).
pub const DIST_REL_TOL: f64 = 1e-6;

/// Options of the `campaign` subcommand.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// The manifest file to expand.
    pub manifest: PathBuf,
    /// Merged report path (default `<manifest>.out.json`).
    pub out: Option<PathBuf>,
    /// Checkpoint journal path (default `<manifest>.checkpoint.jsonl`).
    pub checkpoint: Option<PathBuf>,
    /// Replay finished scenarios from the checkpoint.
    pub resume: bool,
    /// Pool workers sweeping the campaign.
    pub threads: usize,
    /// Distribution golden to check (or bless under `F2_BLESS=1`).
    pub golden: Option<PathBuf>,
    /// Append [`PROGRESS_SCHEMA`] heartbeat events here (truncated at
    /// startup). `None` disables them — the zero-cost default.
    pub progress: Option<PathBuf>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        Self {
            manifest: PathBuf::new(),
            out: None,
            checkpoint: None,
            resume: false,
            threads: f2_core::exec::num_threads(),
            golden: None,
            progress: None,
        }
    }
}

/// Heartbeat writer for `--progress`. Worker threads bump the fresh
/// completion counter as scenarios finish (success or failure — the
/// heartbeat tracks sweep residency, not outcomes); writes are throttled
/// under the sink lock so the journal stays small no matter how fast the
/// pool drains. Checkpoint-replayed scenarios count as done up front but
/// are excluded from the throughput/ETA estimate, which only fresh work
/// informs.
struct Progress {
    total: usize,
    /// Scenarios replayed from the checkpoint before the pool started.
    resumed: usize,
    started: Instant,
    fresh_done: AtomicUsize,
    /// The journal plus the instant of the last written event.
    sink: Mutex<(std::fs::File, Option<Instant>)>,
}

impl Progress {
    fn new(file: std::fs::File, total: usize, resumed: usize) -> Self {
        Self {
            total,
            resumed,
            started: Instant::now(),
            fresh_done: AtomicUsize::new(0),
            sink: Mutex::new((file, None)),
        }
    }

    fn event(&self, done: usize, elapsed: Duration) -> Json {
        let fresh = done.saturating_sub(self.resumed);
        let secs = elapsed.as_secs_f64();
        let throughput = if secs > 0.0 { fresh as f64 / secs } else { 0.0 };
        let remaining = self.total.saturating_sub(done);
        // ETA is unknowable until fresh work has landed; encode that as
        // null rather than a fake number.
        let eta_ms = if throughput > 0.0 {
            (remaining as f64 / throughput * 1e3).to_json()
        } else {
            Json::Null
        };
        Json::Obj(vec![
            ("schema".to_string(), PROGRESS_SCHEMA.to_json()),
            ("done".to_string(), (done as u64).to_json()),
            ("total".to_string(), (self.total as u64).to_json()),
            ("elapsed_ms".to_string(), (secs * 1e3).to_json()),
            ("throughput_per_s".to_string(), throughput.to_json()),
            ("eta_ms".to_string(), eta_ms),
        ])
    }

    /// One scenario finished on a worker; maybe emit a heartbeat.
    fn bump(&self) {
        self.fresh_done.fetch_add(1, Ordering::Relaxed);
        self.tick(false);
    }

    /// Writes a heartbeat unless one landed within [`PROGRESS_EVERY`];
    /// `force` skips the throttle (the final event).
    fn tick(&self, force: bool) {
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        if !force {
            if let Some(last) = sink.1 {
                if now.duration_since(last) < PROGRESS_EVERY {
                    return;
                }
            }
        }
        sink.1 = Some(now);
        let done = self.resumed + self.fresh_done.load(Ordering::Relaxed);
        let event = self.event(done, now.duration_since(self.started));
        if let Err(e) = writeln!(sink.0, "{}", event.encode()) {
            eprintln!("f2 campaign: progress write failed: {e}");
        }
    }
}

/// One expanded scenario of the campaign: its stable position in the
/// sweep, the target experiment, and the full run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignItem {
    /// Position in the expanded list — the identity resume keys on.
    pub index: usize,
    /// Registry name of the experiment.
    pub experiment: String,
    /// The run configuration.
    pub scenario: Scenario,
}

fn as_u64(v: &Json) -> Option<u64> {
    let n = v.as_f64()?;
    (n >= 0.0 && n.fract() == 0.0 && n <= (1u64 << 53) as f64).then_some(n as u64)
}

/// Expands a manifest document into the campaign's scenario list.
///
/// Validates everything up front — schema, member names, experiment
/// names, declared params, dim bounds — so a sweep never dies on
/// scenario 900 of 1000 over a typo.
///
/// # Errors
///
/// Returns a human-readable description of the first problem.
pub fn expand_manifest(text: &str, registry: &Registry) -> Result<Vec<CampaignItem>, String> {
    let doc = Json::parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    let Json::Obj(members) = &doc else {
        return Err("manifest must be a JSON object".into());
    };
    for (name, _) in members {
        if !matches!(name.as_str(), "schema" | "seed" | "base" | "specs") {
            return Err(format!("unknown manifest member `{name}`"));
        }
    }
    if doc.get("schema").and_then(Json::as_str) != Some(MANIFEST_SCHEMA) {
        return Err(format!("not a `{MANIFEST_SCHEMA}` document"));
    }
    let seed = match doc.get("seed") {
        None => f2_core::rng::DEFAULT_SEED,
        Some(v) => as_u64(v).ok_or("`seed` must be a non-negative integer")?,
    };
    let base = match doc.get("base") {
        None => Scenario::default(),
        Some(b) => Scenario::from_json(b).map_err(|e| format!("invalid `base`: {e}"))?,
    };
    let specs = doc
        .get("specs")
        .and_then(Json::as_array)
        .ok_or("missing `specs` array")?;
    if specs.is_empty() {
        return Err("`specs` must list at least one spec".into());
    }

    let mut items = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        let err = |msg: String| format!("spec {si}: {msg}");
        let Json::Obj(members) = spec else {
            return Err(err("must be a JSON object".into()));
        };
        for (name, _) in members {
            if !matches!(name.as_str(), "experiment" | "grid" | "random") {
                return Err(err(format!("unknown member `{name}`")));
            }
        }
        let experiment = spec
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing `experiment` string member".into()))?;
        let Some(exp) = registry.find(experiment) else {
            return Err(err(format!("unknown experiment `{experiment}`")));
        };
        let declared = exp.params();
        let declares = |key: &str| declared.iter().any(|p| p.name == key);

        match (spec.get("grid"), spec.get("random")) {
            (Some(grid), None) => {
                let Json::Obj(raw_axes) = grid else {
                    return Err(err("`grid` must be an object of axes".into()));
                };
                if raw_axes.is_empty() {
                    return Err(err("`grid` needs at least one axis".into()));
                }
                let mut axes: Vec<(&String, &[Json])> = Vec::new();
                for (key, values) in raw_axes {
                    let values = values
                        .as_array()
                        .ok_or_else(|| err(format!("axis `{key}` must be an array")))?;
                    if values.is_empty() {
                        return Err(err(format!("axis `{key}` must not be empty")));
                    }
                    if key != "seed" && !declares(key) {
                        return Err(err(format!(
                            "experiment `{experiment}` has no param `{key}`"
                        )));
                    }
                    axes.push((key, values));
                }
                // Sorted axes: expansion order is a property of the
                // manifest content, not of JSON member order.
                axes.sort_by(|a, b| a.0.cmp(b.0));
                let total: usize = axes.iter().map(|(_, v)| v.len()).product();
                for k in 0..total {
                    let mut scenario = base.clone();
                    // Odometer over the sorted axes, last axis fastest.
                    let mut rem = k;
                    for (key, values) in axes.iter().rev() {
                        let value = &values[rem % values.len()];
                        rem /= values.len();
                        if key.as_str() == "seed" {
                            scenario.seed = as_u64(value).ok_or_else(|| {
                                err("`seed` axis values must be non-negative integers".into())
                            })?;
                        } else {
                            let value = match value {
                                Json::Num(n) => ParamValue::Num(*n),
                                Json::Str(s) => ParamValue::Str(s.clone()),
                                other => {
                                    return Err(err(format!(
                                        "axis `{key}`: unsupported value {other}"
                                    )))
                                }
                            };
                            scenario.set_param(key, value);
                        }
                    }
                    items.push(CampaignItem {
                        index: items.len(),
                        experiment: experiment.to_string(),
                        scenario,
                    });
                }
            }
            (None, Some(random)) => {
                let Json::Obj(random_members) = random else {
                    return Err(err("`random` must be an object".into()));
                };
                for (name, _) in random_members {
                    if !matches!(name.as_str(), "count" | "dims") {
                        return Err(err(format!("unknown `random` member `{name}`")));
                    }
                }
                let count = random
                    .get("count")
                    .and_then(as_u64)
                    .filter(|&c| c >= 1)
                    .ok_or_else(|| err("`random` needs a positive integer `count`".into()))?;
                let Some(Json::Obj(dims)) = random.get("dims") else {
                    return Err(err("`random` needs a `dims` object".into()));
                };
                // Validate the dims once, not per scenario.
                let mut parsed: Vec<(&String, f64, f64, bool)> = Vec::new();
                for (key, dim) in dims {
                    if !declares(key) {
                        return Err(err(format!(
                            "experiment `{experiment}` has no param `{key}`"
                        )));
                    }
                    let Json::Obj(dim_members) = dim else {
                        return Err(err(format!("dim `{key}` must be an object")));
                    };
                    for (name, _) in dim_members {
                        if !matches!(name.as_str(), "min" | "max" | "int") {
                            return Err(err(format!("dim `{key}`: unknown member `{name}`")));
                        }
                    }
                    let min = dim.get("min").and_then(Json::as_f64);
                    let max = dim.get("max").and_then(Json::as_f64);
                    let (Some(min), Some(max)) = (min, max) else {
                        return Err(err(format!("dim `{key}` needs numeric `min` and `max`")));
                    };
                    if !(min.is_finite() && max.is_finite() && min <= max) {
                        return Err(err(format!("dim `{key}`: need finite min <= max")));
                    }
                    let int = match dim.get("int") {
                        None => false,
                        Some(v) => v
                            .as_bool()
                            .ok_or_else(|| err(format!("dim `{key}`: `int` must be a boolean")))?,
                    };
                    if int && (min.fract() != 0.0 || max.fract() != 0.0) {
                        return Err(err(format!("dim `{key}`: integer bounds must be integers")));
                    }
                    parsed.push((key, min, max, int));
                }
                for d in 0..count {
                    let mut scenario = base.clone();
                    scenario.seed = rng_for(seed, &format!("campaign/seed/{si}/{d}")).next_u64();
                    for (key, min, max, int) in &parsed {
                        let u: f64 = rng_for(seed, &format!("campaign/{si}/{d}/{key}")).gen();
                        let value = if *int {
                            (min + u * (max - min + 1.0)).floor().min(*max)
                        } else {
                            min + u * (max - min)
                        };
                        scenario.set_param(key, ParamValue::Num(value));
                    }
                    items.push(CampaignItem {
                        index: items.len(),
                        experiment: experiment.to_string(),
                        scenario,
                    });
                }
            }
            _ => return Err(err("needs exactly one of `grid` or `random`".into())),
        }
    }
    Ok(items)
}

/// Linear-interpolated quantile of an ascending-sorted slice at rank
/// `(n - 1) * q`.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile rank out of [0, 1]");
    let rank = (sorted.len() - 1) as f64 * q;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Per-KPI distribution summaries over the merged results, keyed
/// `"<experiment>/<kpi>"` in sorted order.
fn distributions(results: &BTreeMap<usize, Json>) -> Vec<(String, Json)> {
    let mut samples: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for doc in results.values() {
        let Some(experiment) = doc.get("experiment").and_then(Json::as_str) else {
            continue;
        };
        let Some(kpis) = doc.get("kpis").and_then(Json::as_array) else {
            continue;
        };
        for kpi in kpis {
            let (Some(name), Some(value)) = (
                kpi.get("name").and_then(Json::as_str),
                kpi.get("value").and_then(Json::as_f64),
            ) else {
                continue;
            };
            samples
                .entry(format!("{experiment}/{name}"))
                .or_default()
                .push(value);
        }
    }
    samples
        .into_iter()
        .map(|(key, mut values)| {
            values.sort_by(f64::total_cmp);
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let dist = Json::Obj(vec![
                ("count".to_string(), (values.len() as u64).to_json()),
                ("mean".to_string(), mean.to_json()),
                ("p10".to_string(), quantile(&values, 0.1).to_json()),
                ("p50".to_string(), quantile(&values, 0.5).to_json()),
                ("p90".to_string(), quantile(&values, 0.9).to_json()),
            ]);
            (key, dist)
        })
        .collect()
}

/// Writes the distribution golden snapshot (the `F2_BLESS=1` path).
///
/// # Errors
///
/// Returns the I/O problem as text.
pub fn save_dist_golden(
    path: &Path,
    manifest_hash: &str,
    dists: &[(String, Json)],
) -> Result<(), String> {
    let doc = Json::Obj(vec![
        ("schema".to_string(), DIST_SCHEMA.to_json()),
        ("manifest_hash".to_string(), manifest_hash.to_json()),
        ("distributions".to_string(), Json::Obj(dists.to_vec())),
    ]);
    std::fs::write(path, golden::encode_pretty(&doc))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn close(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= DIST_REL_TOL * a.abs().max(b.abs())
}

/// Compares the computed distributions against a golden snapshot.
///
/// `count` must match exactly; the statistics within [`DIST_REL_TOL`]
/// relative; the key sets exactly (a vanished or new KPI is a failure
/// either way). Returns the list of mismatches.
///
/// # Errors
///
/// Returns the read/parse problem as text (the caller's exit-2 path).
pub fn check_dist_golden(
    path: &Path,
    manifest_hash: &str,
    dists: &[(String, Json)],
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}; bless with F2_BLESS=1", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: malformed JSON: {e}", path.display()))?;
    if doc.get("schema").and_then(Json::as_str) != Some(DIST_SCHEMA) {
        return Err(format!(
            "{}: not a `{DIST_SCHEMA}` document",
            path.display()
        ));
    }
    let mut failures = Vec::new();
    if doc.get("manifest_hash").and_then(Json::as_str) != Some(manifest_hash) {
        failures.push(format!(
            "manifest hash changed (now {manifest_hash}); re-bless the golden"
        ));
    }
    let Some(Json::Obj(expected)) = doc.get("distributions") else {
        return Err(format!(
            "{}: missing `distributions` object",
            path.display()
        ));
    };
    for (key, want) in expected {
        let Some((_, got)) = dists.iter().find(|(k, _)| k == key) else {
            failures.push(format!("{key}: missing from this run"));
            continue;
        };
        let want_count = want.get("count").and_then(Json::as_f64);
        let got_count = got.get("count").and_then(Json::as_f64);
        if want_count != got_count {
            failures.push(format!(
                "{key}: count {got_count:?} != golden {want_count:?}"
            ));
            continue;
        }
        for stat in ["mean", "p10", "p50", "p90"] {
            let w = want.get(stat).and_then(Json::as_f64);
            let g = got.get(stat).and_then(Json::as_f64);
            match (w, g) {
                (Some(w), Some(g)) if close(w, g) => {}
                _ => failures.push(format!("{key}: {stat} {g:?} vs golden {w:?}")),
            }
        }
    }
    for (key, _) in dists {
        if !expected.iter().any(|(k, _)| k == key) {
            failures.push(format!("{key}: not in the golden; re-bless"));
        }
    }
    Ok(failures)
}

fn checkpoint_header(manifest_hash: &str, scenarios: usize) -> Json {
    Json::Obj(vec![
        ("schema".to_string(), CHECKPOINT_SCHEMA.to_json()),
        ("manifest_hash".to_string(), manifest_hash.to_json()),
        ("scenarios".to_string(), (scenarios as u64).to_json()),
    ])
}

/// Loads finished results from an existing checkpoint journal.
///
/// The header must bind the same manifest hash and scenario count;
/// result lines that fail to parse (a partial line from a crash) are
/// skipped. Later duplicate lines win, matching append order.
fn load_checkpoint(
    path: &Path,
    manifest_hash: &str,
    scenarios: usize,
) -> Result<HashMap<usize, Json>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .and_then(|l| Json::parse(l).ok())
        .ok_or_else(|| format!("checkpoint {} has no header line", path.display()))?;
    let expected = checkpoint_header(manifest_hash, scenarios);
    if header != expected {
        return Err(format!(
            "checkpoint {} belongs to a different campaign \
             (header {header} vs {expected}); delete it or drop --resume",
            path.display()
        ));
    }
    let mut completed = HashMap::new();
    for line in lines {
        let Ok(doc) = Json::parse(line) else {
            continue; // partial trailing line from an interrupt
        };
        let Some(index) = doc.get("index").and_then(as_u64) else {
            continue;
        };
        if (index as usize) < scenarios {
            completed.insert(index as usize, doc);
        }
    }
    Ok(completed)
}

/// Runs one scenario and renders its checkpoint/result line.
fn run_item(registry: &Registry, item: &CampaignItem) -> Result<Json, String> {
    let Some(exp) = registry.find(&item.experiment) else {
        // Validated during expansion; defensive for registry changes.
        return Err(format!("unknown experiment `{}`", item.experiment));
    };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut ctx = ExperimentCtx::quiet_scenario(&item.scenario);
        exp.run(&mut ctx)
    }));
    let report = match outcome {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => return Err(format!("scenario {}: {e}", item.index)),
        Err(_) => return Err(format!("scenario {}: panicked", item.index)),
    };
    let kpis: Vec<Json> = report
        .kpis
        .iter()
        .map(|k| {
            Json::Obj(vec![
                ("name".to_string(), k.name.to_json()),
                ("value".to_string(), k.value.to_json()),
            ])
        })
        .collect();
    Ok(Json::Obj(vec![
        ("index".to_string(), (item.index as u64).to_json()),
        ("experiment".to_string(), item.experiment.to_json()),
        ("scenario".to_string(), item.scenario.to_json()),
        ("kpis".to_string(), Json::Arr(kpis)),
    ]))
}

/// Runs the full campaign; returns the process exit code (0 ok, 1 failed
/// scenarios or golden mismatch, 2 manifest/checkpoint/usage errors).
pub fn run(registry: &Registry, opts: &CampaignOptions) -> u8 {
    let bytes = match std::fs::read(&opts.manifest) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("f2 campaign: cannot read {}: {e}", opts.manifest.display());
            return 2;
        }
    };
    let manifest_hash = format!("{:016x}", f2_core::rng::fnv1a(&bytes));
    let text = String::from_utf8_lossy(&bytes);
    let items = match expand_manifest(&text, registry) {
        Ok(items) => items,
        Err(e) => {
            eprintln!("f2 campaign: {}: {e}", opts.manifest.display());
            return 2;
        }
    };
    let suffixed = |ext: &str| {
        let mut os = opts.manifest.clone().into_os_string();
        os.push(ext);
        PathBuf::from(os)
    };
    let out_path = opts.out.clone().unwrap_or_else(|| suffixed(".out.json"));
    let ckpt_path = opts
        .checkpoint
        .clone()
        .unwrap_or_else(|| suffixed(".checkpoint.jsonl"));

    // Without --resume the journal starts over; with it, finished lines
    // are replayed and fresh results appended after them.
    let resuming = opts.resume && ckpt_path.exists();
    let completed = if resuming {
        match load_checkpoint(&ckpt_path, &manifest_hash, items.len()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("f2 campaign: {e}");
                return 2;
            }
        }
    } else {
        HashMap::new()
    };
    let mut open = std::fs::OpenOptions::new();
    if resuming {
        open.append(true);
    } else {
        open.write(true).create(true).truncate(true);
    }
    // A crash can leave the journal without a trailing newline; appending
    // straight after would glue the first fresh line onto the partial one.
    let needs_newline = resuming
        && std::fs::read(&ckpt_path)
            .map(|b| b.last() != Some(&b'\n'))
            .unwrap_or(false);
    let ckpt_file = match open.open(&ckpt_path) {
        Ok(mut f) => {
            let lead_in = if resuming {
                if needs_newline {
                    writeln!(f)
                } else {
                    Ok(())
                }
            } else {
                writeln!(
                    f,
                    "{}",
                    checkpoint_header(&manifest_hash, items.len()).encode()
                )
            };
            if let Err(e) = lead_in {
                eprintln!(
                    "f2 campaign: cannot write checkpoint {}: {e}",
                    ckpt_path.display()
                );
                return 2;
            }
            Mutex::new(f)
        }
        Err(e) => {
            eprintln!(
                "f2 campaign: cannot open checkpoint {}: {e}",
                ckpt_path.display()
            );
            return 2;
        }
    };

    let pending: Vec<&CampaignItem> = items
        .iter()
        .filter(|i| !completed.contains_key(&i.index))
        .collect();
    eprintln!(
        "f2 campaign: {} scenario(s), {} from checkpoint, {} to run on {} thread(s)",
        items.len(),
        completed.len(),
        pending.len(),
        opts.threads
    );
    let progress = match &opts.progress {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(Progress::new(f, items.len(), completed.len())),
            Err(e) => {
                eprintln!(
                    "f2 campaign: cannot create progress {}: {e}",
                    path.display()
                );
                return 2;
            }
        },
        None => None,
    };
    let pool = Pool::new(opts.threads);
    let fresh: Vec<(usize, Result<Json, String>)> = pool.map(&pending, |item| {
        let res = run_item(registry, item);
        if let Ok(doc) = &res {
            let mut f = ckpt_file.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = writeln!(f, "{}", doc.encode()) {
                eprintln!(
                    "f2 campaign: checkpoint write failed for scenario {}: {e}",
                    item.index
                );
            }
        }
        if let Some(p) = &progress {
            p.bump();
        }
        (item.index, res)
    });
    if let Some(p) = &progress {
        p.tick(true);
    }

    let mut results: BTreeMap<usize, Json> = completed.into_iter().collect();
    let mut failures = 0usize;
    for (index, res) in fresh {
        match res {
            Ok(doc) => {
                results.insert(index, doc);
            }
            Err(e) => {
                eprintln!("f2 campaign: {e}");
                failures += 1;
            }
        }
    }

    let dists = distributions(&results);
    let merged = Json::Obj(vec![
        ("schema".to_string(), SCHEMA.to_json()),
        ("manifest_hash".to_string(), manifest_hash.to_json()),
        ("scenarios".to_string(), (items.len() as u64).to_json()),
        ("completed".to_string(), (results.len() as u64).to_json()),
        (
            "results".to_string(),
            Json::Arr(results.values().cloned().collect()),
        ),
        ("distributions".to_string(), Json::Obj(dists.clone())),
    ]);
    if let Err(e) = std::fs::write(&out_path, format!("{}\n", merged.encode())) {
        eprintln!("f2 campaign: cannot write {}: {e}", out_path.display());
        return 2;
    }
    eprintln!(
        "f2 campaign: wrote {} result(s) and {} distribution(s) to {}",
        results.len(),
        dists.len(),
        out_path.display()
    );

    let mut golden_failed = false;
    if let Some(gpath) = &opts.golden {
        if golden::bless_requested() {
            match save_dist_golden(gpath, &manifest_hash, &dists) {
                Ok(()) => eprintln!("f2 campaign: blessed golden {}", gpath.display()),
                Err(e) => {
                    eprintln!("f2 campaign: {e}");
                    return 2;
                }
            }
        } else {
            match check_dist_golden(gpath, &manifest_hash, &dists) {
                Ok(mismatches) if mismatches.is_empty() => {
                    eprintln!(
                        "f2 campaign: {} distribution(s) match {}",
                        dists.len(),
                        gpath.display()
                    );
                }
                Ok(mismatches) => {
                    for m in &mismatches {
                        eprintln!("f2 campaign: golden: {m}");
                    }
                    golden_failed = true;
                }
                Err(e) => {
                    eprintln!("f2 campaign: {e}");
                    return 2;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "f2 campaign: {failures} scenario(s) failed out of {}",
            items.len()
        );
    }
    u8::from(failures > 0 || golden_failed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_core::experiment::{Experiment, ExperimentReport, ParamSpec};
    use f2_core::scenario::Fidelity;

    /// Deterministic fixture: one KPI fully determined by seed and params.
    struct Poly;

    impl Experiment for Poly {
        fn name(&self) -> &'static str {
            "poly"
        }
        fn summary(&self) -> &'static str {
            "campaign test fixture"
        }
        fn tags(&self) -> &'static [&'static str] {
            &["campaign-test"]
        }
        fn params(&self) -> Vec<ParamSpec> {
            vec![
                ParamSpec::f64("x", "polynomial input"),
                ParamSpec::u64("n", "multiplier"),
            ]
        }
        fn run(&self, ctx: &mut ExperimentCtx) -> f2_core::Result<ExperimentReport> {
            let x = ctx.param_f64("x", 1.0);
            let n = ctx.param_u64("n", 2);
            ctx.kpi("y", x * n as f64 + (ctx.seed() % 97) as f64);
            Ok(ctx.report(self.name()))
        }
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(Box::new(Poly));
        r
    }

    const MANIFEST: &str = r#"{
        "schema": "f2-campaign-manifest-v1",
        "seed": 7,
        "base": {"fidelity": "quick"},
        "specs": [
            {"experiment": "poly", "grid": {"seed": [1, 2], "x": [0.5, 1.5]}},
            {"experiment": "poly",
             "random": {"count": 8,
                        "dims": {"n": {"min": 1, "max": 4, "int": true},
                                 "x": {"min": 0, "max": 1}}}}
        ]
    }"#;

    #[test]
    fn grid_expansion_is_sorted_cartesian_last_axis_fastest() {
        let items = expand_manifest(MANIFEST, &registry()).expect("expands");
        assert_eq!(items.len(), 2 * 2 + 8);
        // Sorted axes: `seed` < `x`, so x varies fastest.
        let combos: Vec<(u64, &ParamValue)> = items[..4]
            .iter()
            .map(|i| (i.scenario.seed, i.scenario.param("x").expect("x set")))
            .collect();
        assert_eq!(
            combos,
            vec![
                (1, &ParamValue::Num(0.5)),
                (1, &ParamValue::Num(1.5)),
                (2, &ParamValue::Num(0.5)),
                (2, &ParamValue::Num(1.5)),
            ]
        );
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item.index, i);
            assert_eq!(item.scenario.fidelity, Fidelity::Quick, "base applied");
        }
    }

    #[test]
    fn random_expansion_is_deterministic_and_in_bounds() {
        let a = expand_manifest(MANIFEST, &registry()).expect("expands");
        let b = expand_manifest(MANIFEST, &registry()).expect("expands");
        assert_eq!(a, b, "same manifest, same scenario list");
        let mut seeds = std::collections::HashSet::new();
        for item in &a[4..] {
            seeds.insert(item.scenario.seed);
            let ParamValue::Num(n) = item.scenario.param("n").expect("n drawn") else {
                panic!("n must be numeric");
            };
            assert!((1.0..=4.0).contains(n) && n.fract() == 0.0, "n={n}");
            let ParamValue::Num(x) = item.scenario.param("x").expect("x drawn") else {
                panic!("x must be numeric");
            };
            assert!((0.0..1.0).contains(x), "x={x}");
        }
        assert!(seeds.len() > 1, "random scenarios draw distinct seeds");
    }

    #[test]
    fn manifest_validation_rejects_garbage() {
        let reg = registry();
        for (text, needle) in [
            ("{not json", "malformed"),
            ("[1]", "must be a JSON object"),
            (
                r#"{"schema":"other","specs":[]}"#,
                "not a `f2-campaign-manifest-v1`",
            ),
            (
                r#"{"schema":"f2-campaign-manifest-v1","specs":[]}"#,
                "at least one",
            ),
            (
                r#"{"schema":"f2-campaign-manifest-v1","sxecs":[]}"#,
                "unknown manifest member",
            ),
            (
                r#"{"schema":"f2-campaign-manifest-v1","specs":[{"grid":{}}]}"#,
                "missing `experiment`",
            ),
            (
                r#"{"schema":"f2-campaign-manifest-v1",
                    "specs":[{"experiment":"ghost","grid":{"x":[1]}}]}"#,
                "unknown experiment",
            ),
            (
                r#"{"schema":"f2-campaign-manifest-v1",
                    "specs":[{"experiment":"poly","grid":{"nope":[1]}}]}"#,
                "no param `nope`",
            ),
            (
                r#"{"schema":"f2-campaign-manifest-v1",
                    "specs":[{"experiment":"poly"}]}"#,
                "exactly one of",
            ),
            (
                r#"{"schema":"f2-campaign-manifest-v1",
                    "specs":[{"experiment":"poly","grid":{"x":[1]},
                              "random":{"count":1,"dims":{}}}]}"#,
                "exactly one of",
            ),
            (
                r#"{"schema":"f2-campaign-manifest-v1",
                    "specs":[{"experiment":"poly","grid":{"x":[]}}]}"#,
                "not be empty",
            ),
            (
                r#"{"schema":"f2-campaign-manifest-v1",
                    "specs":[{"experiment":"poly",
                              "random":{"count":0,"dims":{}}}]}"#,
                "positive integer `count`",
            ),
            (
                r#"{"schema":"f2-campaign-manifest-v1",
                    "specs":[{"experiment":"poly",
                              "random":{"count":1,
                                        "dims":{"x":{"min":2,"max":1}}}}]}"#,
                "min <= max",
            ),
            (
                r#"{"schema":"f2-campaign-manifest-v1",
                    "specs":[{"experiment":"poly",
                              "random":{"count":1,
                                        "dims":{"n":{"min":0.5,"max":2,"int":true}}}}]}"#,
                "integer bounds",
            ),
        ] {
            let err = expand_manifest(text, &reg).expect_err(text);
            assert!(err.contains(needle), "{text}: got `{err}`, want `{needle}`");
        }
    }

    #[test]
    fn quantile_interpolates_linearly() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert!((quantile(&v, 0.1) - 1.3).abs() < 1e-12);
        assert_eq!(quantile(&[5.0], 0.9), 5.0);
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(name)
    }

    #[test]
    fn campaign_runs_checkpoints_and_resumes_bit_identically() {
        let reg = registry();
        let manifest = tmp("f2-campaign-test-manifest.json");
        let out = tmp("f2-campaign-test-out.json");
        let ckpt = tmp("f2-campaign-test-ckpt.jsonl");
        std::fs::write(&manifest, MANIFEST).expect("writable tmp");
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&ckpt);
        let opts = CampaignOptions {
            manifest: manifest.clone(),
            out: Some(out.clone()),
            checkpoint: Some(ckpt.clone()),
            resume: false,
            threads: 2,
            golden: None,
            progress: None,
        };
        assert_eq!(run(&reg, &opts), 0);
        let full = std::fs::read(&out).expect("output written");
        let doc = Json::parse(std::str::from_utf8(&full).expect("utf8")).expect("parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("scenarios").and_then(Json::as_f64), Some(12.0));
        assert_eq!(doc.get("completed").and_then(Json::as_f64), Some(12.0));
        let results = doc
            .get("results")
            .and_then(Json::as_array)
            .expect("results");
        assert_eq!(results.len(), 12);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.get("index").and_then(Json::as_f64), Some(i as f64));
        }
        let dist = doc
            .get("distributions")
            .and_then(|d| d.get("poly/y"))
            .expect("poly/y distribution");
        assert_eq!(dist.get("count").and_then(Json::as_f64), Some(12.0));

        // Simulate an interrupt: keep the header, five finished lines and
        // a partial sixth; the resumed run must replay the five, recompute
        // the rest, and merge to a bit-identical output.
        let journal = std::fs::read_to_string(&ckpt).expect("checkpoint written");
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), 13, "header + one line per scenario");
        let mut truncated: String = lines[..6].join("\n");
        truncated.push('\n');
        truncated.push_str(&lines[6][..lines[6].len() / 2]);
        std::fs::write(&ckpt, &truncated).expect("writable tmp");
        std::fs::remove_file(&out).expect("drop first output");
        let resumed = CampaignOptions {
            resume: true,
            ..opts.clone()
        };
        assert_eq!(run(&reg, &resumed), 0);
        let merged = std::fs::read(&out).expect("resumed output written");
        assert_eq!(merged, full, "resume must merge bit-identically");

        // A checkpoint from a different manifest is refused, not reused.
        let other = tmp("f2-campaign-test-manifest2.json");
        std::fs::write(&other, MANIFEST.replace("\"seed\": 7", "\"seed\": 8"))
            .expect("writable tmp");
        let mismatched = CampaignOptions {
            manifest: other.clone(),
            ..resumed
        };
        assert_eq!(run(&reg, &mismatched), 2);
        for p in [&manifest, &out, &ckpt, &other] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn progress_heartbeats_track_the_sweep_and_end_complete() {
        let reg = registry();
        let manifest = tmp("f2-campaign-progress-manifest.json");
        let out = tmp("f2-campaign-progress-out.json");
        let ckpt = tmp("f2-campaign-progress-ckpt.jsonl");
        let prog = tmp("f2-campaign-progress-events.jsonl");
        std::fs::write(&manifest, MANIFEST).expect("writable tmp");
        let opts = CampaignOptions {
            manifest: manifest.clone(),
            out: Some(out.clone()),
            checkpoint: Some(ckpt.clone()),
            resume: false,
            threads: 2,
            golden: None,
            progress: Some(prog.clone()),
        };
        assert_eq!(run(&reg, &opts), 0);
        let baseline = std::fs::read(&out).expect("output written");
        let journal = std::fs::read_to_string(&prog).expect("progress written");
        let events: Vec<Json> = journal
            .lines()
            .map(|l| Json::parse(l).expect("well-formed event"))
            .collect();
        assert!(!events.is_empty(), "at least the final event");
        let mut last_done = 0.0;
        for e in &events {
            assert_eq!(
                e.get("schema").and_then(Json::as_str),
                Some(PROGRESS_SCHEMA)
            );
            assert_eq!(e.get("total").and_then(Json::as_f64), Some(12.0));
            let done = e.get("done").and_then(Json::as_f64).expect("done");
            assert!(done >= last_done, "done is monotonic");
            last_done = done;
            assert!(e.get("elapsed_ms").and_then(Json::as_f64).expect("elapsed") >= 0.0);
            let tput = e
                .get("throughput_per_s")
                .and_then(Json::as_f64)
                .expect("throughput");
            assert!(tput >= 0.0);
            // ETA is a number once fresh work landed, null before.
            match e.get("eta_ms") {
                Some(Json::Null) => assert_eq!(tput, 0.0),
                Some(v) => assert!(v.as_f64().expect("numeric eta") >= 0.0),
                None => panic!("missing eta_ms"),
            }
        }
        let finale = events.last().expect("nonempty");
        assert_eq!(finale.get("done").and_then(Json::as_f64), Some(12.0));

        // Heartbeats never perturb the sweep itself: a re-run without
        // them produces a bit-identical merged report and checkpoint.
        let journal_lines = std::fs::read_to_string(&ckpt)
            .expect("ckpt")
            .lines()
            .count();
        assert_eq!(journal_lines, 13, "header + one line per scenario");
        std::fs::remove_file(&out).expect("drop output");
        let silent = CampaignOptions {
            progress: None,
            ..opts
        };
        assert_eq!(run(&reg, &silent), 0);
        assert_eq!(std::fs::read(&out).expect("rerun output"), baseline);
        for p in [&manifest, &out, &ckpt, &prog] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn dist_golden_round_trips_and_flags_drift() {
        let dists = vec![(
            "poly/y".to_string(),
            Json::Obj(vec![
                ("count".to_string(), 12u64.to_json()),
                ("mean".to_string(), 3.25.to_json()),
                ("p10".to_string(), 1.0.to_json()),
                ("p50".to_string(), 3.0.to_json()),
                ("p90".to_string(), 6.0.to_json()),
            ]),
        )];
        let path = tmp("f2-campaign-test-golden.json");
        save_dist_golden(&path, "00000000deadbeef", &dists).expect("writes");
        assert_eq!(
            check_dist_golden(&path, "00000000deadbeef", &dists).expect("readable"),
            Vec::<String>::new()
        );
        // Tiny drift within tolerance passes; real drift fails.
        let mut near = dists.clone();
        near[0].1 = Json::Obj(vec![
            ("count".to_string(), 12u64.to_json()),
            ("mean".to_string(), (3.25 * (1.0 + 1e-9)).to_json()),
            ("p10".to_string(), 1.0.to_json()),
            ("p50".to_string(), 3.0.to_json()),
            ("p90".to_string(), 6.0.to_json()),
        ]);
        assert!(check_dist_golden(&path, "00000000deadbeef", &near)
            .expect("readable")
            .is_empty());
        let mut far = dists.clone();
        far[0].1 = Json::Obj(vec![
            ("count".to_string(), 12u64.to_json()),
            ("mean".to_string(), 3.5.to_json()),
            ("p10".to_string(), 1.0.to_json()),
            ("p50".to_string(), 3.0.to_json()),
            ("p90".to_string(), 6.0.to_json()),
        ]);
        let failures = check_dist_golden(&path, "00000000deadbeef", &far).expect("readable");
        assert!(failures.iter().any(|f| f.contains("mean")), "{failures:?}");
        // Changed manifest hash and changed key set both fail loudly.
        assert!(!check_dist_golden(&path, "ffffffffffffffff", &dists)
            .expect("readable")
            .is_empty());
        let extra = vec![dists[0].clone(), ("poly/z".to_string(), dists[0].1.clone())];
        assert!(check_dist_golden(&path, "00000000deadbeef", &extra)
            .expect("readable")
            .iter()
            .any(|f| f.contains("poly/z")));
        let missing = check_dist_golden(&path, "00000000deadbeef", &[]).expect("readable");
        assert!(missing.iter().any(|f| f.contains("missing")), "{missing:?}");
        let _ = std::fs::remove_file(&path);
    }
}
