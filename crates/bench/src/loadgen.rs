//! `f2 loadgen` — the load-generation client for `f2 serve`.
//!
//! Replays a named request mix against a running server at a target rate
//! and reports service-level numbers: completed/failed requests, cache
//! hit/miss split (from the server's `X-F2-Cache` header), response-body
//! consistency, per-status-code counts, throughput and latency
//! percentiles. Every `POST /run` carries a deterministic
//! `X-F2-Trace-Id` and the client asserts the server echoes it back —
//! an end-to-end check of the serve observability path under load. The
//! CI serve smoke is built on the exit code: any failed request, any
//! body that differs from an earlier response to the identical request,
//! any un-echoed trace id, or a cache miss under `--expect-all-hits`
//! fails the run. `--recent <file.jsonl>` scrapes the server's
//! `/debug/recent` flight recorder after the run and re-emits its
//! records one per line, ready for `f2 check-log`.
//!
//! All throughput/latency numbers are wall-clock and machine-dependent —
//! they are service diagnostics, **never** golden KPIs (the same rule as
//! the `f2 bench` suite).

use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use f2_core::json::{Json, ToJson};
use f2_core::serve::http::{self, Response};

/// Identifies the JSON layout of a loadgen report.
pub const SCHEMA: &str = "f2-loadgen-v1";

/// Most requests one run will send, whatever `--rps`/`--duration` ask for.
pub const MAX_REQUESTS: usize = 100_000;

/// The request profile a run replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// `GET /healthz` only — pure front-end overhead.
    Health,
    /// One identical `POST /run` repeated — the 100%-cache-hit path once
    /// warmed, and the body-identity check.
    Cached,
    /// `POST /run` over two cheap catalog experiments × five seeds (ten
    /// distinct keys) — exercises batching and the sharded cache.
    Sweep,
}

impl Mix {
    /// Parses the `--mix` argument.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the valid profiles.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "health" => Ok(Mix::Health),
            "cached" => Ok(Mix::Cached),
            "sweep" => Ok(Mix::Sweep),
            other => Err(format!(
                "unknown mix {other:?}; expected health, cached or sweep"
            )),
        }
    }

    /// Stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Mix::Health => "health",
            Mix::Cached => "cached",
            Mix::Sweep => "sweep",
        }
    }

    /// Number of distinct requests in the profile (the warmup replays each
    /// of them once per warmup round).
    fn distinct(self) -> usize {
        match self {
            Mix::Health | Mix::Cached => 1,
            Mix::Sweep => 10,
        }
    }

    /// The `i`-th request of the profile: method, path and body.
    fn request(self, i: usize) -> (&'static str, &'static str, String) {
        match self {
            Mix::Health => ("GET", "/healthz", String::new()),
            Mix::Cached => (
                "POST",
                "/run",
                "{\"experiment\":\"fig1_landscape\",\"seed\":0,\
                 \"quick\":true,\"threads\":1}"
                    .to_string(),
            ),
            Mix::Sweep => {
                const EXPERIMENTS: [&str; 2] = ["fig1_landscape", "fig7_riscv_sota"];
                let combo = i % 10;
                let body = format!(
                    "{{\"experiment\":\"{}\",\"seed\":{},\"quick\":true,\"threads\":1}}",
                    EXPERIMENTS[combo / 5],
                    combo % 5
                );
                ("POST", "/run", body)
            }
        }
    }
}

/// Options of the `loadgen` subcommand.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Target request rate across all connections.
    pub rps: f64,
    /// Length of the timed window, in seconds (with `rps`, this sizes the
    /// request count; the run ends when every request has completed).
    pub duration_s: f64,
    /// Concurrent client connections.
    pub connections: usize,
    /// The request profile.
    pub mix: Mix,
    /// Untimed warmup rounds: each round sends every distinct request of
    /// the mix once (one round primes the cache completely).
    pub warmup: usize,
    /// Wait up to this many seconds for `/healthz` to answer before the
    /// run (0 = the server must already be up).
    pub wait_s: f64,
    /// Write the `f2-loadgen-v1` JSON report to this path.
    pub out: Option<PathBuf>,
    /// Fail the run if any timed request misses the cache.
    pub expect_all_hits: bool,
    /// Do not generate load: `POST /shutdown` and exit.
    pub shutdown: bool,
    /// After the run, scrape `GET /debug/recent` and write its records
    /// one per line here (`f2 check-log` input).
    pub recent: Option<PathBuf>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8032".to_string(),
            rps: 50.0,
            duration_s: 2.0,
            connections: 4,
            mix: Mix::Sweep,
            warmup: 0,
            wait_s: 0.0,
            out: None,
            expect_all_hits: false,
            shutdown: false,
            recent: None,
        }
    }
}

/// The deterministic trace id stamped on the `i`-th timed `/run` request.
/// The `lg-` prefix keeps client-minted ids visually distinct from the
/// server's `f2-` ones in logs and flight-recorder dumps.
pub fn trace_id(i: usize) -> String {
    format!("lg-{i:08x}")
}

/// The merged outcome of a load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests attempted inside the timed window.
    pub sent: u64,
    /// Requests that completed with HTTP 200.
    pub completed: u64,
    /// Requests that errored at the transport level or returned non-200.
    pub failed: u64,
    /// Timed responses carrying `X-F2-Cache: hit`.
    pub cache_hits: u64,
    /// Timed responses carrying `X-F2-Cache: miss`.
    pub cache_misses: u64,
    /// Responses whose body differed from an earlier response to the
    /// byte-identical request — must always be zero.
    pub body_mismatches: u64,
    /// Completed requests per wall-clock second of the timed window.
    pub throughput_rps: f64,
    /// Latency percentiles over completed requests, in milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile latency, in milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile latency, in milliseconds.
    pub p99_ms: f64,
    /// Slowest completed request, in milliseconds.
    pub max_ms: f64,
    /// Mean latency over completed requests, in milliseconds.
    pub mean_ms: f64,
    /// Responses per HTTP status code (transport errors are not counted
    /// here — they never produced a status line).
    pub status_counts: BTreeMap<u16, u64>,
    /// `/run` responses whose `X-F2-Trace-Id` did not echo the id the
    /// client sent — must always be zero.
    pub echo_mismatches: u64,
}

impl LoadReport {
    /// Serialises the report (plus the run configuration) as the
    /// `f2-loadgen-v1` document.
    pub fn to_json(&self, opts: &LoadgenOptions) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), SCHEMA.to_json()),
            ("addr".to_string(), opts.addr.as_str().to_json()),
            ("mix".to_string(), opts.mix.name().to_json()),
            ("rps_target".to_string(), Json::Num(opts.rps)),
            ("duration_s".to_string(), Json::Num(opts.duration_s)),
            ("connections".to_string(), opts.connections.to_json()),
            ("sent".to_string(), self.sent.to_json()),
            ("completed".to_string(), self.completed.to_json()),
            ("failed".to_string(), self.failed.to_json()),
            ("cache_hits".to_string(), self.cache_hits.to_json()),
            ("cache_misses".to_string(), self.cache_misses.to_json()),
            (
                "body_mismatches".to_string(),
                self.body_mismatches.to_json(),
            ),
            ("throughput_rps".to_string(), Json::Num(self.throughput_rps)),
            ("p50_ms".to_string(), Json::Num(self.p50_ms)),
            ("p90_ms".to_string(), Json::Num(self.p90_ms)),
            ("p99_ms".to_string(), Json::Num(self.p99_ms)),
            ("max_ms".to_string(), Json::Num(self.max_ms)),
            ("mean_ms".to_string(), Json::Num(self.mean_ms)),
            (
                "status_counts".to_string(),
                Json::Obj(
                    self.status_counts
                        .iter()
                        .map(|(code, n)| (code.to_string(), n.to_json()))
                        .collect(),
                ),
            ),
            (
                "echo_mismatches".to_string(),
                self.echo_mismatches.to_json(),
            ),
        ])
    }
}

/// One keep-alive client connection.
struct Client {
    reader: BufReader<TcpStream>,
    host: String,
}

impl Client {
    fn connect(addr: &str, timeout: Duration) -> Result<Self, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| format!("cannot set read timeout: {e}"))?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            reader: BufReader::new(stream),
            host: addr.to_string(),
        })
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> Result<Response, String> {
        self.request_with_headers(method, path, &[], body)
    }

    fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<Response, String> {
        http::write_request_with_headers(
            self.reader.get_mut(),
            method,
            path,
            &self.host,
            headers,
            body,
        )
        .map_err(|e| format!("write failed: {e}"))?;
        http::parse_response(&mut self.reader).map_err(|e| format!("read failed: {e}"))
    }
}

/// Deterministic FNV-1a over a response body — the body-identity check.
fn body_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Polls `GET /healthz` on fresh connections until it answers 200 or the
/// deadline passes.
///
/// # Errors
///
/// Returns a description of the last failure when the deadline passes.
pub fn wait_for_healthz(addr: &str, wait_s: f64) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs_f64(wait_s.max(0.0));
    let mut last;
    loop {
        match Client::connect(addr, Duration::from_secs(2))
            .and_then(|mut c| c.request("GET", "/healthz", b""))
        {
            Ok(resp) if resp.status == 200 => return Ok(()),
            Ok(resp) => last = format!("/healthz answered {}", resp.status),
            Err(e) => last = e,
        }
        if Instant::now() >= deadline {
            return Err(format!("server at {addr} not healthy: {last}"));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// What one worker thread measured.
#[derive(Default)]
struct WorkerOutcome {
    sent: u64,
    completed: u64,
    failed: u64,
    cache_hits: u64,
    cache_misses: u64,
    latencies_ns: Vec<u64>,
    /// `(request index, body hash)` per completed request, merged into the
    /// global identity check after the join.
    bodies: Vec<(usize, u64)>,
    status_counts: BTreeMap<u16, u64>,
    echo_mismatches: u64,
}

/// Replays the worker's slice of the schedule. `interval` paces the
/// *global* request sequence; worker `w` owns indices `w, w+C, w+2C, …`.
fn worker(
    opts: &LoadgenOptions,
    start: Instant,
    interval: Duration,
    indices: &[usize],
) -> WorkerOutcome {
    let mut out = WorkerOutcome::default();
    let timeout = Duration::from_secs(10);
    let mut client = Client::connect(&opts.addr, timeout).ok();
    for &i in indices {
        let target = start + interval * (i as u32);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let (method, path, body) = opts.mix.request(i);
        out.sent += 1;
        if client.is_none() {
            client = Client::connect(&opts.addr, timeout).ok();
        }
        let Some(c) = client.as_mut() else {
            out.failed += 1;
            continue;
        };
        // Only /run participates in trace-id propagation; the server
        // does not echo ids on /healthz.
        let traced = path == "/run";
        let id = trace_id(i);
        let sent_at = Instant::now();
        let result = if traced {
            c.request_with_headers(
                method,
                path,
                &[(f2_core::serve::TRACE_HEADER, id.as_str())],
                body.as_bytes(),
            )
        } else {
            c.request(method, path, body.as_bytes())
        };
        match result {
            Ok(resp) => {
                *out.status_counts.entry(resp.status).or_insert(0) += 1;
                if traced && resp.header("x-f2-trace-id") != Some(id.as_str()) {
                    out.echo_mismatches += 1;
                }
                if resp.status == 200 {
                    out.completed += 1;
                    out.latencies_ns.push(sent_at.elapsed().as_nanos() as u64);
                    match resp.header("x-f2-cache") {
                        Some("hit") => out.cache_hits += 1,
                        Some("miss") => out.cache_misses += 1,
                        _ => {}
                    }
                    out.bodies
                        .push((i % opts.mix.distinct(), body_hash(&resp.body)));
                } else {
                    out.failed += 1;
                }
            }
            Err(_) => {
                out.failed += 1;
                // The connection is in an unknown state; reconnect.
                client = None;
            }
        }
    }
    out
}

fn percentile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((q / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1.0e6
}

/// Runs the timed load and merges the outcome.
///
/// # Errors
///
/// Returns a message when the server is unreachable before any load is
/// generated (exit code 2 territory); per-request failures are counted in
/// the report instead.
pub fn execute(opts: &LoadgenOptions) -> Result<LoadReport, String> {
    if opts.wait_s > 0.0 {
        wait_for_healthz(&opts.addr, opts.wait_s)?;
    } else {
        // Fail fast with a usage-style error when nothing listens there.
        Client::connect(&opts.addr, Duration::from_secs(2))?;
    }
    // Untimed warmup: prime the cache with every distinct request.
    for round in 0..opts.warmup {
        let mut client = Client::connect(&opts.addr, Duration::from_secs(30))?;
        for i in 0..opts.mix.distinct() {
            let (method, path, body) = opts.mix.request(i);
            let resp = client
                .request(method, path, body.as_bytes())
                .map_err(|e| format!("warmup round {round}: {e}"))?;
            if resp.status != 200 {
                return Err(format!(
                    "warmup round {round}: request {i} answered {}",
                    resp.status
                ));
            }
        }
    }

    let total = ((opts.rps * opts.duration_s).ceil() as usize).clamp(1, MAX_REQUESTS);
    let connections = opts.connections.max(1).min(total);
    let interval = Duration::from_secs_f64(1.0 / opts.rps.max(1e-3));
    let start = Instant::now();
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|w| {
                let indices: Vec<usize> = (w..total).step_by(connections).collect();
                scope.spawn(move || worker(opts, start, interval, &indices))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    let elapsed = start.elapsed();

    let mut report = LoadReport::default();
    let mut latencies: Vec<u64> = Vec::new();
    let mut canonical: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    for out in outcomes {
        report.sent += out.sent;
        report.completed += out.completed;
        report.failed += out.failed;
        report.cache_hits += out.cache_hits;
        report.cache_misses += out.cache_misses;
        report.echo_mismatches += out.echo_mismatches;
        for (code, n) in out.status_counts {
            *report.status_counts.entry(code).or_insert(0) += n;
        }
        latencies.extend(out.latencies_ns);
        for (req, hash) in out.bodies {
            let first = canonical.entry(req).or_insert(hash);
            if *first != hash {
                report.body_mismatches += 1;
            }
        }
    }
    latencies.sort_unstable();
    report.throughput_rps = report.completed as f64 / elapsed.as_secs_f64().max(1e-9);
    report.p50_ms = percentile(&latencies, 50.0);
    report.p90_ms = percentile(&latencies, 90.0);
    report.p99_ms = percentile(&latencies, 99.0);
    report.max_ms = latencies.last().map_or(0.0, |&ns| ns as f64 / 1.0e6);
    report.mean_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1.0e6
    };
    Ok(report)
}

/// Scrapes `GET /debug/recent` and renders its records as JSONL, one
/// flight-recorder record per line (the shape `f2 check-log` validates).
///
/// # Errors
///
/// Returns a description when the endpoint is unreachable, answers
/// non-200, or serves a document without records.
pub fn fetch_recent(addr: &str) -> Result<String, String> {
    let mut client = Client::connect(addr, Duration::from_secs(5))?;
    let resp = client.request("GET", "/debug/recent", b"")?;
    if resp.status != 200 {
        return Err(format!("/debug/recent answered {}", resp.status));
    }
    let text = std::str::from_utf8(&resp.body)
        .map_err(|_| "/debug/recent body is not UTF-8".to_string())?;
    let doc =
        Json::parse(text).map_err(|e| format!("/debug/recent body is malformed JSON: {e}"))?;
    let records = doc
        .get("records")
        .and_then(Json::as_array)
        .ok_or("/debug/recent has no `records` array")?;
    if records.is_empty() {
        return Err("/debug/recent holds no records — did any /run land?".to_string());
    }
    let mut out = String::new();
    for record in records {
        out.push_str(&record.encode());
        out.push('\n');
    }
    Ok(out)
}

/// Fetches the flight recorder into `path` as JSONL.
fn dump_recent(addr: &str, path: &Path) -> Result<usize, String> {
    let lines = fetch_recent(addr)?;
    let count = lines.lines().count();
    std::fs::write(path, lines).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(count)
}

/// Full `f2 loadgen` entry point; prints the summary and returns the
/// process exit code (0 clean, 1 degraded service, 2 unreachable/usage).
pub fn run(opts: &LoadgenOptions) -> u8 {
    if opts.shutdown {
        return match Client::connect(&opts.addr, Duration::from_secs(5))
            .and_then(|mut c| c.request("POST", "/shutdown", b""))
        {
            Ok(resp) if resp.status == 200 => {
                eprintln!("f2 loadgen: server at {} is shutting down", opts.addr);
                0
            }
            Ok(resp) => {
                eprintln!("f2 loadgen: /shutdown answered {}", resp.status);
                1
            }
            Err(e) => {
                eprintln!("f2 loadgen: {e}");
                2
            }
        };
    }
    let report = match execute(opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("f2 loadgen: {e}");
            return 2;
        }
    };
    println!(
        "loadgen {}: {} sent, {} completed, {} failed, {} hit / {} miss, {} mismatch(es)",
        opts.mix.name(),
        report.sent,
        report.completed,
        report.failed,
        report.cache_hits,
        report.cache_misses,
        report.body_mismatches
    );
    println!(
        "  throughput {:.1} req/s; latency p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, \
         max {:.3} ms (machine-dependent, never a KPI)",
        report.throughput_rps, report.p50_ms, report.p90_ms, report.p99_ms, report.max_ms
    );
    let mut failures = 0u32;
    if report.completed == 0 {
        eprintln!("f2 loadgen: no request completed");
        failures += 1;
    }
    if report.failed > 0 {
        eprintln!("f2 loadgen: {} request(s) failed", report.failed);
        failures += 1;
    }
    if report.body_mismatches > 0 {
        eprintln!(
            "f2 loadgen: {} response body/bodies differed for identical requests",
            report.body_mismatches
        );
        failures += 1;
    }
    if opts.expect_all_hits && report.cache_misses > 0 {
        eprintln!(
            "f2 loadgen: expected a fully warmed cache, saw {} miss(es)",
            report.cache_misses
        );
        failures += 1;
    }
    if report.echo_mismatches > 0 {
        eprintln!(
            "f2 loadgen: {} /run response(s) did not echo the client's X-F2-Trace-Id",
            report.echo_mismatches
        );
        failures += 1;
    }
    if let Some(path) = &opts.recent {
        match dump_recent(&opts.addr, path) {
            Ok(n) => eprintln!(
                "f2 loadgen: wrote {n} flight-recorder record(s) to {}",
                path.display()
            ),
            Err(e) => {
                eprintln!("f2 loadgen: {e}");
                failures += 1;
            }
        }
    }
    if let Some(out) = &opts.out {
        match std::fs::write(out, format!("{}\n", report.to_json(opts).encode())) {
            Ok(()) => eprintln!("f2 loadgen: wrote report to {}", out.display()),
            Err(e) => {
                eprintln!("f2 loadgen: cannot write report to {}: {e}", out.display());
                failures += 1;
            }
        }
    }
    u8::from(failures > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parses_and_enumerates() {
        assert_eq!(Mix::parse("health").expect("valid"), Mix::Health);
        assert_eq!(Mix::parse("cached").expect("valid"), Mix::Cached);
        assert_eq!(Mix::parse("sweep").expect("valid"), Mix::Sweep);
        assert!(Mix::parse("nope").is_err());
        assert_eq!(Mix::Sweep.distinct(), 10);
        // The sweep cycles through ten distinct request bodies.
        let bodies: std::collections::HashSet<String> =
            (0..20).map(|i| Mix::Sweep.request(i).2).collect();
        assert_eq!(bodies.len(), 10);
        // The cached mix always issues the identical request.
        assert_eq!(Mix::Cached.request(0), Mix::Cached.request(7));
    }

    #[test]
    fn percentiles_and_hashes_are_stable() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000_000).collect();
        assert!((percentile(&ns, 50.0) - 51.0).abs() < 2.0);
        assert!((percentile(&ns, 99.0) - 99.0).abs() < 2.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(body_hash(b"abc"), body_hash(b"abc"));
        assert_ne!(body_hash(b"abc"), body_hash(b"abd"));
    }

    #[test]
    fn unreachable_server_is_a_hard_error() {
        // A port from the ephemeral range with nothing bound to it.
        let opts = LoadgenOptions {
            addr: "127.0.0.1:1".to_string(),
            ..LoadgenOptions::default()
        };
        assert!(execute(&opts).is_err());
        assert_eq!(run(&opts), 2);
    }

    #[test]
    fn report_serialises_the_schema() {
        let report = LoadReport {
            sent: 10,
            completed: 10,
            throughput_rps: 123.4,
            status_counts: [(200, 9), (503, 1)].into_iter().collect(),
            ..LoadReport::default()
        };
        let doc = report.to_json(&LoadgenOptions::default());
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("completed").and_then(Json::as_f64), Some(10.0));
        assert_eq!(doc.get("mix").and_then(Json::as_str), Some("sweep"));
        let counts = doc.get("status_counts").expect("status counts");
        assert_eq!(counts.get("200").and_then(Json::as_f64), Some(9.0));
        assert_eq!(counts.get("503").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("echo_mismatches").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn trace_ids_are_deterministic_and_server_valid() {
        assert_eq!(trace_id(0), "lg-00000000");
        assert_eq!(trace_id(0xBEEF), "lg-0000beef");
        assert_ne!(trace_id(1), trace_id(2));
        assert!(f2_core::serve::valid_trace_id(&trace_id(usize::MAX)));
    }
}
