//! The curated hot-kernel suite behind `f2 bench` / `f2 check-bench`.
//!
//! Eight kernels, one per hot path the experiments actually spend their
//! time in: the IMC crossbar and MLP forward pass, the RV32IM ISS and the
//! multicore cluster step loop, SPARTA's event-driven simulator and the
//! ASAP-seeded list scheduler, the DNA storage channel, and the parallel
//! Pareto sweep — plus two service-level benchmarks (`serve/*`) that drive
//! a live in-process `f2 serve` daemon over loopback TCP. Labels are
//! stable `group/function` strings — they are the keys `f2 check-bench`
//! joins baseline and current runs on, so renaming one is a breaking
//! change to every committed `BENCH_*.json`.
//!
//! All numbers are wall-clock and machine-dependent: they are **never**
//! KPIs and never appear in golden snapshots. The JSON report exists solely
//! so `f2 check-bench` can flag order-of-magnitude regressions on the same
//! machine (CI compares with a generous `--max-regress` for that reason).

use f2_core::benchkit::Harness;
use f2_core::energy::EnergyLedger;
use f2_core::exec::Pool;
use f2_core::json::{Json, ToJson};
use f2_core::pareto::{DesignSpace, Direction};
use f2_core::rng::{rng_for, Rng};
use f2_core::serve::{self, http};
use f2_core::tensor::Matrix;
use f2_core::workload::graph::rmat;

use f2_core::workload::sparse::{generate, SparseMatrix, SparsityPattern};
use f2_dna::channel::ChannelModel;
use f2_dna::sequence::{DnaBase, DnaSequence};
use f2_hls::ir::dot_product_kernel;
use f2_hls::schedule::{list_schedule, OpLatency, ResourceBudget};
use f2_hls::sparta::{run as sparta_run, CacheConfig, Kernel, SpartaConfig, WorkloadBuilder};
use f2_hls::spdataflow::{spgemm_cost, Dataflow, Policy, SpConfig};
use f2_imc::crossbar::{Adc, Crossbar, MvmScratch};
use f2_imc::device::DeviceModel;
use f2_imc::eval::{make_train_test, train_mlp};
use f2_imc::program::ProgramVerify;
use f2_scf::cpu::Cpu;
use f2_scf::isa::asm;
use f2_scf::memory::FlatMemory;
use f2_scf::multicore::{vector_add_program, MulticoreCluster, MulticoreConfig};

/// Identifies the JSON layout of a bench report.
pub const SCHEMA: &str = "f2-bench-v1";

/// How a suite run is sized and recorded.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Smaller problem sizes (the CI smoke configuration; committed
    /// baselines are generated with this on).
    pub quick: bool,
    /// Measured samples per benchmark.
    pub samples: usize,
    /// Substring filter on `group/function` labels.
    pub filter: Option<String>,
    /// Worker threads for the kernels that take a [`Pool`].
    pub threads: usize,
}

/// Runs the full suite and returns the harness holding the records.
pub fn run_suite(cfg: &SuiteConfig) -> Harness {
    let mut h = Harness::new();
    h.set_samples(cfg.samples);
    h.set_filter(cfg.filter.clone());
    bench_imc(&mut h, cfg.quick);
    bench_scf(&mut h, cfg.quick);
    bench_hls(&mut h, cfg.quick);
    bench_dna(&mut h, cfg.quick);
    bench_core(&mut h, cfg.quick, cfg.threads);
    bench_serve(&mut h, cfg);
    h
}

/// Serialises a finished suite run to the `f2-bench-v1` document
/// `check-bench` consumes.
pub fn suite_json(h: &Harness, cfg: &SuiteConfig) -> Json {
    Json::Obj(vec![
        ("schema".to_string(), SCHEMA.to_json()),
        ("threads".to_string(), cfg.threads.to_json()),
        ("quick".to_string(), cfg.quick.to_json()),
        ("samples".to_string(), cfg.samples.to_json()),
        (
            "records".to_string(),
            Json::Arr(h.results().iter().map(ToJson::to_json).collect()),
        ),
    ])
}

fn random_strand(len: usize, rng: &mut impl Rng) -> DnaSequence {
    DnaSequence::from_bases((0..len).map(|_| DnaBase::from_bits(rng.gen())).collect())
}

/// IMC: bit-serial crossbar MVM and the MLP forward pass (accuracy loop).
fn bench_imc(h: &mut Harness, quick: bool) {
    let mut group = h.group("imc");
    let (dim, bits) = if quick { (32, 4) } else { (64, 8) };
    let weights = Matrix::from_fn(dim, dim, |r, c| ((r * 7 + c) % 19) as f64 / 9.0 - 1.0);
    let mut rng = rng_for(51, "bench-imc-program");
    let xbar = Crossbar::program(
        DeviceModel::rram(),
        &weights,
        &ProgramVerify::default(),
        &mut rng,
    )
    .expect("valid weights");
    let x: Vec<f64> = (0..dim).map(|i| (i as f64 / dim as f64) - 0.5).collect();
    group.bench_function("mvm_bit_serial", |bch| {
        let adc = Adc::new(8);
        let mut rng = rng_for(51, "bench-imc-mvm");
        let mut scratch = MvmScratch::new();
        bch.iter(|| {
            let mut ledger = EnergyLedger::new();
            xbar.mvm_bit_serial_with(&x, 1.0, bits, &adc, &mut rng, &mut ledger, &mut scratch)
                .expect("valid geometry")
        })
    });

    let (classes, feat, hidden) = if quick { (4, 12, 16) } else { (6, 16, 24) };
    let (train, test) = make_train_test(classes, feat, 40, 50, 0.25, 7);
    let mlp = train_mlp(&train, hidden, 10, 0.05, 9);
    group.bench_function("eval_forward", |bch| bch.iter(|| mlp.accuracy(&test)));
}

/// SCF: the single-hart ISS run loop and the lockstep multicore step loop.
fn bench_scf(h: &mut Harness, quick: bool) {
    let mut group = h.group("scf");
    let iterations = if quick { 500 } else { 2000 };
    let program = [
        asm::addi(1, 0, 0),
        asm::addi(2, 0, iterations),
        asm::add(1, 1, 2),
        asm::addi(2, 2, -1),
        asm::bne(2, 0, -8),
        asm::ecall(),
    ];
    let mut mem = FlatMemory::with_program(0, &program);
    group.bench_function("cpu_run", |bch| {
        bch.iter(|| {
            let mut cpu = Cpu::new(0);
            cpu.run(&mut mem, 1_000_000).expect("program halts")
        })
    });

    let (cores, n) = if quick { (4, 128) } else { (8, 256) };
    let cluster_cfg = MulticoreConfig {
        cores,
        ..MulticoreConfig::snitch_like()
    };
    let vadd = vector_add_program(n as u32);
    group.bench_function("multicore_step", |bch| {
        bch.iter(|| {
            let mut cluster = MulticoreCluster::spmd(cluster_cfg, &vadd).expect("valid config");
            for i in 0..n {
                cluster
                    .tcdm_mut()
                    .write_word(i, i as u32)
                    .expect("in range");
                cluster
                    .tcdm_mut()
                    .write_word(n + i, 2 * i as u32)
                    .expect("in range");
            }
            cluster.run().expect("program halts")
        })
    });
}

/// HLS: SPARTA's event-driven simulator and ASAP-seeded list scheduling
/// (internally ASAP + ALAP mobility + the ready-list scan).
fn bench_hls(h: &mut Harness, quick: bool) {
    let mut group = h.group("hls");
    let graph = rmat(if quick { 7 } else { 8 }, 8, 5);
    let wl = WorkloadBuilder::new(&SparseMatrix::from_csr_graph(&graph))
        .kernel(Kernel::Spmv)
        .build();
    let cfg = SpartaConfig {
        accelerators: 4,
        contexts_per_accel: 8,
        mem_channels: 4,
        mem_latency: 100,
        noc_hop_latency: 2,
        context_switch_penalty: 1,
        cache: Some(CacheConfig::small()),
    };
    group.bench_function("sparta_spmv", |bch| {
        bch.iter(|| sparta_run(&wl, &cfg).expect("valid config"))
    });

    let dfg = dot_product_kernel(if quick { 64 } else { 256 });
    let lat = OpLatency::default();
    let budget = ResourceBudget::new(4, 4, 2);
    group.bench_function("schedule_asap", |bch| {
        bch.iter(|| list_schedule(&dfg, &lat, &budget).expect("feasible"))
    });

    // SpGEMM analytical cost models on a mixed-sparsity (power-law) matrix:
    // the cheapest fixed dataflow's symbolic pass, then the adaptive DP.
    let rows = if quick { 256 } else { 1024 };
    let m = generate(SparsityPattern::PowerLaw, rows, rows, 8, 5).expect("valid spec");
    let sp_cfg = SpConfig {
        tile_rows: 8,
        buffer_words: 512,
        ..SpConfig::default()
    };
    group.bench_function("spgemm_inner", |bch| {
        bch.iter(|| {
            spgemm_cost(&m, &m, Policy::Fixed(Dataflow::Inner), &sp_cfg).expect("valid config")
        })
    });
    group.bench_function("spgemm_adaptive", |bch| {
        bch.iter(|| spgemm_cost(&m, &m, Policy::Adaptive, &sp_cfg).expect("valid config"))
    });
}

/// DNA: the substitution/indel/dropout channel over a strand pool.
fn bench_dna(h: &mut Harness, quick: bool) {
    let mut group = h.group("dna");
    let strands_n = if quick { 20 } else { 100 };
    let mut rng = rng_for(52, "bench-dna-strands");
    let strands: Vec<DnaSequence> = (0..strands_n)
        .map(|_| random_strand(150, &mut rng))
        .collect();
    let model = ChannelModel::typical();
    group.bench_function("channel", |bch| {
        let mut rng = rng_for(52, "bench-dna-channel");
        bch.iter(|| model.sequence_pool(&strands, &mut rng))
    });
}

/// Core: the work-stealing parallel Pareto sweep over a synthetic
/// design space (evaluator cost dominated by the per-point math).
fn bench_core(h: &mut Harness, quick: bool, threads: usize) {
    let mut group = h.group("core");
    let per_axis = if quick { 6 } else { 10 };
    let space = DesignSpace::new()
        .axis("pe", (1..=per_axis).map(|v| v as f64))
        .axis("buf_kb", (1..=per_axis).map(|v| (v * 16) as f64))
        .axis("freq_mhz", (1..=per_axis).map(|v| (v * 100) as f64));
    let dirs = [Direction::Maximize, Direction::Minimize];
    let pool = Pool::new(threads.max(1));
    group.bench_function("pareto_sweep", |bch| {
        bch.iter(|| {
            space.sweep_with(&dirs, &pool, |p| {
                let (pe, buf, freq) = (p["pe"], p["buf_kb"], p["freq_mhz"]);
                let mut perf = 0.0;
                for k in 1..=64 {
                    perf += (pe * freq / (buf + k as f64)).sqrt();
                }
                vec![perf, pe * buf * freq]
            })
        })
    });
}

/// Serve: end-to-end service-level numbers over a live in-process server
/// (loopback TCP, real HTTP parsing, batching dispatcher, sharded cache).
/// The cache is primed first, so both benchmarks measure the *service*
/// path — parse, route, cache lookup, response write — not the experiment.
///
/// `p99_latency` times one cached `POST /run` round-trip per iteration
/// (the statistic gated in CI is benchkit's outlier-robust p10 of those
/// round-trips; the label names the service-level quantity it stands in
/// for). `throughput` times a burst of [`BURST`] keep-alive requests, so
/// its per-iteration cost is the inverse of sustained request throughput.
fn bench_serve(h: &mut Harness, cfg: &SuiteConfig) {
    /// Requests per `serve/throughput` iteration.
    const BURST: usize = 32;
    /// The identical cached request both benchmarks replay.
    const BODY: &[u8] =
        b"{\"experiment\":\"fig1_landscape\",\"seed\":0,\"quick\":true,\"threads\":1}";
    let wants = |label: &str| {
        cfg.filter
            .as_deref()
            .is_none_or(|needle| label.contains(needle))
    };
    // Don't boot a server when the filter excludes both serve labels.
    if !wants("serve/p99_latency") && !wants("serve/throughput") {
        return;
    }
    let server = serve::start(
        flagship2::experiments::registry(),
        serve::ServeConfig {
            threads: 2,
            shards: 8,
            ..serve::ServeConfig::default()
        },
    )
    .expect("bind an ephemeral loopback port");
    let addr = server.addr();
    let connect = || {
        let stream = std::net::TcpStream::connect(addr).expect("server is listening");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .expect("socket option");
        let _ = stream.set_nodelay(true);
        std::io::BufReader::new(stream)
    };
    let post_run = |client: &mut std::io::BufReader<std::net::TcpStream>| {
        http::write_request(client.get_mut(), "POST", "/run", "bench", BODY)
            .expect("request written");
        let resp = http::parse_response(client).expect("response parses");
        assert_eq!(resp.status, 200, "serve bench request failed");
        resp
    };
    // Prime the cache (and check trace-id propagation end-to-end on the
    // way): every measured request below is a pure hit, and the measured
    // iterations stay header-free so the workload matches the committed
    // baselines byte for byte.
    {
        let mut client = connect();
        http::write_request_with_headers(
            client.get_mut(),
            "POST",
            "/run",
            "bench",
            &[(serve::TRACE_HEADER, "bench-prime")],
            BODY,
        )
        .expect("request written");
        let resp = http::parse_response(&mut client).expect("response parses");
        assert_eq!(resp.status, 200, "serve bench priming failed");
        assert_eq!(
            resp.header("x-f2-trace-id"),
            Some("bench-prime"),
            "serve must echo the client's trace id"
        );
    }

    let mut group = h.group("serve");
    group.bench_function("p99_latency", |bch| {
        let mut client = connect();
        bch.iter(|| post_run(&mut client));
    });
    group.bench_function("throughput", |bch| {
        let mut client = connect();
        bch.iter(|| {
            for _ in 0..BURST {
                post_run(&mut client);
            }
        });
    });
    drop(group);
    server.shutdown();
    server.join().expect("server joins cleanly after the bench");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The twelve stable labels, in registration order.
    pub const EXPECTED_LABELS: [&str; 12] = [
        "imc/mvm_bit_serial",
        "imc/eval_forward",
        "scf/cpu_run",
        "scf/multicore_step",
        "hls/sparta_spmv",
        "hls/schedule_asap",
        "hls/spgemm_inner",
        "hls/spgemm_adaptive",
        "dna/channel",
        "core/pareto_sweep",
        "serve/p99_latency",
        "serve/throughput",
    ];

    #[test]
    fn suite_registers_the_stable_labels() {
        let cfg = SuiteConfig {
            quick: true,
            samples: 3,
            filter: None,
            threads: 2,
        };
        let h = run_suite(&cfg);
        let labels: Vec<&str> = h.results().iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, EXPECTED_LABELS);
    }

    #[test]
    fn suite_json_document_shape() {
        let cfg = SuiteConfig {
            quick: true,
            samples: 3,
            filter: Some("dna/channel".to_string()),
            threads: 1,
        };
        let h = run_suite(&cfg);
        let doc = suite_json(&h, &cfg);
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("threads").and_then(Json::as_f64), Some(1.0));
        let records = doc
            .get("records")
            .and_then(Json::as_array)
            .expect("records array");
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].get("label").and_then(Json::as_str),
            Some("dna/channel")
        );
        assert!(records[0].get("p10_ns").and_then(Json::as_f64).is_some());
    }
}
