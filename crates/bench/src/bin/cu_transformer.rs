//! E12 / Fig. 9 — the prototype Compute Unit on BFloat16 transformer blocks.
//!
//! Reproduces "up to 150 GFLOPS and 1.5 TFLOPS/W at 460 MHz, 0.55 V" plus
//! the per-phase cycle breakdown and ablations over core count and TCDM
//! banking.

use f2_bench::{fmt, print_table, section};
use f2_core::workload::transformer::{bert_base_block, tiny_block, TransformerConfig};
use f2_scf::cluster::{ComputeUnit, CuConfig};
use f2_scf::power::CuPowerModel;

fn block_table(cu: &ComputeUnit, blocks: &[(&str, TransformerConfig)]) {
    let mut rows = Vec::new();
    for (name, block) in blocks {
        let r = cu.run_transformer_block(block);
        rows.push(vec![
            name.to_string(),
            r.flops.to_string(),
            r.cycles.gemm.to_string(),
            (r.cycles.softmax + r.cycles.layernorm).to_string(),
            fmt(r.achieved.value(), 1),
            fmt(r.power.value() * 1000.0, 1),
            fmt(r.efficiency.value() / 1000.0, 2),
            fmt(r.gemm_utilization * 100.0, 1),
        ]);
    }
    print_table(
        &[
            "Block",
            "FLOPs",
            "GEMM cyc",
            "Elementwise cyc",
            "GFLOPS",
            "Power mW",
            "TFLOPS/W",
            "Array util %",
        ],
        &rows,
    );
}

fn main() {
    let cu = ComputeUnit::prototype();
    println!(
        "Prototype CU: {} cores + {}x{} bf16 tensor array, {} KiB TCDM,",
        cu.config().cores,
        cu.config().tensor.rows,
        cu.config().tensor.cols,
        cu.config().tcdm_kib
    );
    println!(
        "GF12 @ {:.0} MHz / {:.2} V, area {} mm2; ISS-calibrated scalar loop: {:.1} cyc/elem",
        cu.power_model().clock.value(),
        cu.power_model().vdd,
        cu.power_model().area.value(),
        cu.loop_cycles_per_element()
    );

    section("Fig. 9 KPIs on transformer blocks");
    block_table(
        &cu,
        &[
            ("BERT-base (n=128)", bert_base_block()),
            ("tiny (n=64,d=128)", tiny_block()),
            (
                "long-seq (n=512,d=768)",
                TransformerConfig::new(768, 12, 512, 3072).expect("valid config"),
            ),
        ],
    );
    println!("\nPublished: up to 150 GFLOPS, 1.5 TFLOPS/W on transformer blocks.");

    section("Ablation: core count (elementwise scaling)");
    let mut rows = Vec::new();
    for cores in [2usize, 4, 8, 16] {
        let cfg = CuConfig {
            cores,
            ..CuConfig::prototype()
        };
        let cu = ComputeUnit::new(cfg, CuPowerModel::gf12_prototype()).expect("valid config");
        let r = cu.run_transformer_block(&bert_base_block());
        rows.push(vec![
            cores.to_string(),
            (r.cycles.softmax + r.cycles.layernorm).to_string(),
            fmt(r.achieved.value(), 1),
            fmt(r.efficiency.value() / 1000.0, 2),
        ]);
    }
    print_table(&["Cores", "Elementwise cyc", "GFLOPS", "TFLOPS/W"], &rows);

    section("Ablation: elementwise engine — scalar cores vs Spatz vector unit");
    let long = TransformerConfig::new(768, 12, 512, 3072).expect("valid config");
    let mut rows = Vec::new();
    for (label, cfg) in [
        ("8 scalar cores", CuConfig::prototype()),
        (
            "Spatz 8-lane vector unit",
            CuConfig::prototype_with_vector(),
        ),
    ] {
        let cu = ComputeUnit::new(cfg, CuPowerModel::gf12_prototype()).expect("valid config");
        let r = cu.run_transformer_block(&long);
        rows.push(vec![
            label.to_string(),
            (r.cycles.softmax + r.cycles.layernorm).to_string(),
            fmt(r.achieved.value(), 1),
            fmt(r.efficiency.value() / 1000.0, 2),
        ]);
    }
    print_table(&["Engine", "Elementwise cyc", "GFLOPS", "TFLOPS/W"], &rows);

    section("Ablation: supply voltage (CV^2 scaling)");
    let mut rows = Vec::new();
    for vdd in [0.55, 0.65, 0.8] {
        let cu = ComputeUnit::new(
            CuConfig::prototype(),
            CuPowerModel::gf12_prototype().at_voltage(vdd),
        )
        .expect("valid config");
        let r = cu.run_transformer_block(&bert_base_block());
        rows.push(vec![
            fmt(vdd, 2),
            fmt(r.power.value() * 1000.0, 1),
            fmt(r.efficiency.value() / 1000.0, 2),
        ]);
    }
    print_table(&["Vdd", "Power mW", "TFLOPS/W"], &rows);
}
