//! E3 / §IV (device level) — program-and-verify vs open-loop programming.
//!
//! Reproduces: (a) P&V collapses the conductance-error distribution at the
//! cost of more pulses; (b) deployed-DNN accuracy is retained under P&V and
//! degraded by open-loop programming; (c) PCM drift erodes accuracy over
//! time and digital compensation restores it.

use f2_bench::{fmt, print_table, section};
use f2_core::rng::rng_for;
use f2_imc::device::DeviceModel;
use f2_imc::eval::{imc_accuracy, make_train_test, train_mlp, DeploymentScenario};
use f2_imc::program::{program_array, OpenLoop, ProgramVerify, Programmer};
use f2_imc::tile::TileConfig;

fn programming_table() {
    section("Programming error vs pulse budget (RRAM, 2000 cells)");
    let dev = DeviceModel::rram();
    let weights: Vec<f64> = (0..2000).map(|i| (i % 101) as f64 / 100.0).collect();
    let mut rows = Vec::new();
    let mut rng = rng_for(1, "e3-open");
    let (_, ol) = program_array(&OpenLoop, &dev, &weights, &mut rng);
    rows.push(vec![
        "open-loop".to_string(),
        fmt(ol.rms_error * 100.0, 2),
        fmt(ol.total_pulses as f64 / weights.len() as f64, 1),
    ]);
    for tol in [0.05, 0.02, 0.01, 0.005] {
        let pv = ProgramVerify {
            tolerance: tol,
            max_pulses: 64,
        };
        let mut rng = rng_for(1, "e3-pv");
        let (_, st) = program_array(&pv, &dev, &weights, &mut rng);
        rows.push(vec![
            format!("P&V tol {:.1}%", tol * 100.0),
            fmt(st.rms_error * 100.0, 2),
            fmt(st.total_pulses as f64 / weights.len() as f64, 1),
        ]);
    }
    print_table(&["Scheme", "RMS error (% window)", "Pulses/cell"], &rows);
}

fn accuracy_table() {
    section("Deployed MLP accuracy (6-class synthetic task, tiled IMC)");
    let (train, test) = make_train_test(6, 12, 80, 40, 0.25, 7);
    let mlp = train_mlp(&train, 20, 15, 0.05, 9);
    println!("float32 reference accuracy: {:.3}", mlp.accuracy(&test));

    let tile = TileConfig {
        tile_rows: 16,
        tile_cols: 16,
        adc_bits: 9,
        analog_accumulation: true,
        drift_compensation: false,
    };
    let mut rows = Vec::new();
    for (label, dev, t, comp, pv) in [
        ("RRAM P&V, t=1s", DeviceModel::rram(), 1.0, false, true),
        (
            "RRAM open-loop, t=1s",
            DeviceModel::rram(),
            1.0,
            false,
            false,
        ),
        ("PCM P&V, t=1s", DeviceModel::pcm(), 1.0, false, true),
        ("PCM P&V, t=1e7s", DeviceModel::pcm(), 1e7, false, true),
        ("PCM P&V, t=1e7s +comp", DeviceModel::pcm(), 1e7, true, true),
    ] {
        let scenario = DeploymentScenario {
            device: dev,
            inference_time: t,
            tile: TileConfig {
                drift_compensation: comp,
                ..tile
            },
        };
        let eval = if pv {
            run(&mlp, &test, &scenario, &ProgramVerify::default())
        } else {
            run(&mlp, &test, &scenario, &OpenLoop)
        };
        rows.push(vec![label.to_string(), fmt(eval, 3)]);
    }
    print_table(&["Scenario", "Accuracy"], &rows);
    println!("\nShape check: P&V ≈ float; open-loop loses accuracy; PCM drift");
    println!("erodes it over 7 decades; digital compensation restores it (§IV).");
}

fn run<P: Programmer>(
    mlp: &f2_imc::eval::Mlp,
    test: &f2_imc::eval::Dataset,
    scenario: &DeploymentScenario,
    programmer: &P,
) -> f64 {
    imc_accuracy(mlp, test, scenario, programmer, 11)
        .expect("deployment is valid")
        .accuracy
}

fn main() {
    programming_table();
    accuracy_table();
}
