//! E10 / Fig. 6b — end-to-end DNA storage channel round trip.
//!
//! Reproduces the DNAssim-style simulation: payload -> oligos -> noisy
//! channel -> clustering -> consensus -> decode, sweeping the channel error
//! rate to find where recovery breaks down.

use f2_bench::{fmt, print_table, section};
use f2_dna::channel::ChannelModel;
use f2_dna::pipeline::{run_pipeline, PipelineConfig};

const PAYLOAD: &[u8] = b"The ICSC Italian National Research Center for High-Performance \
Computing, Big Data, and Quantum Computing is a central hub for supercomputing \
infrastructure, supported by ten specialized research spokes.";

fn main() {
    println!("Payload: {} bytes", PAYLOAD.len());

    section("Round trip across channel profiles");
    let mut rows = Vec::new();
    for (name, ch) in [
        (
            "noiseless",
            ChannelModel {
                substitution: 0.0,
                insertion: 0.0,
                deletion: 0.0,
                dropout: 0.0,
                mean_coverage: 5.0,
            },
        ),
        ("typical (Illumina-class)", ChannelModel::typical()),
        ("harsh (nanopore-class)", ChannelModel::harsh()),
    ] {
        let cfg = PipelineConfig {
            channel: ch,
            ..PipelineConfig::default()
        };
        let (_, report) = run_pipeline(PAYLOAD, &cfg, 42).expect("valid config");
        rows.push(vec![
            name.to_string(),
            report.strands_written.to_string(),
            report.reads.to_string(),
            report.clusters.to_string(),
            report.decode.parity_recovered.to_string(),
            report.payload_recovered.to_string(),
            report.distance_calls.to_string(),
        ]);
    }
    print_table(
        &[
            "Channel",
            "Oligos",
            "Reads",
            "Clusters",
            "Parity fixes",
            "Recovered",
            "Dist calls",
        ],
        &rows,
    );

    section("Substitution-rate sweep (recovery probability over 5 seeds)");
    let mut rows = Vec::new();
    for sub in [0.005, 0.01, 0.02, 0.05, 0.1] {
        let cfg = PipelineConfig {
            channel: ChannelModel {
                substitution: sub,
                ..ChannelModel::typical()
            },
            ..PipelineConfig::default()
        };
        let ok = (0..5)
            .filter(|&seed| {
                run_pipeline(PAYLOAD, &cfg, seed)
                    .map(|(_, r)| r.payload_recovered)
                    .unwrap_or(false)
            })
            .count();
        rows.push(vec![fmt(sub * 100.0, 1), format!("{ok}/5")]);
    }
    print_table(&["Substitution %", "Recovered"], &rows);
    println!("\nShape check: clean recovery at realistic error rates, graceful");
    println!("breakdown as the channel degrades — the decoding workload whose");
    println!("cost motivates the FPGA accelerator (§VI).");
}
