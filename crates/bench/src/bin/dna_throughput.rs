//! E9 / §VI — the FPGA edit-distance accelerator for DNA storage.
//!
//! Reproduces the published Alveo U50 figures (16.8 TCUPS, 46 Mpair/J, ~90%
//! computing efficiency at ~90% resource use) from the systolic-array model,
//! compares against CPU baselines, and benchmarks the *actual* software
//! kernels of `f2-dna` to ground the CUPS unit.

use f2_bench::{fmt, print_table, section};
use f2_core::rng::rng_for;
use f2_dna::accelerator::{AcceleratorConfig, CpuBaseline};
use f2_dna::levenshtein::{levenshtein_banded, levenshtein_dp, levenshtein_myers};
use f2_dna::sequence::{DnaBase, DnaSequence};
use std::time::Instant;

fn software_kernels() {
    section("Software kernel throughput (this machine, 150-base pairs)");
    let mut rng = rng_for(5, "e9");
    let pairs: Vec<(DnaSequence, DnaSequence)> = (0..200)
        .map(|_| {
            let s = |rng: &mut _| {
                DnaSequence::from_bases(
                    (0..150)
                        .map(|_| DnaBase::from_bits(f2_core::rng::Rng::gen(rng)))
                        .collect(),
                )
            };
            (s(&mut rng), s(&mut rng))
        })
        .collect();
    let mut rows = Vec::new();
    for (name, f) in [
        (
            "exact DP",
            Box::new(|a: &DnaSequence, b: &DnaSequence| levenshtein_dp(a, b).cell_updates)
                as Box<dyn Fn(&DnaSequence, &DnaSequence) -> u64>,
        ),
        (
            "banded (k=16)",
            Box::new(|a: &DnaSequence, b: &DnaSequence| levenshtein_banded(a, b, 16).cell_updates),
        ),
        (
            "Myers bit-parallel",
            Box::new(|a: &DnaSequence, b: &DnaSequence| levenshtein_myers(a, b).cell_updates),
        ),
    ] {
        let start = Instant::now();
        let mut cells = 0u64;
        for (a, b) in &pairs {
            cells += f(a, b);
        }
        let dt = start.elapsed().as_secs_f64();
        rows.push(vec![
            name.to_string(),
            fmt(cells as f64 / dt / 1e9, 2),
            fmt(pairs.len() as f64 / dt / 1e3, 1),
        ]);
    }
    print_table(&["Kernel", "GCUPS", "kpairs/s"], &rows);
}

fn accelerator_model() {
    section("Alveo U50 accelerator model vs baselines (150-base pairs)");
    let fpga = AcceleratorConfig::alveo_u50();
    let cpu = CpuBaseline::server();
    let rows = vec![
        vec![
            "Alveo U50 systolic [35]".to_string(),
            fmt(fpga.throughput().value(), 1),
            fmt(fpga.pairs_per_second(150) / 1e6, 0),
            fmt(fpga.pair_efficiency(150).value(), 1),
            fmt(fpga.compute_efficiency * 100.0, 0),
            fmt(fpga.resource_utilization * 100.0, 0),
        ],
        vec![
            "32-core CPU (Myers)".to_string(),
            fmt(cpu.throughput().value(), 3),
            fmt(cpu.throughput().value() * 1e12 / (150.0 * 150.0) / 1e6, 1),
            fmt(cpu.pair_efficiency(150).value(), 3),
            "-".to_string(),
            "-".to_string(),
        ],
    ];
    print_table(
        &[
            "Platform",
            "TCUPS",
            "Mpairs/s",
            "Mpair/J",
            "Compute eff %",
            "Resource %",
        ],
        &rows,
    );
    println!("\nPublished: 16.8 TCUPS, 46 Mpair/J, ~90% efficiency, ~90% resources.");
    println!(
        "Speedup over CPU: {:.0}x throughput, {:.0}x energy efficiency.",
        fpga.throughput().value() / cpu.throughput().value(),
        fpga.pair_efficiency(150).value() / cpu.pair_efficiency(150).value()
    );

    section("Ablation: strand length vs pair throughput (quadratic cell count)");
    let mut rows = Vec::new();
    for len in [100usize, 150, 200, 300] {
        rows.push(vec![
            len.to_string(),
            fmt(fpga.pairs_per_second(len) / 1e6, 0),
            fmt(fpga.pair_efficiency(len).value(), 1),
        ]);
    }
    print_table(&["Strand length", "Mpairs/s", "Mpair/J"], &rows);
}

fn main() {
    software_kernels();
    accelerator_model();
}
