//! E8 / §VI — I/O-path optimisation with computational storage, persistent
//! memory and low-latency SSDs.
//!
//! Reproduces: "a training time reduction of up to 10% and inference
//! throughput improvement of up to 10%" from the computational-storage
//! path, plus the wider storage ladder.

use f2_bench::{fmt, print_table, section};
use f2_hetero::device::ComputeDevice;
use f2_hetero::pipeline::{run_inference, run_training, PipelineSpec};
use f2_hetero::storage::StorageDevice;

fn main() {
    let spec = PipelineSpec::segmentation_default();
    let gpu = ComputeDevice::datacenter_gpu();
    let fpga = ComputeDevice::fpga_card();
    let base_train = run_training(&spec, &gpu, &StorageDevice::nvme_ssd());
    let base_infer = run_inference(&spec, &fpga, &StorageDevice::nvme_ssd());

    section("GPU training epoch vs storage device");
    let mut rows = Vec::new();
    for s in StorageDevice::io_path_candidates() {
        let r = run_training(&spec, &gpu, &s);
        rows.push(vec![
            s.name.clone(),
            fmt(r.total_time * 1e3, 1),
            fmt((1.0 - r.total_time / base_train.total_time) * 100.0, 1),
        ]);
    }
    print_table(&["Storage", "Epoch ms", "vs NVMe %"], &rows);

    section("FPGA inference throughput vs storage device");
    let mut rows = Vec::new();
    for s in StorageDevice::io_path_candidates() {
        let r = run_inference(&spec, &fpga, &s);
        rows.push(vec![
            s.name.clone(),
            fmt(r.throughput, 0),
            fmt((r.throughput / base_infer.throughput - 1.0) * 100.0, 1),
        ]);
    }
    print_table(&["Storage", "Samples/s", "vs NVMe %"], &rows);
    println!("\nShape check: computational storage buys ~10% on both paths —");
    println!("the §VI 'up to 10%' claims.");
}
