//! E7 / §VI — benchmarking campaign on the medical-image-segmentation DL
//! pipeline across CPU / GPU / FPGA.
//!
//! Reproduces the profiling tables: per-stage times, bottleneck
//! identification, and the platform trade-off (GPU fastest training, FPGA
//! best inference energy).

use f2_bench::{fmt, print_table, section};
use f2_hetero::device::ComputeDevice;
use f2_hetero::pipeline::{run_inference, run_training, PipelineSpec, Stage};
use f2_hetero::storage::StorageDevice;

fn stage_row(report: &f2_hetero::pipeline::PipelineReport) -> Vec<String> {
    let t = |s| fmt(report.stage_time(s) * 1e3, 1);
    vec![
        report.device.clone(),
        t(Stage::Load),
        t(Stage::Preprocess),
        t(Stage::Transfer),
        t(Stage::Compute),
        t(Stage::Postprocess),
        fmt(report.total_time * 1e3, 1),
        format!("{:?}", report.bottleneck()),
    ]
}

fn main() {
    let spec = PipelineSpec::segmentation_default();
    let nvme = StorageDevice::nvme_ssd();
    println!(
        "Workload: {} ({} MACs/sample), {} samples of {:.1} KB",
        spec.model.name(),
        spec.model.total_macs(),
        spec.num_samples,
        spec.sample_bytes / 1e3
    );

    section("Training epoch profile per device (ms, NVMe storage)");
    let rows: Vec<Vec<String>> = ComputeDevice::campaign()
        .iter()
        .filter(|d| d.trains)
        .map(|d| stage_row(&run_training(&spec, d, &nvme)))
        .collect();
    print_table(
        &[
            "Device",
            "Load",
            "Preproc",
            "Xfer",
            "Compute",
            "Postproc",
            "Total",
            "Bottleneck",
        ],
        &rows,
    );

    section("Inference profile per device (ms for the campaign, NVMe)");
    let mut rows = Vec::new();
    for d in ComputeDevice::campaign() {
        let r = run_inference(&spec, &d, &nvme);
        let mut row = stage_row(&r);
        row.push(fmt(r.throughput, 0));
        row.push(fmt(r.energy.value(), 1));
        rows.push(row);
    }
    print_table(
        &[
            "Device",
            "Load",
            "Preproc",
            "Xfer",
            "Compute",
            "Postproc",
            "Total",
            "Bottleneck",
            "Samples/s",
            "Energy J",
        ],
        &rows,
    );
    println!("\nShape check: GPU wins training time; FPGA wins inference energy;");
    println!("fast accelerators expose the I/O path as the bottleneck (§VI).");
}
