//! The unified experiment runner — see `f2 --help` and
//! [`f2_bench::runner`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = flagship2::experiments::registry();
    ExitCode::from(f2_bench::runner::main_with(registry, &args))
}
