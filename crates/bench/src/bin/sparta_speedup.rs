//! E2 / §III — SPARTA parallel multi-threaded accelerators on irregular
//! graph kernels.
//!
//! Reproduces the claim shape: SPARTA-generated accelerators (spatial
//! lanes plus hardware contexts, multi-channel NoC and memory-side cache)
//! beat the sequential HLS baseline on irregular workloads, with speedup
//! growing as memory latency rises (context switching hides it).

use f2_bench::{fmt, print_table, section};
use f2_core::rng::DEFAULT_SEED;
use f2_core::workload::graph::rmat;
use f2_hls::sparta::{bfs_workload, run, spmv_workload, CacheConfig, SpartaConfig};

fn main() {
    let graph = rmat(10, 8, DEFAULT_SEED);
    println!(
        "Workload graphs: RMAT scale-10 ({} vertices, {} edges, power-law)",
        graph.num_nodes(),
        graph.num_edges()
    );

    for (name, wl) in [
        ("SpMV", spmv_workload(&graph)),
        ("BFS", bfs_workload(&graph)),
    ] {
        section(&format!(
            "{name}: SPARTA configuration sweep (mem latency 100)"
        ));
        let base = run(&wl, &SpartaConfig::sequential_baseline(100)).expect("valid config");
        let mut rows = Vec::new();
        for (accels, ctxs, chans, cache) in [
            (1, 1, 1, false),
            (1, 8, 1, false),
            (1, 8, 4, false),
            (4, 8, 4, false),
            (4, 8, 4, true),
        ] {
            let cfg = SpartaConfig {
                accelerators: accels,
                contexts_per_accel: ctxs,
                mem_channels: chans,
                mem_latency: 100,
                noc_hop_latency: 2,
                context_switch_penalty: 1,
                cache: cache.then(CacheConfig::small),
            };
            let r = run(&wl, &cfg).expect("valid config");
            rows.push(vec![
                format!(
                    "{accels}x{ctxs}ctx/{chans}ch{}",
                    if cache { "+cache" } else { "" }
                ),
                r.cycles.to_string(),
                fmt(base.cycles as f64 / r.cycles as f64, 2),
                fmt(r.utilization(&cfg), 2),
                fmt(r.hit_rate(), 2),
            ]);
        }
        print_table(
            &["Config", "Cycles", "Speedup", "Lane util", "Cache hit"],
            &rows,
        );
    }

    section("Ablation: speedup vs external memory latency (4x8ctx/4ch+cache)");
    let wl = spmv_workload(&graph);
    let mut rows = Vec::new();
    for lat in [25u32, 50, 100, 200, 400] {
        let cfg = SpartaConfig {
            accelerators: 4,
            contexts_per_accel: 8,
            mem_channels: 4,
            mem_latency: lat,
            noc_hop_latency: 2,
            context_switch_penalty: 1,
            cache: Some(CacheConfig::small()),
        };
        let base = run(&wl, &SpartaConfig::sequential_baseline(lat)).expect("valid config");
        let opt = run(&wl, &cfg).expect("valid config");
        rows.push(vec![
            lat.to_string(),
            base.cycles.to_string(),
            opt.cycles.to_string(),
            fmt(base.cycles as f64 / opt.cycles as f64, 2),
        ]);
    }
    print_table(
        &["Mem latency", "Baseline cyc", "SPARTA cyc", "Speedup"],
        &rows,
    );
    println!("\nShape check: speedup grows with memory latency — the latency-hiding");
    println!("claim of the SPARTA template (§III).");
}
