//! E1 / Fig. 1 — the TOPS/W landscape of state-of-the-art AI accelerators.
//!
//! Regenerates the scatter data (peak TOPS, power, TOPS/W, class) and the
//! per-class medians whose ordering the paper's narrative relies on:
//! CPU ≪ GPU ≈ FPGA < CGRA < NPU < IMC-augmented NPUs.

use f2_bench::{fmt, print_table, section};
use f2_core::platform::{fig1_catalog, median_efficiency, PlatformClass};

fn main() {
    section("Fig. 1 — AI accelerator landscape (peak throughput vs efficiency)");
    let catalog = fig1_catalog();
    let rows: Vec<Vec<String>> = catalog
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                p.class.to_string(),
                fmt(p.peak.value(), 1),
                fmt(p.power.value(), 3),
                fmt(p.efficiency().value(), 2),
            ]
        })
        .collect();
    print_table(
        &["Platform", "Class", "Peak TOPS", "Power W", "TOPS/W"],
        &rows,
    );

    section("Per-class median efficiency (the Fig. 1 'clusters')");
    let classes = [
        PlatformClass::Cpu,
        PlatformClass::Gpu,
        PlatformClass::Fpga,
        PlatformClass::Cgra,
        PlatformClass::Npu,
        PlatformClass::RiscV,
        PlatformClass::NpuSramImc,
        PlatformClass::NpuNvmImc,
    ];
    let rows: Vec<Vec<String>> = classes
        .iter()
        .filter_map(|&c| {
            median_efficiency(&catalog, c).map(|m| vec![c.to_string(), fmt(m.value(), 2)])
        })
        .collect();
    print_table(&["Class", "Median TOPS/W"], &rows);
    println!("\nShape check: CPUs are least efficient; IMC-augmented NPUs dominate,");
    println!("with analog NVM IMC above digital SRAM IMC — matching Fig. 1.");
}
