//! Thin wrapper kept for compatibility: forwards to `f2 run scf_scaling`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let registry = flagship2::experiments::registry();
    ExitCode::from(f2_bench::runner::forward(&registry, "scf_scaling"))
}
