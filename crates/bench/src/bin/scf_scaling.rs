//! E13 / Fig. 8 — Scalable Compute Fabric sizing study.
//!
//! Reproduces the fabric-scaling behaviour the SCF template is designed
//! around: near-linear throughput growth with CU count until the shared
//! HBM (or NoC bisection) saturates, and entry into the >1 W power regime
//! the paper targets.

use f2_bench::{fmt, print_table, section};
use f2_core::kpi::GigabytesPerSecond;
use f2_core::workload::transformer::bert_base_block;
use f2_scf::fabric::scaling_sweep;

fn main() {
    let block = bert_base_block();

    for (label, hbm) in [
        ("single HBM2E stack (410 GB/s)", 410.0),
        ("dual stack (820 GB/s)", 820.0),
    ] {
        section(&format!("Throughput scaling, {label}"));
        let counts = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
        let reports =
            scaling_sweep(&counts, &block, GigabytesPerSecond::new(hbm)).expect("valid sweep");
        let rows: Vec<Vec<String>> = reports
            .iter()
            .map(|r| {
                vec![
                    r.cu_count.to_string(),
                    fmt(r.achieved.value() / 1000.0, 2),
                    fmt(r.blocks_per_second, 0),
                    fmt(r.power.value(), 2),
                    fmt(r.scaling_efficiency * 100.0, 0),
                    if r.hbm_bound { "memory" } else { "compute" }.to_string(),
                ]
            })
            .collect();
        print_table(
            &[
                "CUs",
                "TFLOPS",
                "Blocks/s",
                "Power W",
                "Scaling %",
                "Bound by",
            ],
            &rows,
        );
    }
    println!("\nShape check: linear scaling until HBM saturates; doubling HBM");
    println!("moves the knee out; fabric power crosses 1 W within a handful of");
    println!("CUs — the >1W HPC-inference regime of Fig. 7/8.");
}
