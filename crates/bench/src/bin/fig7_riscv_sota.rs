//! E11 / Fig. 7 — RISC-V acceleration state of the art.
//!
//! Regenerates the power/performance scatter and the power-band histogram
//! behind the paper's observation that current RISC-V DNN/transformer
//! accelerators "cluster, especially in the 100mW-1W power range", leaving
//! the >1W HPC-inference niche open for the SCF.

use f2_bench::{fmt, print_table, section};
use f2_core::platform::{riscv_sota_catalog, PowerBand};
use std::collections::BTreeMap;

fn main() {
    section("Fig. 7 — RISC-V DNN/transformer accelerators");
    let catalog = riscv_sota_catalog();
    let rows: Vec<Vec<String>> = catalog
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                fmt(p.peak.value() * 1000.0, 1), // GOPS
                fmt(p.power.value(), 3),
                fmt(p.efficiency().value(), 2),
                PowerBand::classify(p.power).to_string(),
            ]
        })
        .collect();
    print_table(
        &["Architecture", "Peak GOPS", "Power W", "TOPS/W", "Band"],
        &rows,
    );

    section("Power-band histogram");
    let mut bands: BTreeMap<PowerBand, usize> = BTreeMap::new();
    for p in &catalog {
        *bands.entry(PowerBand::classify(p.power)).or_insert(0) += 1;
    }
    let rows: Vec<Vec<String>> = bands
        .iter()
        .map(|(b, n)| vec![b.to_string(), n.to_string()])
        .collect();
    print_table(&["Band", "Architectures"], &rows);
    println!("\nShape check: the 100mW-1W band holds the plurality of designs;");
    println!("the >1W band is sparse — the gap the ICSC Flagship 2 SCF targets.");
}
