//! E12 ablation — TCDM banking sensitivity, execution-driven.
//!
//! DESIGN.md calls out "TCDM banking factor" as a §VII design choice to
//! ablate. Unlike the analytical CU model, this ablation *executes real
//! RV32IM programs* on the multi-core cluster simulator: eight Snitch-like
//! ISS cores run an SPMD vector kernel against the shared L1 while the bank
//! count sweeps, exposing the conflict-rate knee that sizes the interleaving.

use f2_bench::{fmt, print_table, section};
use f2_scf::multicore::{vector_add_program, MulticoreCluster, MulticoreConfig};

fn main() {
    let n = 512u32;
    section("8-core SPMD vector-add (512 elements): TCDM banks vs conflicts");
    let mut rows = Vec::new();
    for banks in [1usize, 2, 4, 8, 16, 32, 64] {
        let cfg = MulticoreConfig {
            cores: 8,
            tcdm_banks: banks,
            tcdm_words_per_bank: 4096 / banks,
            max_cycles: 50_000_000,
        };
        let mut cluster =
            MulticoreCluster::spmd(cfg, &vector_add_program(n)).expect("valid config");
        // Preload operands.
        for i in 0..n as usize {
            cluster.tcdm_mut().write_word(i, i as u32).expect("in range");
            cluster
                .tcdm_mut()
                .write_word(n as usize + i, 7 * i as u32)
                .expect("in range");
        }
        let report = cluster.run().expect("programs halt");
        rows.push(vec![
            banks.to_string(),
            report.cycles.to_string(),
            report.tcdm_accesses.to_string(),
            report.conflict_stalls.to_string(),
            fmt(report.conflict_rate(), 3),
        ]);
    }
    print_table(
        &["Banks", "Cycles", "TCDM accesses", "Conflict stalls", "Stalls/access"],
        &rows,
    );
    println!("\nShape check: conflicts collapse once banks >= 2x cores — the");
    println!("interleaving rule Snitch-class clusters (and the Fig. 9 CU) follow.");

    section("Core-count scaling at 32 banks (execution-driven)");
    let mut rows = Vec::new();
    let mut base = None;
    for cores in [1usize, 2, 4, 8, 16] {
        let cfg = MulticoreConfig {
            cores,
            tcdm_banks: 32,
            tcdm_words_per_bank: 128,
            max_cycles: 50_000_000,
        };
        let mut cluster =
            MulticoreCluster::spmd(cfg, &vector_add_program(n)).expect("valid config");
        let report = cluster.run().expect("programs halt");
        let b = *base.get_or_insert(report.cycles);
        rows.push(vec![
            cores.to_string(),
            report.cycles.to_string(),
            fmt(b as f64 / report.cycles as f64, 2),
        ]);
    }
    print_table(&["Cores", "Cycles", "Speedup"], &rows);
}
