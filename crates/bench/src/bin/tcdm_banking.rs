//! E12 ablation — TCDM banking sensitivity, execution-driven.
//!
//! DESIGN.md calls out "TCDM banking factor" as a §VII design choice to
//! ablate. Unlike the analytical CU model, this ablation *executes real
//! RV32IM programs* on the multi-core cluster simulator: eight Snitch-like
//! ISS cores run an SPMD vector kernel against the shared L1 while the bank
//! count sweeps, exposing the conflict-rate knee that sizes the interleaving.
//!
//! The per-configuration simulations are independent, so the sweep itself
//! runs on the `f2_core::exec` worker pool; the binary cross-checks the
//! parallel sweep against a sequential one (bit-identical reports) and
//! prints the host-side speedup.

use std::time::Instant;

use f2_bench::{emit_json, fmt, print_table, section};
use f2_core::exec;
use f2_scf::multicore::{
    sweep_configs, vector_add_program, MulticoreCluster, MulticoreConfig, MulticoreReport,
};

const N: u32 = 512;

fn preload(cluster: &mut MulticoreCluster) {
    for i in 0..N as usize {
        cluster
            .tcdm_mut()
            .write_word(i, i as u32)
            .expect("in range");
        cluster
            .tcdm_mut()
            .write_word(N as usize + i, 7 * i as u32)
            .expect("in range");
    }
}

fn run_sequential(configs: &[MulticoreConfig], program: &[u32]) -> Vec<MulticoreReport> {
    configs
        .iter()
        .map(|cfg| {
            let mut cluster = MulticoreCluster::spmd(*cfg, program).expect("valid config");
            preload(&mut cluster);
            cluster.run().expect("programs halt")
        })
        .collect()
}

fn main() {
    let program = vector_add_program(N);

    section("8-core SPMD vector-add (512 elements): TCDM banks vs conflicts");
    let configs: Vec<MulticoreConfig> = [1usize, 2, 4, 8, 16, 32, 64]
        .iter()
        .map(|&banks| MulticoreConfig {
            cores: 8,
            tcdm_banks: banks,
            tcdm_words_per_bank: 4096 / banks,
            max_cycles: 50_000_000,
        })
        .collect();

    let t_seq = Instant::now();
    let sequential = run_sequential(&configs, &program);
    let t_seq = t_seq.elapsed();

    let t_par = Instant::now();
    let reports = sweep_configs(&configs, &program, preload).expect("programs halt");
    let t_par = t_par.elapsed();

    assert_eq!(
        reports, sequential,
        "parallel sweep must be bit-identical to the sequential sweep"
    );

    let mut rows = Vec::new();
    for (cfg, report) in configs.iter().zip(&reports) {
        rows.push(vec![
            cfg.tcdm_banks.to_string(),
            report.cycles.to_string(),
            report.tcdm_accesses.to_string(),
            report.conflict_stalls.to_string(),
            fmt(report.conflict_rate(), 3),
        ]);
        emit_json(&format!("tcdm_banking/banks_{}", cfg.tcdm_banks), report);
    }
    print_table(
        &[
            "Banks",
            "Cycles",
            "TCDM accesses",
            "Conflict stalls",
            "Stalls/access",
        ],
        &rows,
    );
    println!("\nShape check: conflicts collapse once banks >= 2x cores — the");
    println!("interleaving rule Snitch-class clusters (and the Fig. 9 CU) follow.");
    println!(
        "\nHost sweep: sequential {:.1} ms, parallel {:.1} ms on {} workers \
         ({:.2}x, identical reports).",
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3,
        exec::num_threads(),
        t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9),
    );

    section("Core-count scaling at 32 banks (execution-driven)");
    let scaling: Vec<MulticoreConfig> = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&cores| MulticoreConfig {
            cores,
            tcdm_banks: 32,
            tcdm_words_per_bank: 128,
            max_cycles: 50_000_000,
        })
        .collect();
    let reports = sweep_configs(&scaling, &program, |_| {}).expect("programs halt");
    let base = reports[0].cycles;
    let mut rows = Vec::new();
    for (cfg, report) in scaling.iter().zip(&reports) {
        rows.push(vec![
            cfg.cores.to_string(),
            report.cycles.to_string(),
            fmt(base as f64 / report.cycles as f64, 2),
        ]);
        emit_json(&format!("tcdm_banking/cores_{}", cfg.cores), report);
    }
    print_table(&["Cores", "Cycles", "Speedup"], &rows);
}
