//! E6 / Table I — FPGA implementation comparison of super-resolution
//! accelerators.
//!
//! Rows \[15\] and \[17\] are published literature values (inputs to the table,
//! as in the paper); the "New" row is computed by the `f2-approx`
//! architectural model of the Fig. 4 HTCONV datapath.

use f2_approx::fpga_model::table1_rows;
use f2_bench::{fmt, print_table, section};

fn main() {
    section("Table I — comparison to FPGA-based SotA super-resolution");
    let rows: Vec<Vec<String>> = table1_rows()
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                format!("{}x{}", r.in_resolution.0, r.in_resolution.1),
                format!("({},{})", r.bitwidth.0, r.bitwidth.1),
                r.technology.clone(),
                fmt(r.fmax.value(), 0),
                fmt(r.out_throughput.value(), 2),
                r.luts.to_string(),
                r.ffs.to_string(),
                r.dsps.to_string(),
                fmt(r.bram_kb, 1),
                r.power
                    .map(|p| fmt(p.value(), 2))
                    .unwrap_or_else(|| "NA".to_string()),
                r.energy_efficiency()
                    .map(|e| fmt(e.value(), 1))
                    .unwrap_or_else(|| "NA".to_string()),
            ]
        })
        .collect();
    print_table(
        &[
            "Method", "In res", "Bits", "Device", "Fmax MHz", "Mpix/s", "LUTs", "FFs", "DSPs",
            "BRAM KB", "Power W", "Mpix/s/W",
        ],
        &rows,
    );
    println!("\nPaper row 'New': 222 MHz, 753.04 Mpix/s, 28080 LUTs, 81791 FFs,");
    println!("1750 DSPs, 542.25 KB, 3.7 W, 203.5 Mpix/s/W — compare the computed row.");
    println!("Shape check: ~6x fewer LUTs and ~2.2x better Mpix/s/W than [15],");
    println!("throughput parity with [17].");
}
