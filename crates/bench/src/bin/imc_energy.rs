//! E4 / §IV (circuit level) — analog IMC vs digital baselines, the ADC
//! bottleneck, analog accumulation, and the DIMC efficiency band.
//!
//! Reproduces: analog crossbar MACs are orders of magnitude cheaper than
//! digital MACs, but A/D conversion dominates the analog energy budget;
//! analog accumulation across tiles cuts the ADC count; SRAM digital IMC
//! lands in the published 40-310 TOPS/W band across precisions.

use f2_bench::{fmt, print_table, section};
use f2_core::energy::{EnergyLedger, OpEnergy, OpKind, TechNode};
use f2_core::kpi::Megahertz;
use f2_core::rng::rng_for;
use f2_core::tensor::Matrix;
use f2_imc::crossbar::{Adc, Crossbar};
use f2_imc::device::DeviceModel;
use f2_imc::dimc::DimcMacro;
use f2_imc::program::ProgramVerify;
use f2_imc::tile::{ImcTileLayer, TileConfig};

fn mvm_energy_breakdown() {
    section("128x128 MVM energy: analog IMC vs digital MAC baseline (45nm)");
    let table = OpEnergy::for_node(TechNode::N45);
    let weights = Matrix::from_fn(128, 128, |r, c| {
        ((r * 31 + c * 17) % 41) as f64 / 20.0 - 1.0
    });
    let mut rng = rng_for(2, "e4");
    let xbar = Crossbar::program(
        DeviceModel::rram(),
        &weights,
        &ProgramVerify::default(),
        &mut rng,
    )
    .expect("valid weights");
    let x = vec![0.5; 128];
    let mut ledger = EnergyLedger::new();
    xbar.mvm(&x, 1.0, &Adc::new(8), &mut rng, &mut ledger)
        .expect("valid geometry");

    let analog_total = ledger.total_energy(&table);
    let adc_share = ledger.energy_of(OpKind::AdcConversion, &table);
    // Digital baseline: 128x128 8-bit MACs + SRAM weight reads.
    let mut digital = EnergyLedger::new();
    digital.record(OpKind::MacInt8, 128 * 128);
    digital.record(OpKind::SramRead32, 128 * 128 / 4);
    let digital_total = digital.total_energy(&table);

    let rows = vec![
        vec![
            "analog crossbar (8b ADC)".to_string(),
            fmt(analog_total.to_picojoules().value() / 1000.0, 2),
            fmt(adc_share.value() / analog_total.value() * 100.0, 1),
        ],
        vec![
            "digital MAC + SRAM".to_string(),
            fmt(digital_total.to_picojoules().value() / 1000.0, 2),
            "-".to_string(),
        ],
    ];
    print_table(
        &["Implementation", "Energy (nJ/MVM)", "ADC share (%)"],
        &rows,
    );
    println!(
        "Analog advantage: {:.1}x lower energy; ADC dominates the analog budget (§IV).",
        digital_total.value() / analog_total.value()
    );
}

fn adc_ablation() {
    section("Ablation: ADC precision vs energy and output error (64x16 layer)");
    let weights = Matrix::from_fn(64, 16, |r, c| ((r * 13 + c * 7) % 23) as f64 / 11.0 - 1.0);
    let table = OpEnergy::for_node(TechNode::N45);
    // Each precision point reprograms and evaluates a fresh crossbar from its
    // own seeded RNG stream, so the points are independent — run them on the
    // exec worker pool.
    let rows = f2_core::exec::par_map(&[4u32, 6, 8, 10, 12], |&bits| {
        let mut rng = rng_for(3, "e4-adc");
        let xbar = Crossbar::program(
            DeviceModel::rram(),
            &weights,
            &ProgramVerify::default(),
            &mut rng,
        )
        .expect("valid weights");
        let x: Vec<f64> = (0..64).map(|i| ((i % 9) as f64 - 4.0) / 4.0).collect();
        let ideal = xbar.mvm_ideal(&x, 1.0).expect("valid geometry");
        let mut ledger = EnergyLedger::new();
        let got = xbar
            .mvm(&x, 1.0, &Adc::new(bits), &mut rng, &mut ledger)
            .expect("valid geometry");
        let rmse: f64 = (got
            .iter()
            .zip(&ideal)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            / 16.0)
            .sqrt();
        // SAR ADC energy scales ~2x per extra bit; rebuild the total with a
        // precision-scaled conversion cost (anchor: 2 pJ at 8 bits).
        let adc_pj = 2.0 * 2f64.powi(bits as i32 - 8);
        let non_adc = ledger.total_energy(&table).to_picojoules().value()
            - ledger.count(OpKind::AdcConversion) as f64 * 2.0;
        let e = non_adc + ledger.count(OpKind::AdcConversion) as f64 * adc_pj;
        vec![bits.to_string(), fmt(e / 1000.0, 3), fmt(rmse, 4)]
    });
    print_table(&["ADC bits", "Energy (nJ/MVM)", "Output RMSE"], &rows);
}

fn analog_accumulation() {
    section("Analog accumulation: A/D conversions per 64x16 layer (16-row tiles)");
    let weights = Matrix::from_fn(64, 16, |r, c| ((r * 3 + c) % 13) as f64 / 6.0 - 1.0);
    let bias = vec![0.0; 16];
    let mut rows = Vec::new();
    for analog in [false, true] {
        let cfg = TileConfig {
            tile_rows: 16,
            tile_cols: 16,
            adc_bits: 8,
            analog_accumulation: analog,
            drift_compensation: false,
        };
        let mut rng = rng_for(4, "e4-acc");
        let layer = ImcTileLayer::map(
            &weights,
            &bias,
            DeviceModel::rram(),
            &cfg,
            &ProgramVerify::default(),
            &mut rng,
        )
        .expect("valid layer");
        let mut ledger = EnergyLedger::new();
        layer
            .forward(&vec![0.5; 64], 1.0, &cfg, &mut rng, &mut ledger)
            .expect("valid geometry");
        rows.push(vec![
            if analog {
                "analog accumulation"
            } else {
                "per-tile ADC"
            }
            .to_string(),
            ledger.count(OpKind::AdcConversion).to_string(),
        ]);
    }
    print_table(&["Scheme", "ADC conversions"], &rows);
    println!("Analog accumulation divides conversions by the row-block count ([11]).");
}

fn dimc_band() {
    section("SRAM digital IMC: precision vs TOPS/W (ISSCC'23 band: 40-310)");
    let weights: Vec<i32> = (0..128 * 128).map(|i| (i % 15) - 7).collect();
    let mut rows = Vec::new();
    for bits in [1u32, 2, 4, 8] {
        let m = DimcMacro::new(
            128,
            128,
            bits,
            bits,
            &weights,
            Megahertz::new(500.0),
            TechNode::N16,
        )
        .expect("valid macro");
        rows.push(vec![
            format!("{bits}b x {bits}b"),
            fmt(m.peak_throughput().value(), 2),
            fmt(m.power().value() * 1000.0, 1),
            fmt(m.efficiency().value(), 0),
        ]);
    }
    print_table(&["Precision", "Peak TOPS", "Power mW", "TOPS/W"], &rows);
}

fn input_mode_ablation() {
    section("Ablation: analog-input vs bit-serial input drive (64x16 layer)");
    let weights = Matrix::from_fn(64, 16, |r, c| ((r * 11 + c * 3) % 19) as f64 / 9.0 - 1.0);
    let table = OpEnergy::for_node(TechNode::N45);
    let mut rng = rng_for(7, "e4-input");
    let xbar = Crossbar::program(
        DeviceModel::rram(),
        &weights,
        &ProgramVerify::default(),
        &mut rng,
    )
    .expect("valid weights");
    let x: Vec<f64> = (0..64).map(|i| ((i % 13) as f64 - 6.0) / 6.0).collect();
    let ideal = xbar.mvm_ideal(&x, 1.0).expect("valid geometry");
    let rmse = |y: &[f64]| -> f64 {
        (y.iter()
            .zip(&ideal)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            / 16.0)
            .sqrt()
    };
    let mut rows = Vec::new();
    {
        let mut ledger = EnergyLedger::new();
        let y = xbar
            .mvm(&x, 1.0, &Adc::new(8), &mut rng, &mut ledger)
            .expect("valid geometry");
        rows.push(vec![
            "analog input (1 pass)".to_string(),
            ledger.count(OpKind::DacConversion).to_string(),
            ledger.count(OpKind::AdcConversion).to_string(),
            fmt(
                ledger.total_energy(&table).to_picojoules().value() / 1000.0,
                3,
            ),
            fmt(rmse(&y), 4),
        ]);
    }
    for bits in [2u32, 4, 8] {
        let mut ledger = EnergyLedger::new();
        let y = xbar
            .mvm_bit_serial(&x, 1.0, bits, &Adc::new(8), &mut rng, &mut ledger)
            .expect("valid geometry");
        rows.push(vec![
            format!("bit-serial ({bits} passes)"),
            "0".to_string(),
            ledger.count(OpKind::AdcConversion).to_string(),
            fmt(
                ledger.total_energy(&table).to_picojoules().value() / 1000.0,
                3,
            ),
            fmt(rmse(&y), 4),
        ]);
    }
    print_table(
        &[
            "Input drive",
            "DACs",
            "ADC convs",
            "Energy nJ",
            "Output RMSE",
        ],
        &rows,
    );
    println!("Analog input maximises parallelism (one pass); bit-serial removes");
    println!("DACs at the cost of one ADC pass per input bit (§IV trade-off).");
}

fn main() {
    mvm_energy_breakdown();
    adc_ablation();
    analog_accumulation();
    input_mode_ablation();
    dimc_band();
}
