//! E5 / Fig. 3 + §V — HTCONV MAC saving vs PSNR.
//!
//! Reproduces: (a) the foveated HTCONV layer saves the bulk of the exact
//! TCONV's MACs with a PSNR reduction below 10%; (b) the full approximate
//! model (FSRCNN(25,5,1)+HTCONV) saves >80% of the MACs of the
//! FSRCNN(56,12,4) baseline; (c) the fovea-fraction ablation.

use f2_approx::fsrcnn::{DeconvMode, FsrcnnModel};
use f2_approx::htconv::{htconv_upscale2x, FoveaSpec};
use f2_approx::image::Image;
use f2_approx::psnr::{psnr, psnr_cropped};
use f2_approx::tconv::{bicubic_kernel, tconv_upscale2x};
use f2_bench::{fmt, print_table, section};
use f2_core::workload::dnn::fsrcnn;

fn layer_quality() {
    section("HTCONV layer: fovea fraction vs MAC saving and PSNR (96x96 scenes)");
    let scenes: Vec<Image> = (0..4).map(|s| Image::synthetic(96, 96, 100 + s)).collect();
    let mut rows = Vec::new();
    for frac in [1.0, 0.5, 0.3, 0.15, 0.05, 0.0] {
        let mut saving = 0.0;
        let mut psnr_exact = 0.0;
        let mut psnr_hybrid = 0.0;
        for hr in &scenes {
            let lr = hr.downsample2x().expect("even dims");
            let fovea = FoveaSpec::centered_fraction(48, 48, frac);
            let (exact, _) = tconv_upscale2x(&lr, &bicubic_kernel());
            let (hybrid, stats) = htconv_upscale2x(&lr, &bicubic_kernel(), &fovea);
            saving += stats.mac_saving_vs_exact();
            psnr_exact += psnr_cropped(hr, &exact, 6).expect("same dims");
            psnr_hybrid += psnr_cropped(hr, &hybrid, 6).expect("same dims");
        }
        let n = scenes.len() as f64;
        let (saving, pe, ph) = (saving / n, psnr_exact / n, psnr_hybrid / n);
        rows.push(vec![
            fmt(frac, 2),
            fmt(saving * 100.0, 1),
            fmt(pe, 2),
            fmt(ph, 2),
            fmt((pe - ph) / pe * 100.0, 2),
        ]);
    }
    print_table(
        &[
            "Fovea frac",
            "MAC saving %",
            "PSNR exact dB",
            "PSNR HTCONV dB",
            "PSNR loss %",
        ],
        &rows,
    );
    println!("\nShape check: sub-10% PSNR loss at 70%+ layer-MAC saving (§V).");
}

fn model_level() {
    section("Model-level MACs (1080p -> 4K, per frame): approximate vs baseline");
    let h = 1080 / 2;
    let w = 1920 / 2;
    let baseline = fsrcnn(56, 12, 4, h, w).expect("valid model");
    let small = fsrcnn(25, 5, 1, h, w).expect("valid model");
    // HTCONV variant: the deconv layer's MACs shrink by the measured saving.
    let fovea_saving = 0.72; // 15% fovea, from the table above
    let deconv_macs: u64 = small
        .layers()
        .iter()
        .filter(|l| l.name() == "deconv")
        .map(|l| l.macs())
        .sum();
    let approx_macs = small.total_macs() - (deconv_macs as f64 * fovea_saving) as u64;
    let rows = vec![
        vec![
            baseline.name().to_string(),
            baseline.total_macs().to_string(),
            fmt(0.0, 1),
        ],
        vec![
            small.name().to_string(),
            small.total_macs().to_string(),
            fmt(
                (1.0 - small.total_macs() as f64 / baseline.total_macs() as f64) * 100.0,
                1,
            ),
        ],
        vec![
            format!("{} + HTCONV", small.name()),
            approx_macs.to_string(),
            fmt(
                (1.0 - approx_macs as f64 / baseline.total_macs() as f64) * 100.0,
                1,
            ),
        ],
    ];
    print_table(&["Model", "MACs/frame", "Saving vs baseline %"], &rows);
    println!("\nShape check: the approximate model saves >80% of the baseline's");
    println!("MACs — the §V headline claim.");
}

fn end_to_end_inference() {
    section("End-to-end FSRCNN(8,3,1) inference, exact vs HTCONV final layer");
    let model = FsrcnnModel::generate(8, 3, 1, 42);
    let lr = Image::synthetic(48, 48, 7);
    let exact = model.run(&lr, DeconvMode::Exact, None);
    let fovea = FoveaSpec::centered_fraction(48, 48, 0.15);
    let hybrid = model.run(&lr, DeconvMode::Htconv(fovea), None);
    let rows = vec![
        vec![
            "exact TCONV".to_string(),
            exact.total_macs().to_string(),
            "-".to_string(),
        ],
        vec![
            "HTCONV (15% fovea)".to_string(),
            hybrid.total_macs().to_string(),
            fmt(psnr(&exact.image, &hybrid.image).expect("same dims"), 2),
        ],
    ];
    print_table(&["Final layer", "Total MACs", "PSNR vs exact (dB)"], &rows);
}

fn main() {
    layer_quality();
    model_level();
    end_to_end_inference();
}
