//! Thin wrapper kept for compatibility: forwards to `f2 run htconv_quality`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let registry = flagship2::experiments::registry();
    ExitCode::from(f2_bench::runner::forward(&registry, "htconv_quality"))
}
