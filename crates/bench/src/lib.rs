//! # f2-bench
//!
//! Benchmark harness regenerating every table and figure of the ICSC
//! Flagship 2 overview paper. Each `src/bin/` binary reproduces one
//! experiment (E1–E13 in `DESIGN.md`); Criterion micro-benches in
//! `benches/` cover the hot kernels underneath them.
//!
//! Run e.g. `cargo run -p f2-bench --bin fig1_landscape --release`.
//!
//! Setting `F2_BENCH_JSON=1` makes the binaries additionally emit
//! machine-readable JSON lines (one [`emit_json`] call per table) for
//! downstream tooling.

use f2_core::json::{Json, ToJson};
use std::fmt::Display;

/// Environment variable switching on JSON line output in the bench bins.
pub const JSON_ENV: &str = "F2_BENCH_JSON";

/// Emits `value` as a labelled single-line JSON document on stdout when
/// `F2_BENCH_JSON` is set to a non-empty value; a no-op otherwise.
pub fn emit_json(label: &str, value: &impl ToJson) {
    if std::env::var_os(JSON_ENV).is_some_and(|v| !v.is_empty()) {
        let doc = Json::Obj(vec![
            ("label".to_string(), label.to_json()),
            ("data".to_string(), value.to_json()),
        ]);
        println!("{doc}");
    }
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints an aligned ASCII table.
///
/// # Panics
///
/// Panics if a row's arity differs from the header's.
pub fn print_table<S: Display>(headers: &[&str], rows: &[Vec<S>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            assert_eq!(r.len(), headers.len(), "row arity mismatch");
            r.iter().map(|c| c.to_string()).collect()
        })
        .collect();
    for row in &cells {
        for (w, c) in widths.iter_mut().zip(row) {
            *w = (*w).max(c.len());
        }
    }
    let line = |cols: &[String]| {
        let mut out = String::new();
        for (w, c) in widths.iter().zip(cols) {
            out.push_str(&format!("{c:<w$}  "));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in cells {
        line(&row);
    }
}

/// Formats a float with the given precision (table-cell helper).
pub fn fmt(value: f64, precision: usize) -> String {
    format!("{value:.precision$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(4.23456, 2), "4.23");
        assert_eq!(fmt(10.0, 0), "10");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(&["a", "bb"], &[vec!["1".to_string(), "2".to_string()]]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_ragged_rows() {
        print_table(&["a", "b"], &[vec!["1".to_string()]]);
    }
}
