//! # f2-bench
//!
//! Benchmark harness regenerating every table and figure of the ICSC
//! Flagship 2 overview paper, built on the unified experiment registry in
//! [`flagship2::experiments`].
//!
//! The single entry point is the `f2` runner:
//!
//! ```text
//! cargo run -p f2-bench --release --bin f2 -- list
//! cargo run -p f2-bench --release --bin f2 -- run all --quick
//! cargo run -p f2-bench --release --bin f2 -- run imc_energy --json
//! cargo run -p f2-bench --release --bin f2 -- campaign sweep.json
//! ```
//!
//! The historical per-experiment binaries (`fig1_landscape`,
//! `sparta_speedup`, …) are gone; `f2 run <name>` is the only spelling.
//!
//! Table/number formatting lives in [`f2_core::experiment::render`]
//! (re-exported here); golden-KPI snapshot plumbing in
//! [`f2_core::experiment::golden`]; scenario sweeps in [`campaign`]
//! (with `--progress` heartbeats); service load generation with trace-ID
//! echo checking in [`loadgen`]; the `f2 check-log` access-log validator
//! next to the other `check-*` gates in [`runner`].

pub use f2_core::experiment::render::{fmt, print_table, section};
use f2_core::json::{Json, ToJson};

pub mod campaign;
pub mod loadgen;
pub mod runner;
pub mod suite;

/// Deprecated environment alias for `f2 run --json`: setting it to a truthy
/// value (anything but empty, `0` or `false`) switches on JSON line output.
pub const JSON_ENV: &str = "F2_BENCH_JSON";

/// Returns whether the deprecated [`JSON_ENV`] alias asks for JSON output.
///
/// Unset, empty, `"0"` and `"false"` (any case) mean *off* — historically
/// any non-empty value (including `0`) enabled it, which surprised every
/// scripted caller.
pub fn json_env_enabled() -> bool {
    std::env::var(JSON_ENV)
        .map(|v| f2_core::experiment::golden::env_flag_enabled(&v))
        .unwrap_or(false)
}

/// Emits `value` as a labelled single-line JSON document on stdout when the
/// deprecated [`JSON_ENV`] alias is enabled; a no-op otherwise.
///
/// Superseded by [`f2_core::experiment::ExperimentCtx::record`], which
/// collects structured records independent of any environment variable and
/// lets the runner decide how to emit them.
#[deprecated(note = "use ExperimentCtx::record and `f2 run --json` instead")]
pub fn emit_json(label: &str, value: &impl ToJson) {
    if json_env_enabled() {
        let doc = Json::Obj(vec![
            ("label".to_string(), label.to_json()),
            ("data".to_string(), value.to_json()),
        ]);
        println!("{doc}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_reexport_works() {
        assert_eq!(fmt(4.23456, 2), "4.23");
        assert_eq!(fmt(10.0, 0), "10");
    }

    #[test]
    fn table_reexport_prints_without_panicking() {
        print_table(&["a", "bb"], &[vec!["1".to_string(), "2".to_string()]]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_reexport_rejects_ragged_rows() {
        print_table(&["a", "b"], &[vec!["1".to_string()]]);
    }
}
