//! Implementation of the `f2` command-line runner.
//!
//! One binary drives every experiment in the registry:
//!
//! ```text
//! f2 list [--json]                 # inventory: names, tags, summaries
//! f2 run <name|tag|all> [flags]    # run a selection
//! f2 check [--golden <dir>]        # compare `--json` lines on stdin to snapshots
//! ```
//!
//! `run` flags: `--quick` (reduced problem sizes, the fidelity the golden
//! snapshots pin), `--json` (machine-readable lines instead of tables),
//! `--threads N`, `--seed N`. The deprecated `F2_BENCH_JSON` environment
//! alias still switches `--json` on.
//!
//! `check` closes the CI loop as a plain UNIX pipe:
//!
//! ```text
//! f2 run all --quick --json | f2 check
//! ```

use std::io::BufRead;
use std::path::PathBuf;

use f2_core::experiment::{golden, ExperimentCtx, ExperimentReport, Registry};
use f2_core::json::{Json, ToJson};

/// Options of the `run` subcommand.
pub struct RunOptions {
    /// Experiment name, tag, or `all`.
    pub selector: String,
    /// Reduced problem sizes (the fidelity golden snapshots pin).
    pub quick: bool,
    /// Emit machine-readable JSON lines instead of human-readable tables.
    pub json: bool,
    /// Worker threads for `ExperimentCtx::exec` sweeps.
    pub threads: usize,
    /// Root seed for all experiment randomness.
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            selector: "all".to_string(),
            quick: false,
            json: crate::json_env_enabled(),
            threads: f2_core::exec::num_threads(),
            seed: f2_core::rng::DEFAULT_SEED,
        }
    }
}

/// A parsed `f2` invocation.
pub enum Command {
    /// `f2 list [--json]`
    List {
        /// Emit the inventory as one JSON document.
        json: bool,
    },
    /// `f2 run <selector> [flags]`
    Run(RunOptions),
    /// `f2 check [--golden <dir>]`
    Check {
        /// Snapshot directory (defaults to the repo's `tests/golden`).
        golden_dir: PathBuf,
    },
}

/// The repo-local default snapshot directory, resolved at compile time.
fn default_golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
Usage: f2 <command>

Commands:
  list [--json]                      list every registered experiment
  run <name|tag|all> [flags]         run a selection of experiments
      --quick                        reduced problem sizes (snapshot fidelity)
      --json                         machine-readable JSON lines
      --threads <N>                  worker threads for sweeps
      --seed <N>                     root seed (default 0xF1A65817)
  check [--golden <dir>]             verify `run --json` lines piped on stdin
                                     against the golden KPI snapshots
";

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable description of the first problem.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or("missing command")?;
    match cmd.as_str() {
        "list" => {
            let mut json = false;
            for a in it {
                match a.as_str() {
                    "--json" => json = true,
                    other => return Err(format!("unknown `list` flag {other}")),
                }
            }
            Ok(Command::List { json })
        }
        "run" => {
            let mut opts = RunOptions::default();
            let mut selector = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--quick" => opts.quick = true,
                    "--json" => opts.json = true,
                    "--threads" => {
                        let v = it.next().ok_or("--threads needs a value")?;
                        opts.threads = v
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("invalid thread count {v}"))?;
                    }
                    "--seed" => {
                        let v = it.next().ok_or("--seed needs a value")?;
                        opts.seed = v.parse::<u64>().map_err(|_| format!("invalid seed {v}"))?;
                    }
                    flag if flag.starts_with('-') => {
                        return Err(format!("unknown `run` flag {flag}"));
                    }
                    name => {
                        if selector.replace(name.to_string()).is_some() {
                            return Err("multiple selectors; pass one name, tag or `all`".into());
                        }
                    }
                }
            }
            opts.selector = selector.ok_or("missing selector: a name, tag or `all`")?;
            Ok(Command::Run(opts))
        }
        "check" => {
            let mut golden_dir = default_golden_dir();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--golden" => {
                        golden_dir = PathBuf::from(it.next().ok_or("--golden needs a value")?);
                    }
                    other => return Err(format!("unknown `check` flag {other}")),
                }
            }
            Ok(Command::Check { golden_dir })
        }
        "--help" | "-h" | "help" => Err(USAGE.to_string()),
        other => Err(format!("unknown command {other}\n\n{USAGE}")),
    }
}

/// Prints the experiment inventory.
pub fn list(registry: &Registry, json: bool) {
    if json {
        let entries: Vec<Json> = registry
            .entries()
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("name".to_string(), e.name().to_json()),
                    ("summary".to_string(), e.summary().to_json()),
                    (
                        "tags".to_string(),
                        Json::Arr(e.tags().iter().map(|t| t.to_json()).collect()),
                    ),
                ])
            })
            .collect();
        println!("{}", Json::Arr(entries));
        return;
    }
    let rows: Vec<Vec<String>> = registry
        .entries()
        .iter()
        .map(|e| {
            vec![
                e.name().to_string(),
                e.tags().join(","),
                e.summary().to_string(),
            ]
        })
        .collect();
    crate::print_table(&["Experiment", "Tags", "Summary"], &rows);
    println!("\nRun one with `f2 run <name>`, a group with `f2 run <tag>`, or everything");
    println!("with `f2 run all`. Tags: {}", registry.tags().join(", "));
}

/// Runs the selected experiments; returns the process exit code.
///
/// In `--json` mode each experiment contributes its structured records
/// (`{"label": ..., "data": ...}` lines, the old `F2_BENCH_JSON` format)
/// followed by one report line (`{"experiment": ..., "kpis": [...]}`).
pub fn run(registry: &Registry, opts: &RunOptions) -> u8 {
    let selected = match registry.select(&opts.selector) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("f2 run: {e}");
            eprintln!("known selectors: all, an experiment name, or one of the tags");
            eprintln!("from `f2 list`");
            return 2;
        }
    };
    let mut failures = 0;
    for exp in selected {
        let mut ctx = if opts.json {
            ExperimentCtx::quiet(opts.seed, opts.quick, opts.threads)
        } else {
            println!("\n##### {} — {}", exp.name(), exp.summary());
            ExperimentCtx::new(opts.seed, opts.quick, opts.threads)
        };
        match exp.run(&mut ctx) {
            Ok(report) => {
                if opts.json {
                    for (label, data) in ctx.records() {
                        let doc = Json::Obj(vec![
                            ("label".to_string(), label.to_json()),
                            ("data".to_string(), data.clone()),
                        ]);
                        println!("{doc}");
                    }
                    println!("{}", report.to_json());
                }
            }
            Err(e) => {
                eprintln!("f2 run: experiment {} failed: {e}", exp.name());
                failures += 1;
            }
        }
    }
    u8::from(failures > 0)
}

/// Verifies `run --json` report lines against the golden snapshots.
///
/// Reads `input` line by line, ignores anything that is not a JSON
/// experiment report (table text, notes, record lines), and compares each
/// report against `golden_dir/<experiment>.json` with the per-KPI relative
/// tolerances stored in the snapshot. Returns the process exit code: `0`
/// when at least one report was seen and every one matched.
pub fn check(input: &mut dyn BufRead, golden_dir: &std::path::Path) -> u8 {
    let mut reports = 0usize;
    let mut failures = Vec::new();
    for line in input.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("f2 check: stdin: {e}");
                return 2;
            }
        };
        let Ok(doc) = Json::parse(&line) else {
            continue;
        };
        if doc.get("experiment").is_none() || doc.get("kpis").is_none() {
            continue;
        }
        let actual = match ExperimentReport::from_json(&doc) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("malformed report line: {e}"));
                continue;
            }
        };
        reports += 1;
        let path = golden::snapshot_path(golden_dir, &actual.experiment);
        match golden::load(&path) {
            Ok(expected) => {
                for diff in golden::compare(&expected, &actual) {
                    failures.push(format!("{}: {diff}", actual.experiment));
                }
            }
            Err(e) => failures.push(format!(
                "{}: no golden snapshot ({e}); run the golden test with F2_BLESS=1",
                actual.experiment
            )),
        }
    }
    if reports == 0 {
        eprintln!("f2 check: no report lines on stdin; pipe `f2 run <sel> --json` in");
        return 2;
    }
    for f in &failures {
        eprintln!("f2 check: {f}");
    }
    if failures.is_empty() {
        eprintln!("f2 check: {reports} report(s) matched the golden snapshots");
        0
    } else {
        eprintln!(
            "f2 check: {} failure(s) across {reports} report(s)",
            failures.len()
        );
        1
    }
}

/// Full CLI entry point used by `src/bin/f2.rs`.
pub fn main_with(registry: &Registry, args: &[String]) -> u8 {
    match parse_args(args) {
        Ok(Command::List { json }) => {
            list(registry, json);
            0
        }
        Ok(Command::Run(opts)) => run(registry, &opts),
        Ok(Command::Check { golden_dir }) => {
            let stdin = std::io::stdin();
            let mut lock = stdin.lock();
            check(&mut lock, &golden_dir)
        }
        Err(msg) => {
            eprintln!("{msg}");
            2
        }
    }
}

/// Entry point for the legacy one-experiment wrapper binaries: runs `name`
/// at full fidelity with default seed/threads, honouring the deprecated
/// `F2_BENCH_JSON` alias.
pub fn forward(registry: &Registry, name: &str) -> u8 {
    eprintln!("note: this binary is a thin wrapper; prefer `f2 run {name}`");
    run(
        registry,
        &RunOptions {
            selector: name.to_string(),
            ..RunOptions::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run_flags() {
        let Command::Run(opts) = parse_args(&args(&[
            "run",
            "imc",
            "--quick",
            "--json",
            "--threads",
            "3",
            "--seed",
            "7",
        ]))
        .expect("parses") else {
            panic!("expected run");
        };
        assert_eq!(opts.selector, "imc");
        assert!(opts.quick && opts.json);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.seed, 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&["run"])).is_err());
        assert!(parse_args(&args(&["run", "a", "b"])).is_err());
        assert!(parse_args(&args(&["run", "a", "--threads", "0"])).is_err());
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&[])).is_err());
    }

    #[test]
    fn parses_list_and_check() {
        assert!(matches!(
            parse_args(&args(&["list", "--json"])),
            Ok(Command::List { json: true })
        ));
        let Command::Check { golden_dir } =
            parse_args(&args(&["check", "--golden", "/tmp/g"])).expect("parses")
        else {
            panic!("expected check");
        };
        assert_eq!(golden_dir, PathBuf::from("/tmp/g"));
    }

    #[test]
    fn check_ignores_non_report_lines_and_flags_missing_snapshots() {
        let dir = std::env::temp_dir().join("f2-check-test-missing");
        let input = b"plain text\n{\"label\":\"x\",\"data\":1}\n\
            {\"experiment\":\"ghost\",\"kpis\":[]}\n";
        let code = check(&mut &input[..], &dir);
        assert_eq!(code, 1, "missing snapshot must fail the check");
    }

    #[test]
    fn check_requires_at_least_one_report() {
        let dir = std::env::temp_dir().join("f2-check-test-empty");
        let code = check(&mut &b"no json here\n"[..], &dir);
        assert_eq!(code, 2);
    }

    #[test]
    fn check_passes_against_a_matching_snapshot() {
        use f2_core::experiment::{Kpi, DEFAULT_KPI_TOL};
        let dir = std::env::temp_dir().join("f2-check-test-match");
        let report = ExperimentReport {
            experiment: "demo".to_string(),
            kpis: vec![Kpi {
                name: "x".to_string(),
                value: 2.0,
                tol: DEFAULT_KPI_TOL,
            }],
        };
        golden::save(&golden::snapshot_path(&dir, "demo"), &report).expect("writable tmp");
        let line = format!("{}\n", report.to_json());
        let code = check(&mut line.as_bytes(), &dir);
        assert_eq!(code, 0);
    }
}
