//! Implementation of the `f2` command-line runner.
//!
//! One binary drives every experiment in the registry:
//!
//! ```text
//! f2 list [--json]                 # inventory: names, tags, summaries, params
//! f2 run <name|tag|all> [flags]    # run a selection
//! f2 check [--golden <dir>]        # compare `--json` lines on stdin to snapshots
//! f2 campaign <manifest.json>      # expand a manifest and sweep scenarios
//! ```
//!
//! `run` builds a [`Scenario`] — the first-class run configuration of
//! seed, fidelity, threads and per-experiment params — from its flags:
//! `--quick` (reduced problem sizes, the fidelity the golden snapshots
//! pin), `--threads N`, `--seed N`, `--param key=value` (a tunable
//! dimension the selected experiments declare; repeatable) and
//! `--scenario <file.json>` (replace the whole scenario with a JSON
//! document; later flags still override its members). Output flags:
//! `--json` (machine-readable lines instead of tables), `--trace
//! <out.json>` (Chrome/Perfetto trace of the run) and `--metrics` (trace
//! summary appended to the output). The deprecated `F2_BENCH_JSON`
//! environment alias still switches `--json` on, and `F2_TRACE` switches
//! `--trace` on (`F2_TRACE=1` writes `f2-trace.json`, any other truthy
//! value is used as the output path).
//!
//! `check` closes the CI loop as a plain UNIX pipe, and `check-trace`
//! validates a trace file the same way CI does:
//!
//! ```text
//! f2 run all --quick --json | f2 check
//! f2 run all --quick --trace /tmp/trace.json
//! f2 check-trace /tmp/trace.json --require-experiments
//! ```

use std::io::BufRead;
use std::path::PathBuf;

use f2_core::experiment::{golden, ExperimentCtx, ExperimentReport, Registry};
use f2_core::json::{Json, ToJson};
use f2_core::scenario::{Fidelity, ParamValue, Scenario};

/// Environment variable enabling `--trace` without a flag: truthy values
/// switch tracing on; anything that is not `1`/`true` is the output path.
pub const TRACE_ENV: &str = "F2_TRACE";

/// Resolves [`TRACE_ENV`] to a trace output path, honouring the workspace
/// truthiness rule (empty, `0` and `false` mean off).
fn trace_env_path() -> Option<PathBuf> {
    let raw = std::env::var(TRACE_ENV).ok()?;
    if !golden::env_flag_enabled(&raw) {
        return None;
    }
    let trimmed = raw.trim();
    if trimmed.eq_ignore_ascii_case("1") || trimmed.eq_ignore_ascii_case("true") {
        Some(PathBuf::from("f2-trace.json"))
    } else {
        Some(PathBuf::from(trimmed))
    }
}

/// Options of the `run` subcommand.
pub struct RunOptions {
    /// Experiment name, tag, or `all`.
    pub selector: String,
    /// Emit machine-readable JSON lines instead of human-readable tables.
    pub json: bool,
    /// The complete run configuration: seed, fidelity, threads, params.
    pub scenario: Scenario,
    /// Write a Chrome trace-event JSON of the run to this path.
    pub trace: Option<PathBuf>,
    /// Append the human-readable trace summary to the run output.
    pub metrics: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            selector: "all".to_string(),
            json: crate::json_env_enabled(),
            scenario: Scenario::new(
                f2_core::rng::DEFAULT_SEED,
                Fidelity::Full,
                f2_core::exec::num_threads(),
            ),
            trace: trace_env_path(),
            metrics: false,
        }
    }
}

/// Options of the `bench` subcommand.
pub struct BenchOptions {
    /// Reduced problem sizes (the configuration committed baselines and the
    /// CI smoke use).
    pub quick: bool,
    /// Measured samples per benchmark.
    pub samples: usize,
    /// Substring filter on `group/function` labels.
    pub filter: Option<String>,
    /// Worker threads for the pool-based kernels.
    pub threads: usize,
    /// Write the `f2-bench-v1` JSON report to this path.
    pub out: Option<PathBuf>,
    /// Write a Chrome trace-event JSON of the run (one `bench:<label>`
    /// span per kernel) to this path.
    pub trace: Option<PathBuf>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            quick: false,
            samples: f2_core::benchkit::samples_from_env(),
            filter: None,
            threads: f2_core::exec::num_threads(),
            out: None,
            trace: trace_env_path(),
        }
    }
}

/// A parsed `f2` invocation.
pub enum Command {
    /// `f2 list [--json]`
    List {
        /// Emit the inventory as one JSON document.
        json: bool,
    },
    /// `f2 run <selector> [flags]`
    Run(RunOptions),
    /// `f2 check [--golden <dir>]`
    Check {
        /// Snapshot directory (defaults to the repo's `tests/golden`).
        golden_dir: PathBuf,
    },
    /// `f2 check-trace <file> [--require-experiments] [--require-workers]
    /// [--require-scf-bb]`
    CheckTrace {
        /// Trace file written by `run --trace`.
        path: PathBuf,
        /// Demand one `experiment:<name>` span per registered experiment.
        require_experiments: bool,
        /// Demand per-worker executor spans (`exec:worker`).
        require_workers: bool,
        /// Demand the ISS block-cache counters (`scf.bb.*`).
        require_scf_bb: bool,
    },
    /// `f2 bench [flags]`
    Bench(BenchOptions),
    /// `f2 check-bench <baseline.json> [--current <file>] [--max-regress <pct>]
    /// [--min-speedup <label=factor>]...`
    CheckBench {
        /// Committed baseline report (`f2 bench --out`).
        baseline: PathBuf,
        /// Current report to compare; omitted = run the suite now with the
        /// baseline's own quick/samples/threads configuration.
        current: Option<PathBuf>,
        /// Allowed p10 slowdown per kernel, in percent.
        max_regress: f64,
        /// Labels that must have *improved*: current p10 must be at most
        /// baseline p10 divided by the factor.
        min_speedups: Vec<(String, f64)>,
    },
    /// `f2 serve [--addr HOST:PORT] [--threads N] [--shards N]
    /// [--port-file PATH]`
    Serve(f2_core::serve::ServeConfig),
    /// `f2 loadgen [flags]`
    Loadgen(crate::loadgen::LoadgenOptions),
    /// `f2 campaign <manifest.json> [flags]`
    Campaign(crate::campaign::CampaignOptions),
    /// `f2 check-log <file.jsonl>`
    CheckLog {
        /// Access log written by `serve --log`, or `/debug/recent`
        /// records re-emitted one-per-line (`loadgen --recent`).
        path: PathBuf,
    },
}

/// The repo-local default snapshot directory, resolved at compile time.
fn default_golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
Usage: f2 <command>

Commands:
  list [--json]                      list every registered experiment
  run <name|tag|all> [flags]         run a selection of experiments
      --quick                        reduced problem sizes (snapshot fidelity)
      --json                         machine-readable JSON lines
      --threads <N>                  worker threads for sweeps
      --seed <N>                     root seed (default 0xF1A65817)
      --param <key=value>            set a tunable dimension the selected
                                     experiments declare (repeatable; see
                                     `f2 list --json`)
      --scenario <file.json>         load the whole scenario from a JSON
                                     document (later flags still override)
      --trace <out.json>             write a Chrome/Perfetto trace of the run
                                     (or set F2_TRACE=<path>)
      --metrics                      append the trace summary (hot spans,
                                     counters, quantiles) to the output
  check [--golden <dir>]             verify `run --json` lines piped on stdin
                                     against the golden KPI snapshots
  check-trace <file> [flags]         validate a trace written by `run --trace`
      --require-experiments          demand one span per registered experiment
      --require-workers              demand per-worker executor spans
      --require-scf-bb               demand the ISS block-cache counters
                                     (scf.bb.hits/misses/invalidations and
                                     the scf.bb.block_len histogram)
  bench [flags]                      run the curated hot-kernel suite
      --quick                        smaller sizes (baseline/CI configuration)
      --samples <N>                  measured samples per benchmark
                                     (or set F2_BENCH_SAMPLES)
      --filter <substr>              only labels containing the substring
      --threads <N>                  worker threads for pool-based kernels
      --out <report.json>            write the f2-bench-v1 JSON report
      --trace <out.json>             write a Chrome/Perfetto trace (one
                                     bench:<label> span per kernel)
  check-bench <baseline.json> [flags]  compare against a committed baseline
      --current <report.json>        compare this report instead of running
                                     the suite now
      --max-regress <pct>            allowed p10 slowdown per kernel
                                     (default 50)
      --min-speedup <label=factor>   demand the label improved: current p10
                                     at most baseline/factor (repeatable)
  serve [flags]                      run the batched experiment service
      --addr <host:port>             bind address (default 127.0.0.1:0,
                                     port 0 = ephemeral)
      --threads <N>                  worker threads of the batch pool
      --shards <N>                   result-cache shard count (default 16)
      --port-file <path>             write the bound host:port here
      --log <file.jsonl>             append one f2-serve-log-v1 record per
                                     /run request (access/event log)
  campaign <manifest.json> [flags]   expand a scenario manifest and sweep it
      --out <report.json>            merged f2-campaign-v1 output path
                                     (default <manifest>.out.json)
      --checkpoint <file.jsonl>      per-scenario checkpoint journal
                                     (default <manifest>.checkpoint.jsonl)
      --resume                       reuse finished scenarios from the
                                     checkpoint instead of recomputing
      --threads <N>                  pool workers sweeping the campaign
      --golden <dist.json>           check the merged KPI distributions
                                     against this golden (F2_BLESS=1 writes)
      --progress <file.jsonl>        append f2-campaign-progress-v1
                                     heartbeats (done/total, throughput, ETA)
  loadgen [flags]                    drive a running server and report
                                     throughput/latency
      --addr <host:port>             server address (required in practice)
      --rps <N>                      target request rate (default 50)
      --duration <S>                 timed window in seconds (default 2)
      --connections <N>              concurrent connections (default 4)
      --mix <health|cached|sweep>    request profile (default sweep)
      --warmup <N>                   untimed cache-priming rounds
      --wait <S>                     wait for /healthz before the run
      --out <report.json>            write the f2-loadgen-v1 JSON report
      --expect-all-hits              fail on any cache miss
      --shutdown                     POST /shutdown instead of load
      --recent <file.jsonl>          after the run, scrape /debug/recent and
                                     write its records one per line
  check-log <file.jsonl>             validate an access log written by
                                     `serve --log` (one f2-serve-log-v1
                                     record per line)
";

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable description of the first problem.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or("missing command")?;
    match cmd.as_str() {
        "list" => {
            let mut json = false;
            for a in it {
                match a.as_str() {
                    "--json" => json = true,
                    other => return Err(format!("unknown `list` flag {other}")),
                }
            }
            Ok(Command::List { json })
        }
        "run" => {
            let mut opts = RunOptions::default();
            let mut selector = None;
            // Flags apply in order, so `--scenario base.json --seed 9`
            // loads the file and then overrides its seed.
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--quick" => opts.scenario.fidelity = Fidelity::Quick,
                    "--json" => opts.json = true,
                    "--threads" => {
                        let v = it.next().ok_or("--threads needs a value")?;
                        opts.scenario.threads = v
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("invalid thread count {v}"))?;
                    }
                    "--seed" => {
                        let v = it.next().ok_or("--seed needs a value")?;
                        opts.scenario.seed =
                            v.parse::<u64>().map_err(|_| format!("invalid seed {v}"))?;
                    }
                    "--param" => {
                        let v = it.next().ok_or("--param needs key=value")?;
                        let (key, raw) = v
                            .split_once('=')
                            .filter(|(k, _)| !k.is_empty())
                            .ok_or_else(|| format!("invalid --param {v}; expected key=value"))?;
                        opts.scenario.set_param(key, ParamValue::parse(raw));
                    }
                    "--scenario" => {
                        let path = it.next().ok_or("--scenario needs a JSON file path")?;
                        let text = std::fs::read_to_string(path)
                            .map_err(|e| format!("cannot read scenario {path}: {e}"))?;
                        let doc = Json::parse(&text)
                            .map_err(|e| format!("scenario {path}: malformed JSON: {e}"))?;
                        opts.scenario = Scenario::from_json(&doc)
                            .map_err(|e| format!("scenario {path}: {e}"))?;
                    }
                    "--trace" => {
                        opts.trace = Some(PathBuf::from(
                            it.next().ok_or("--trace needs an output path")?,
                        ));
                    }
                    "--metrics" => opts.metrics = true,
                    flag if flag.starts_with('-') => {
                        return Err(format!("unknown `run` flag {flag}"));
                    }
                    name => {
                        if selector.replace(name.to_string()).is_some() {
                            return Err("multiple selectors; pass one name, tag or `all`".into());
                        }
                    }
                }
            }
            opts.selector = selector.ok_or("missing selector: a name, tag or `all`")?;
            Ok(Command::Run(opts))
        }
        "check" => {
            let mut golden_dir = default_golden_dir();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--golden" => {
                        golden_dir = PathBuf::from(it.next().ok_or("--golden needs a value")?);
                    }
                    other => return Err(format!("unknown `check` flag {other}")),
                }
            }
            Ok(Command::Check { golden_dir })
        }
        "check-trace" => {
            let mut path = None;
            let mut require_experiments = false;
            let mut require_workers = false;
            let mut require_scf_bb = false;
            for a in it {
                match a.as_str() {
                    "--require-experiments" => require_experiments = true,
                    "--require-workers" => require_workers = true,
                    "--require-scf-bb" => require_scf_bb = true,
                    flag if flag.starts_with('-') => {
                        return Err(format!("unknown `check-trace` flag {flag}"));
                    }
                    file => {
                        if path.replace(PathBuf::from(file)).is_some() {
                            return Err("multiple trace files; pass exactly one".into());
                        }
                    }
                }
            }
            Ok(Command::CheckTrace {
                path: path.ok_or("missing trace file: pass the `run --trace` output")?,
                require_experiments,
                require_workers,
                require_scf_bb,
            })
        }
        "bench" => {
            let mut opts = BenchOptions::default();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--quick" => opts.quick = true,
                    "--samples" => {
                        let v = it.next().ok_or("--samples needs a value")?;
                        opts.samples = v
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("invalid sample count {v}"))?;
                    }
                    "--filter" => {
                        opts.filter = Some(it.next().ok_or("--filter needs a value")?.to_string());
                    }
                    "--threads" => {
                        let v = it.next().ok_or("--threads needs a value")?;
                        opts.threads = v
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("invalid thread count {v}"))?;
                    }
                    "--out" => {
                        opts.out = Some(PathBuf::from(
                            it.next().ok_or("--out needs an output path")?,
                        ));
                    }
                    "--trace" => {
                        opts.trace = Some(PathBuf::from(
                            it.next().ok_or("--trace needs an output path")?,
                        ));
                    }
                    other => return Err(format!("unknown `bench` flag {other}")),
                }
            }
            Ok(Command::Bench(opts))
        }
        "check-bench" => {
            let mut baseline = None;
            let mut current = None;
            let mut max_regress = 50.0f64;
            let mut min_speedups = Vec::new();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--current" => {
                        current = Some(PathBuf::from(
                            it.next().ok_or("--current needs a report path")?,
                        ));
                    }
                    "--max-regress" => {
                        let v = it.next().ok_or("--max-regress needs a percentage")?;
                        max_regress = v
                            .parse::<f64>()
                            .ok()
                            .filter(|p| p.is_finite() && *p >= 0.0)
                            .ok_or_else(|| format!("invalid regression bound {v}"))?;
                    }
                    "--min-speedup" => {
                        let v = it.next().ok_or("--min-speedup needs <label=factor>")?;
                        let (label, factor) = v
                            .split_once('=')
                            .ok_or_else(|| format!("--min-speedup {v}: expected label=factor"))?;
                        let factor = factor
                            .parse::<f64>()
                            .ok()
                            .filter(|f| f.is_finite() && *f >= 1.0)
                            .ok_or_else(|| format!("invalid speedup factor {factor}"))?;
                        min_speedups.push((label.to_string(), factor));
                    }
                    flag if flag.starts_with('-') => {
                        return Err(format!("unknown `check-bench` flag {flag}"));
                    }
                    file => {
                        if baseline.replace(PathBuf::from(file)).is_some() {
                            return Err("multiple baselines; pass exactly one".into());
                        }
                    }
                }
            }
            Ok(Command::CheckBench {
                baseline: baseline.ok_or("missing baseline: pass a `bench --out` report")?,
                current,
                max_regress,
                min_speedups,
            })
        }
        "serve" => {
            let mut cfg = f2_core::serve::ServeConfig::default();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => {
                        cfg.addr = it.next().ok_or("--addr needs host:port")?.to_string();
                    }
                    "--threads" => {
                        let v = it.next().ok_or("--threads needs a value")?;
                        cfg.threads = v
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("invalid thread count {v}"))?;
                    }
                    "--shards" => {
                        let v = it.next().ok_or("--shards needs a value")?;
                        cfg.shards = v
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("invalid shard count {v}"))?;
                    }
                    "--port-file" => {
                        cfg.port_file =
                            Some(PathBuf::from(it.next().ok_or("--port-file needs a path")?));
                    }
                    "--log" => {
                        cfg.log = Some(PathBuf::from(it.next().ok_or("--log needs a path")?));
                    }
                    other => return Err(format!("unknown `serve` flag {other}")),
                }
            }
            Ok(Command::Serve(cfg))
        }
        "loadgen" => {
            let mut opts = crate::loadgen::LoadgenOptions::default();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => {
                        opts.addr = it.next().ok_or("--addr needs host:port")?.to_string();
                    }
                    "--rps" => {
                        let v = it.next().ok_or("--rps needs a value")?;
                        opts.rps = v
                            .parse::<f64>()
                            .ok()
                            .filter(|r| r.is_finite() && *r > 0.0)
                            .ok_or_else(|| format!("invalid request rate {v}"))?;
                    }
                    "--duration" => {
                        let v = it.next().ok_or("--duration needs seconds")?;
                        opts.duration_s = v
                            .parse::<f64>()
                            .ok()
                            .filter(|d| d.is_finite() && *d > 0.0)
                            .ok_or_else(|| format!("invalid duration {v}"))?;
                    }
                    "--connections" => {
                        let v = it.next().ok_or("--connections needs a value")?;
                        opts.connections = v
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("invalid connection count {v}"))?;
                    }
                    "--mix" => {
                        opts.mix = crate::loadgen::Mix::parse(
                            it.next().ok_or("--mix needs a profile name")?,
                        )?;
                    }
                    "--warmup" => {
                        let v = it.next().ok_or("--warmup needs a round count")?;
                        opts.warmup = v
                            .parse::<usize>()
                            .map_err(|_| format!("invalid warmup rounds {v}"))?;
                    }
                    "--wait" => {
                        let v = it.next().ok_or("--wait needs seconds")?;
                        opts.wait_s = v
                            .parse::<f64>()
                            .ok()
                            .filter(|w| w.is_finite() && *w >= 0.0)
                            .ok_or_else(|| format!("invalid wait {v}"))?;
                    }
                    "--out" => {
                        opts.out = Some(PathBuf::from(
                            it.next().ok_or("--out needs an output path")?,
                        ));
                    }
                    "--expect-all-hits" => opts.expect_all_hits = true,
                    "--shutdown" => opts.shutdown = true,
                    "--recent" => {
                        opts.recent = Some(PathBuf::from(
                            it.next().ok_or("--recent needs an output path")?,
                        ));
                    }
                    other => return Err(format!("unknown `loadgen` flag {other}")),
                }
            }
            Ok(Command::Loadgen(opts))
        }
        "campaign" => {
            let mut manifest = None;
            let mut opts = crate::campaign::CampaignOptions::default();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => {
                        opts.out = Some(PathBuf::from(
                            it.next().ok_or("--out needs an output path")?,
                        ));
                    }
                    "--checkpoint" => {
                        opts.checkpoint =
                            Some(PathBuf::from(it.next().ok_or("--checkpoint needs a path")?));
                    }
                    "--resume" => opts.resume = true,
                    "--threads" => {
                        let v = it.next().ok_or("--threads needs a value")?;
                        opts.threads = v
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("invalid thread count {v}"))?;
                    }
                    "--golden" => {
                        opts.golden = Some(PathBuf::from(
                            it.next().ok_or("--golden needs a dist-golden path")?,
                        ));
                    }
                    "--progress" => {
                        opts.progress =
                            Some(PathBuf::from(it.next().ok_or("--progress needs a path")?));
                    }
                    flag if flag.starts_with('-') => {
                        return Err(format!("unknown `campaign` flag {flag}"));
                    }
                    file => {
                        if manifest.replace(PathBuf::from(file)).is_some() {
                            return Err("multiple manifests; pass exactly one".into());
                        }
                    }
                }
            }
            opts.manifest = manifest.ok_or("missing manifest: pass a campaign JSON file")?;
            Ok(Command::Campaign(opts))
        }
        "check-log" => {
            let mut path = None;
            for a in it {
                match a.as_str() {
                    flag if flag.starts_with('-') => {
                        return Err(format!("unknown `check-log` flag {flag}"));
                    }
                    file => {
                        if path.replace(PathBuf::from(file)).is_some() {
                            return Err("multiple log files; pass exactly one".into());
                        }
                    }
                }
            }
            Ok(Command::CheckLog {
                path: path.ok_or("missing log file: pass the `serve --log` output")?,
            })
        }
        "--help" | "-h" | "help" => Err(USAGE.to_string()),
        other => Err(format!("unknown command {other}\n\n{USAGE}")),
    }
}

/// Prints the experiment inventory.
pub fn list(registry: &Registry, json: bool) {
    if json {
        let entries: Vec<Json> = registry
            .entries()
            .iter()
            .map(|e| {
                let params: Vec<Json> = e
                    .params()
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("name".to_string(), p.name.to_json()),
                            ("kind".to_string(), p.kind.label().to_json()),
                            ("help".to_string(), p.help.to_json()),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("name".to_string(), e.name().to_json()),
                    ("summary".to_string(), e.summary().to_json()),
                    (
                        "tags".to_string(),
                        Json::Arr(e.tags().iter().map(|t| t.to_json()).collect()),
                    ),
                    ("params".to_string(), Json::Arr(params)),
                ])
            })
            .collect();
        println!("{}", Json::Arr(entries));
        return;
    }
    let rows: Vec<Vec<String>> = registry
        .entries()
        .iter()
        .map(|e| {
            vec![
                e.name().to_string(),
                e.tags().join(","),
                e.summary().to_string(),
            ]
        })
        .collect();
    crate::print_table(&["Experiment", "Tags", "Summary"], &rows);
    println!("\nRun one with `f2 run <name>`, a group with `f2 run <tag>`, or everything");
    println!("with `f2 run all`. Tags: {}", registry.tags().join(", "));
}

/// Runs the selected experiments; returns the process exit code.
///
/// In `--json` mode each experiment contributes its structured records
/// (`{"label": ..., "data": ...}` lines, the old `F2_BENCH_JSON` format)
/// followed by one report line (`{"experiment": ..., "kpis": [...]}`).
///
/// With `--trace`/`--metrics` a [`f2_core::trace`] session wraps the whole
/// run: each experiment gets an `experiment:<name>` span (sections and
/// executor workers nest underneath), the Chrome trace goes to the
/// `--trace` path, and `--metrics` appends the summary — to stdout in
/// human mode, to stderr in `--json` mode so report pipes stay clean.
pub fn run(registry: &Registry, opts: &RunOptions) -> u8 {
    let selected = match registry.select(&opts.selector) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("f2 run: {e}");
            eprintln!("known selectors: all, an experiment name, or one of the tags");
            eprintln!("from `f2 list`");
            return 2;
        }
    };
    // Every scenario param must be a dimension at least one selected
    // experiment declares — a typo'd `--param` would otherwise run the
    // defaults silently.
    for (key, _) in opts.scenario.params() {
        let declared = selected
            .iter()
            .any(|e| e.params().iter().any(|p| p.name == key));
        if !declared {
            eprintln!(
                "f2 run: no selected experiment declares param `{key}`; \
                 see `f2 list --json`"
            );
            return 2;
        }
    }
    let session = (opts.trace.is_some() || opts.metrics).then(f2_core::trace::session);
    let mut failures = 0;
    for exp in selected {
        let _span = f2_core::trace::span(&format!("experiment:{}", exp.name()));
        let mut ctx = if opts.json {
            ExperimentCtx::quiet_scenario(&opts.scenario)
        } else {
            println!("\n##### {} — {}", exp.name(), exp.summary());
            ExperimentCtx::from_scenario(&opts.scenario)
        };
        match exp.run(&mut ctx) {
            Ok(report) => {
                if opts.json {
                    for (label, data) in ctx.records() {
                        let doc = Json::Obj(vec![
                            ("label".to_string(), label.to_json()),
                            ("data".to_string(), data.clone()),
                        ]);
                        println!("{doc}");
                    }
                    println!("{}", report.to_json());
                }
            }
            Err(e) => {
                eprintln!("f2 run: experiment {} failed: {e}", exp.name());
                // Invalid scenario params are a usage error, not an
                // experiment failure — surface them as exit 2 immediately,
                // matching the bad-selector and undeclared-param paths.
                if matches!(e, f2_core::CoreError::InvalidParameter { .. }) {
                    return 2;
                }
                failures += 1;
            }
        }
    }
    if let Some(session) = session {
        let trace_report = session.finish();
        if opts.metrics {
            let summary = trace_report.summary();
            if opts.json {
                eprintln!("{summary}");
            } else {
                println!("{summary}");
            }
        }
        if let Some(path) = &opts.trace {
            match std::fs::write(path, trace_report.to_chrome_json().encode()) {
                Ok(()) => eprintln!(
                    "f2 run: wrote {} span(s) to {} (open in Perfetto or chrome://tracing)",
                    trace_report.spans.len(),
                    path.display()
                ),
                Err(e) => {
                    eprintln!("f2 run: cannot write trace to {}: {e}", path.display());
                    failures += 1;
                }
            }
        }
    }
    u8::from(failures > 0)
}

/// Validates a Chrome trace-event file written by `run --trace`: the JSON
/// must parse, `traceEvents` must contain at least one complete
/// (`"ph":"X"`) span, and every span must carry `name`/`ts`/`dur`/`tid`.
/// `require_experiments` additionally demands one `experiment:<name>` span
/// per registry entry; `require_workers` demands `exec:worker` spans plus at
/// least one `exec.chunk_imbalance` gauge event. Every `exec.chunk_imbalance`
/// gauge present must carry a finite value (non-finite values encode as JSON
/// `null`). `require_scf_bb` demands the ISS block-cache series: the
/// `scf.bb.hits`/`scf.bb.misses`/`scf.bb.invalidations` counters and the
/// `scf.bb.block_len` histogram summary, all exported as `"ph":"C"` events.
/// Returns the process exit code (0 valid, 1 invalid, 2 unreadable).
pub fn check_trace(
    registry: &Registry,
    path: &std::path::Path,
    require_experiments: bool,
    require_workers: bool,
    require_scf_bb: bool,
) -> u8 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("f2 check-trace: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("f2 check-trace: {}: malformed JSON: {e}", path.display());
            return 1;
        }
    };
    let Some(events) = doc.get("traceEvents").and_then(Json::as_array) else {
        eprintln!(
            "f2 check-trace: {}: missing `traceEvents` array",
            path.display()
        );
        return 1;
    };
    let mut failures = Vec::new();
    let mut span_names = Vec::new();
    let mut counter_names = Vec::new();
    let mut imbalance_events = 0usize;
    for (i, event) in events.iter().enumerate() {
        let ph = event.get("ph").and_then(Json::as_str);
        let name = event.get("name").and_then(Json::as_str);
        if ph == Some("C") {
            if let Some(n) = name {
                counter_names.push(n.to_string());
            }
        }
        // Non-finite gauge values encode as JSON `null` and would silently
        // poison downstream trace viewers — reject them here.
        if ph == Some("C") && name == Some("exec.chunk_imbalance") {
            imbalance_events += 1;
            match event
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64)
            {
                Some(v) if v.is_finite() => {}
                _ => failures.push(format!(
                    "event {i}: `exec.chunk_imbalance` value missing or non-finite"
                )),
            }
        }
        if ph != Some("X") {
            continue;
        }
        let well_formed = name.is_some()
            && event.get("ts").and_then(Json::as_f64).is_some()
            && event.get("dur").and_then(Json::as_f64).is_some()
            && event.get("tid").and_then(Json::as_f64).is_some();
        match name {
            Some(n) if well_formed => span_names.push(n.to_string()),
            _ => failures.push(format!("event {i}: span event missing name/ts/dur/tid")),
        }
    }
    if span_names.is_empty() {
        failures.push("no complete (\"ph\":\"X\") span events".to_string());
    }
    if require_experiments {
        for exp in registry.entries() {
            let want = format!("experiment:{}", exp.name());
            if !span_names.iter().any(|n| n == &want) {
                failures.push(format!("missing span `{want}`"));
            }
        }
    }
    if require_workers {
        if !span_names.iter().any(|n| n == "exec:worker") {
            failures.push("missing per-worker executor spans (`exec:worker`)".to_string());
        }
        if imbalance_events == 0 {
            failures.push("missing `exec.chunk_imbalance` gauge events".to_string());
        }
    }
    if require_scf_bb {
        for want in [
            "scf.bb.hits",
            "scf.bb.misses",
            "scf.bb.invalidations",
            "scf.bb.block_len",
        ] {
            if !counter_names.iter().any(|n| n == want) {
                failures.push(format!("missing ISS block-cache series `{want}`"));
            }
        }
    }
    for f in &failures {
        eprintln!("f2 check-trace: {}: {f}", path.display());
    }
    if failures.is_empty() {
        eprintln!(
            "f2 check-trace: {}: {} span(s) across {} event(s), well-formed",
            path.display(),
            span_names.len(),
            events.len()
        );
        0
    } else {
        1
    }
}

/// One well-formedness problem with a single access-log record, or `None`
/// when the record is valid. Factored out of [`check_log`] so each rule
/// reads as one early return.
fn check_log_record(doc: &Json) -> Option<String> {
    if doc.get("schema").and_then(Json::as_str) != Some(f2_core::serve::LOG_SCHEMA) {
        return Some(format!("schema is not {:?}", f2_core::serve::LOG_SCHEMA));
    }
    match doc.get("trace_id").and_then(Json::as_str) {
        Some(id) if !id.is_empty() => {}
        _ => return Some("missing or empty `trace_id`".to_string()),
    }
    // Experiment/scenario may legitimately be empty (a request rejected
    // before the body resolved), but they must be present as strings and
    // agree: a resolved experiment always has its 16-hex scenario hash.
    let experiment = doc.get("experiment").and_then(Json::as_str);
    let scenario = doc.get("scenario").and_then(Json::as_str);
    let (Some(experiment), Some(scenario)) = (experiment, scenario) else {
        return Some("missing `experiment`/`scenario` strings".to_string());
    };
    if !experiment.is_empty()
        && (scenario.len() != 16 || !scenario.bytes().all(|b| b.is_ascii_hexdigit()))
    {
        return Some(format!("scenario {scenario:?} is not a 16-hex-digit hash"));
    }
    match doc.get("cache") {
        Some(Json::Null) => {}
        Some(j) if matches!(j.as_str(), Some("hit" | "miss")) => {}
        _ => return Some("`cache` must be \"hit\", \"miss\" or null".to_string()),
    }
    match doc.get("status").and_then(Json::as_f64) {
        Some(s) if s.fract() == 0.0 && (100.0..=599.0).contains(&s) => {}
        _ => return Some("`status` is not an HTTP status code".to_string()),
    }
    for key in ["queue_ms", "run_ms", "total_ms"] {
        match doc.get(key).and_then(Json::as_f64) {
            Some(v) if v.is_finite() && v >= 0.0 => {}
            _ => return Some(format!("`{key}` missing or not a non-negative number")),
        }
    }
    None
}

/// Validates a JSONL access log written by `serve --log` (or
/// `/debug/recent` records re-emitted one per line by `loadgen --recent`):
/// every non-empty line must parse as one `f2-serve-log-v1` object with a
/// non-empty trace id, a `hit`/`miss`/`null` cache outcome, an HTTP status
/// code and finite non-negative latencies, and the file must hold at least
/// one record. Returns the process exit code (0 valid, 1 invalid,
/// 2 unreadable).
pub fn check_log(path: &std::path::Path) -> u8 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("f2 check-log: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let mut records = 0usize;
    let mut failures = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 1;
        let doc = match Json::parse(line) {
            Ok(d) => d,
            Err(e) => {
                failures.push(format!("line {lineno}: malformed JSON: {e}"));
                continue;
            }
        };
        records += 1;
        if let Some(problem) = check_log_record(&doc) {
            failures.push(format!("line {lineno}: {problem}"));
        }
    }
    if records == 0 && failures.is_empty() {
        failures.push("no records: the log is empty".to_string());
    }
    for f in &failures {
        eprintln!("f2 check-log: {}: {f}", path.display());
    }
    if failures.is_empty() {
        eprintln!(
            "f2 check-log: {}: {records} record(s), well-formed",
            path.display()
        );
        0
    } else {
        1
    }
}

/// Verifies `run --json` report lines against the golden snapshots.
///
/// Reads `input` line by line, ignores anything that is not a JSON
/// experiment report (table text, notes, record lines), and compares each
/// report against `golden_dir/<experiment>.json` with the per-KPI relative
/// tolerances stored in the snapshot. Returns the process exit code: `0`
/// when at least one report was seen and every one matched.
pub fn check(input: &mut dyn BufRead, golden_dir: &std::path::Path) -> u8 {
    let mut reports = 0usize;
    let mut failures = Vec::new();
    for line in input.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("f2 check: stdin: {e}");
                return 2;
            }
        };
        let Ok(doc) = Json::parse(&line) else {
            continue;
        };
        if doc.get("experiment").is_none() || doc.get("kpis").is_none() {
            continue;
        }
        let actual = match ExperimentReport::from_json(&doc) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("malformed report line: {e}"));
                continue;
            }
        };
        reports += 1;
        let path = golden::snapshot_path(golden_dir, &actual.experiment);
        match golden::load(&path) {
            Ok(expected) => {
                for diff in golden::compare(&expected, &actual) {
                    failures.push(format!("{}: {diff}", actual.experiment));
                }
            }
            Err(e) => failures.push(format!(
                "{}: no golden snapshot ({e}); run the golden test with F2_BLESS=1",
                actual.experiment
            )),
        }
    }
    if reports == 0 {
        eprintln!("f2 check: no report lines on stdin; pipe `f2 run <sel> --json` in");
        return 2;
    }
    for f in &failures {
        eprintln!("f2 check: {f}");
    }
    if failures.is_empty() {
        eprintln!("f2 check: {reports} report(s) matched the golden snapshots");
        0
    } else {
        eprintln!(
            "f2 check: {} failure(s) across {reports} report(s)",
            failures.len()
        );
        1
    }
}

/// Runs the curated hot-kernel suite (see [`crate::suite`]); returns the
/// process exit code. The human-readable table always goes to stdout; the
/// machine-readable `f2-bench-v1` report is written only via `--out`, and
/// `--trace` wraps the run in a [`f2_core::trace`] session so every kernel
/// gets a `bench:<label>` span.
pub fn bench(opts: &BenchOptions) -> u8 {
    let session = opts.trace.is_some().then(f2_core::trace::session);
    let cfg = crate::suite::SuiteConfig {
        quick: opts.quick,
        samples: opts.samples,
        filter: opts.filter.clone(),
        threads: opts.threads,
    };
    let harness = crate::suite::run_suite(&cfg);
    harness.finish();
    let mut failures = 0;
    if harness.results().is_empty() {
        eprintln!("f2 bench: no benchmark matched the filter");
        failures += 1;
    } else if let Some(out) = &opts.out {
        let doc = crate::suite::suite_json(&harness, &cfg);
        match std::fs::write(out, format!("{}\n", doc.encode())) {
            Ok(()) => eprintln!(
                "f2 bench: wrote {} record(s) to {}",
                harness.results().len(),
                out.display()
            ),
            Err(e) => {
                eprintln!("f2 bench: cannot write report to {}: {e}", out.display());
                failures += 1;
            }
        }
    }
    if let Some(session) = session {
        let trace_report = session.finish();
        if let Some(path) = &opts.trace {
            match std::fs::write(path, trace_report.to_chrome_json().encode()) {
                Ok(()) => eprintln!(
                    "f2 bench: wrote {} span(s) to {}",
                    trace_report.spans.len(),
                    path.display()
                ),
                Err(e) => {
                    eprintln!("f2 bench: cannot write trace to {}: {e}", path.display());
                    failures += 1;
                }
            }
        }
    }
    u8::from(failures > 0)
}

/// A parsed `f2-bench-v1` report: run configuration plus per-label p10
/// nanoseconds, in file order.
struct BenchDoc {
    quick: bool,
    samples: usize,
    threads: usize,
    p10_ns: Vec<(String, f64)>,
}

/// Loads and validates a bench report; the error carries the exit code
/// (2 unreadable, 1 malformed) and the message to print.
fn load_bench_doc(path: &std::path::Path) -> Result<BenchDoc, (u8, String)> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| (2, format!("cannot read {}: {e}", path.display())))?;
    let doc =
        Json::parse(&text).map_err(|e| (1, format!("{}: malformed JSON: {e}", path.display())))?;
    if doc.get("schema").and_then(Json::as_str) != Some(crate::suite::SCHEMA) {
        return Err((
            1,
            format!(
                "{}: not a `{}` document",
                path.display(),
                crate::suite::SCHEMA
            ),
        ));
    }
    let records = doc
        .get("records")
        .and_then(Json::as_array)
        .ok_or_else(|| (1, format!("{}: missing `records` array", path.display())))?;
    let mut p10_ns = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        let label = r
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| (1, format!("{}: record {i} missing `label`", path.display())))?;
        let p10 = r
            .get("p10_ns")
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v >= 0.0)
            .ok_or_else(|| {
                (
                    1,
                    format!("{}: record {i} missing a finite `p10_ns`", path.display()),
                )
            })?;
        p10_ns.push((label.to_string(), p10));
    }
    Ok(BenchDoc {
        quick: doc.get("quick").and_then(Json::as_bool).unwrap_or(false),
        samples: doc
            .get("samples")
            .and_then(Json::as_f64)
            .map_or_else(f2_core::benchkit::samples_from_env, |v| v as usize),
        threads: doc
            .get("threads")
            .and_then(Json::as_f64)
            .map_or_else(f2_core::exec::num_threads, |v| v as usize),
        p10_ns,
    })
}

/// Compares two reports label by label on p10; returns the failure
/// messages. A baseline label missing from `current` is a failure (the
/// kernel silently vanished from the suite); extra current labels are fine
/// (new kernels need a blessed baseline first).
fn compare_bench(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    max_regress: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (label, base) in baseline {
        let Some((_, cur)) = current.iter().find(|(l, _)| l == label) else {
            failures.push(format!("{label}: missing from the current run"));
            continue;
        };
        let allowed = base * (1.0 + max_regress / 100.0);
        if *cur > allowed {
            failures.push(format!(
                "{label}: p10 {:.0} ns vs baseline {:.0} ns (+{:.1}%, allowed +{max_regress:.1}%)",
                cur,
                base,
                (cur / base - 1.0) * 100.0
            ));
        }
    }
    failures
}

/// Verifies the current suite timings against a committed baseline report.
///
/// Compares p10 per label — the outlier-robust statistic `benchkit`
/// records exactly for this purpose — and fails any kernel more than
/// `max_regress` percent slower. Without `--current` the suite runs
/// in-process using the baseline's own quick/samples/threads
/// configuration. Wall-clock numbers are machine-dependent, so baselines
/// only mean something on the machine that produced them; CI regenerates
/// its own current run and uses a generous bound.
///
/// `min_speedups` inverts the check for selected labels: each named kernel
/// must have *improved*, with current p10 at most baseline p10 divided by
/// the factor. This is how a PR proves a claimed optimisation landed — the
/// gate compares against the *previous* baseline before it is re-blessed.
/// Returns the process exit code (0 ok, 1 regressed/malformed,
/// 2 unreadable).
pub fn check_bench(
    baseline: &std::path::Path,
    current: Option<&std::path::Path>,
    max_regress: f64,
    min_speedups: &[(String, f64)],
) -> u8 {
    let base = match load_bench_doc(baseline) {
        Ok(d) => d,
        Err((code, msg)) => {
            eprintln!("f2 check-bench: {msg}");
            return code;
        }
    };
    let cur_p10 = match current {
        Some(path) => match load_bench_doc(path) {
            Ok(d) => d.p10_ns,
            Err((code, msg)) => {
                eprintln!("f2 check-bench: {msg}");
                return code;
            }
        },
        None => {
            eprintln!(
                "f2 check-bench: no --current report; running the suite \
                 (quick={}, samples={}, threads={})",
                base.quick, base.samples, base.threads
            );
            let cfg = crate::suite::SuiteConfig {
                quick: base.quick,
                samples: base.samples,
                filter: None,
                threads: base.threads,
            };
            let harness = crate::suite::run_suite(&cfg);
            harness
                .results()
                .iter()
                .map(|r| (r.label.clone(), r.p10.as_nanos() as f64))
                .collect()
        }
    };
    let mut failures = compare_bench(&base.p10_ns, &cur_p10, max_regress);
    for (label, factor) in min_speedups {
        let base_p10 = base.p10_ns.iter().find(|(l, _)| l == label);
        let cur = cur_p10.iter().find(|(l, _)| l == label);
        match (base_p10, cur) {
            (Some((_, b)), Some((_, c))) if *c * factor <= *b => {}
            (Some((_, b)), Some((_, c))) => failures.push(format!(
                "{label}: p10 {c:.0} ns is only {:.2}x faster than baseline \
                 {b:.0} ns (required {factor:.2}x)",
                b / c
            )),
            _ => failures.push(format!(
                "{label}: --min-speedup label absent from baseline or current"
            )),
        }
    }
    for f in &failures {
        eprintln!("f2 check-bench: {f}");
    }
    if failures.is_empty() {
        eprintln!(
            "f2 check-bench: {} kernel(s) within +{max_regress:.1}% of {}",
            base.p10_ns.len(),
            baseline.display()
        );
        0
    } else {
        eprintln!(
            "f2 check-bench: {} regression(s) across {} kernel(s)",
            failures.len(),
            base.p10_ns.len()
        );
        1
    }
}

/// Runs the batched experiment service until a `POST /shutdown` arrives;
/// returns the process exit code (0 clean shutdown, 1 a server thread
/// panicked, 2 the bind failed).
pub fn serve(registry: Registry, config: f2_core::serve::ServeConfig) -> u8 {
    let addr = config.addr.clone();
    match f2_core::serve::start(registry, config) {
        Ok(handle) => match handle.wait() {
            Ok(()) => {
                eprintln!("f2 serve: shut down cleanly");
                0
            }
            Err(e) => {
                eprintln!("f2 serve: {e}");
                1
            }
        },
        Err(e) => {
            eprintln!("f2 serve: cannot start on {addr}: {e}");
            2
        }
    }
}

/// Full CLI entry point used by `src/bin/f2.rs`. Takes the registry by
/// value because `serve` moves it into the server's worker threads.
pub fn main_with(registry: Registry, args: &[String]) -> u8 {
    match parse_args(args) {
        Ok(Command::List { json }) => {
            list(&registry, json);
            0
        }
        Ok(Command::Run(opts)) => run(&registry, &opts),
        Ok(Command::Check { golden_dir }) => {
            let stdin = std::io::stdin();
            let mut lock = stdin.lock();
            check(&mut lock, &golden_dir)
        }
        Ok(Command::CheckTrace {
            path,
            require_experiments,
            require_workers,
            require_scf_bb,
        }) => check_trace(
            &registry,
            &path,
            require_experiments,
            require_workers,
            require_scf_bb,
        ),
        Ok(Command::Bench(opts)) => bench(&opts),
        Ok(Command::CheckBench {
            baseline,
            current,
            max_regress,
            min_speedups,
        }) => check_bench(&baseline, current.as_deref(), max_regress, &min_speedups),
        Ok(Command::Serve(config)) => serve(registry, config),
        Ok(Command::Loadgen(opts)) => crate::loadgen::run(&opts),
        Ok(Command::Campaign(opts)) => crate::campaign::run(&registry, &opts),
        Ok(Command::CheckLog { path }) => check_log(&path),
        Err(msg) => {
            eprintln!("{msg}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_core::experiment::Experiment;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run_flags() {
        let Command::Run(opts) = parse_args(&args(&[
            "run",
            "imc",
            "--quick",
            "--json",
            "--threads",
            "3",
            "--seed",
            "7",
            "--param",
            "cells=800",
            "--param",
            "mode=dense",
            "--trace",
            "/tmp/t.json",
            "--metrics",
        ]))
        .expect("parses") else {
            panic!("expected run");
        };
        assert_eq!(opts.selector, "imc");
        assert!(opts.json && opts.metrics);
        assert_eq!(opts.scenario.fidelity, Fidelity::Quick);
        assert_eq!(opts.scenario.threads, 3);
        assert_eq!(opts.scenario.seed, 7);
        assert_eq!(opts.scenario.param("cells"), Some(&ParamValue::Num(800.0)));
        assert_eq!(
            opts.scenario.param("mode"),
            Some(&ParamValue::Str("dense".to_string()))
        );
        assert_eq!(opts.trace, Some(PathBuf::from("/tmp/t.json")));
    }

    #[test]
    fn run_scenario_file_loads_and_later_flags_override() {
        let path = std::env::temp_dir().join("f2-runner-scenario-test.json");
        std::fs::write(
            &path,
            r#"{"seed":11,"fidelity":"quick","threads":2,"params":{"cells":640}}"#,
        )
        .expect("writable tmp");
        let path_s = path.to_string_lossy().to_string();
        let Command::Run(opts) = parse_args(&args(&[
            "run",
            "imc",
            "--scenario",
            &path_s,
            "--seed",
            "12",
        ]))
        .expect("parses") else {
            panic!("expected run");
        };
        assert_eq!(opts.scenario.seed, 12, "later --seed overrides the file");
        assert_eq!(opts.scenario.threads, 2);
        assert_eq!(opts.scenario.fidelity, Fidelity::Quick);
        assert_eq!(opts.scenario.param("cells"), Some(&ParamValue::Num(640.0)));
        // Flag order matters the other way round too: the file replaces
        // everything set before it.
        let Command::Run(opts) = parse_args(&args(&[
            "run",
            "imc",
            "--seed",
            "12",
            "--scenario",
            &path_s,
        ]))
        .expect("parses") else {
            panic!("expected run");
        };
        assert_eq!(opts.scenario.seed, 11);
        assert!(parse_args(&args(&["run", "imc", "--scenario", "/no/such/file.json"])).is_err());
        assert!(parse_args(&args(&["run", "imc", "--param", "noequals"])).is_err());
        assert!(parse_args(&args(&["run", "imc", "--param", "=3"])).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&["run"])).is_err());
        assert!(parse_args(&args(&["run", "a", "b"])).is_err());
        assert!(parse_args(&args(&["run", "a", "--threads", "0"])).is_err());
        assert!(parse_args(&args(&["run", "a", "--trace"])).is_err());
        assert!(parse_args(&args(&["check-trace"])).is_err());
        assert!(parse_args(&args(&["check-trace", "a.json", "b.json"])).is_err());
        assert!(parse_args(&args(&["check-trace", "a.json", "--nope"])).is_err());
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&[])).is_err());
    }

    #[test]
    fn parses_check_trace() {
        let Command::CheckTrace {
            path,
            require_experiments,
            require_workers,
            require_scf_bb,
        } = parse_args(&args(&[
            "check-trace",
            "/tmp/t.json",
            "--require-experiments",
            "--require-scf-bb",
        ]))
        .expect("parses")
        else {
            panic!("expected check-trace");
        };
        assert_eq!(path, PathBuf::from("/tmp/t.json"));
        assert!(require_experiments);
        assert!(!require_workers);
        assert!(require_scf_bb);
    }

    #[test]
    fn parses_list_and_check() {
        assert!(matches!(
            parse_args(&args(&["list", "--json"])),
            Ok(Command::List { json: true })
        ));
        let Command::Check { golden_dir } =
            parse_args(&args(&["check", "--golden", "/tmp/g"])).expect("parses")
        else {
            panic!("expected check");
        };
        assert_eq!(golden_dir, PathBuf::from("/tmp/g"));
    }

    #[test]
    fn check_ignores_non_report_lines_and_flags_missing_snapshots() {
        let dir = std::env::temp_dir().join("f2-check-test-missing");
        let input = b"plain text\n{\"label\":\"x\",\"data\":1}\n\
            {\"experiment\":\"ghost\",\"kpis\":[]}\n";
        let code = check(&mut &input[..], &dir);
        assert_eq!(code, 1, "missing snapshot must fail the check");
    }

    #[test]
    fn check_requires_at_least_one_report() {
        let dir = std::env::temp_dir().join("f2-check-test-empty");
        let code = check(&mut &b"no json here\n"[..], &dir);
        assert_eq!(code, 2);
    }

    /// Minimal experiment exercising sections and a parallel sweep, so a
    /// traced run produces section and `exec:worker` spans.
    struct TracedDemo;

    impl Experiment for TracedDemo {
        fn name(&self) -> &'static str {
            "traced_demo"
        }
        fn summary(&self) -> &'static str {
            "runner trace test fixture"
        }
        fn tags(&self) -> &'static [&'static str] {
            &["demo"]
        }
        fn run(&self, ctx: &mut ExperimentCtx) -> f2_core::Result<ExperimentReport> {
            ctx.section("sweep");
            let items: Vec<u64> = (0..16).collect();
            let out = ctx.exec().map(&items, |&x| x * x);
            ctx.counter_add("demo.points", out.len() as u64);
            ctx.kpi("sum", out.iter().sum::<u64>() as f64);
            Ok(ctx.report(self.name()))
        }
    }

    #[test]
    fn run_writes_a_validatable_trace() {
        let mut registry = Registry::new();
        registry.register(Box::new(TracedDemo));
        let path = std::env::temp_dir().join("f2-runner-trace-test.json");
        let opts = RunOptions {
            selector: "all".to_string(),
            json: true,
            scenario: Scenario::new(1, Fidelity::Quick, 2),
            trace: Some(path.clone()),
            metrics: false,
        };
        assert_eq!(run(&registry, &opts), 0);
        // The CI validation path accepts it, including the strict flags.
        assert_eq!(check_trace(&registry, &path, true, true, false), 0);
        let text = std::fs::read_to_string(&path).expect("trace written");
        let doc = Json::parse(&text).expect("well-formed");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents");
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"experiment:traced_demo"));
        assert!(names.contains(&"section:sweep"));
        assert!(names.contains(&"exec:worker"));
        // The ctx counter made it into the exported counter events.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("C")
                && e.get("name").and_then(Json::as_str) == Some("demo.points")
        }));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_maps_invalid_scenario_params_to_exit_2() {
        struct Picky;
        impl Experiment for Picky {
            fn name(&self) -> &'static str {
                "picky"
            }
            fn summary(&self) -> &'static str {
                "invalid-param exit-code fixture"
            }
            fn tags(&self) -> &'static [&'static str] {
                &["demo"]
            }
            fn params(&self) -> Vec<f2_core::experiment::ParamSpec> {
                vec![f2_core::experiment::ParamSpec::u64("n", "must be positive")]
            }
            fn run(&self, ctx: &mut ExperimentCtx) -> f2_core::Result<ExperimentReport> {
                if ctx.param_u64("n", 1) == 0 {
                    return Err(f2_core::CoreError::InvalidParameter {
                        name: "n".to_string(),
                        reason: "must be positive".to_string(),
                    });
                }
                Ok(ctx.report(self.name()))
            }
        }
        let mut registry = Registry::new();
        registry.register(Box::new(Picky));
        let opts = |n| RunOptions {
            selector: "all".to_string(),
            json: true,
            scenario: Scenario::new(1, Fidelity::Quick, 1).with_param("n", ParamValue::Num(n)),
            trace: None,
            metrics: false,
        };
        assert_eq!(run(&registry, &opts(1.0)), 0);
        assert_eq!(
            run(&registry, &opts(0.0)),
            2,
            "invalid scenario param must be a usage error"
        );
    }

    #[test]
    fn run_rejects_params_no_selected_experiment_declares() {
        let mut registry = Registry::new();
        registry.register(Box::new(TracedDemo));
        let opts = RunOptions {
            selector: "all".to_string(),
            json: true,
            scenario: Scenario::new(1, Fidelity::Quick, 1)
                .with_param("no_such_knob", ParamValue::Num(3.0)),
            trace: None,
            metrics: false,
        };
        assert_eq!(
            run(&registry, &opts),
            2,
            "undeclared param is a usage error"
        );
    }

    #[test]
    fn parses_campaign_flags() {
        let Command::Campaign(opts) = parse_args(&args(&[
            "campaign",
            "manifest.json",
            "--out",
            "/tmp/c.json",
            "--checkpoint",
            "/tmp/c.jsonl",
            "--resume",
            "--threads",
            "4",
            "--golden",
            "/tmp/d.json",
            "--progress",
            "/tmp/p.jsonl",
        ]))
        .expect("parses") else {
            panic!("expected campaign");
        };
        assert_eq!(opts.manifest, PathBuf::from("manifest.json"));
        assert_eq!(opts.out, Some(PathBuf::from("/tmp/c.json")));
        assert_eq!(opts.checkpoint, Some(PathBuf::from("/tmp/c.jsonl")));
        assert!(opts.resume);
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.golden, Some(PathBuf::from("/tmp/d.json")));
        assert_eq!(opts.progress, Some(PathBuf::from("/tmp/p.jsonl")));
        assert!(parse_args(&args(&["campaign"])).is_err());
        assert!(parse_args(&args(&["campaign", "a.json", "b.json"])).is_err());
        assert!(parse_args(&args(&["campaign", "a.json", "--threads", "0"])).is_err());
        assert!(parse_args(&args(&["campaign", "a.json", "--nope"])).is_err());
    }

    #[test]
    fn check_trace_rejects_missing_malformed_and_empty() {
        let registry = Registry::new();
        let dir = std::env::temp_dir();
        let missing = dir.join("f2-check-trace-missing.json");
        let _ = std::fs::remove_file(&missing);
        assert_eq!(check_trace(&registry, &missing, false, false, false), 2);
        let bad = dir.join("f2-check-trace-bad.json");
        std::fs::write(&bad, "{not json").expect("writable tmp");
        assert_eq!(check_trace(&registry, &bad, false, false, false), 1);
        let empty = dir.join("f2-check-trace-empty.json");
        std::fs::write(&empty, "{\"traceEvents\":[]}").expect("writable tmp");
        assert_eq!(check_trace(&registry, &empty, false, false, false), 1);
        let _ = std::fs::remove_file(&bad);
        let _ = std::fs::remove_file(&empty);
    }

    #[test]
    fn check_trace_enforces_required_spans() {
        let mut registry = Registry::new();
        registry.register(Box::new(TracedDemo));
        let path = std::env::temp_dir().join("f2-check-trace-partial.json");
        // A well-formed trace with one unrelated span: fine standalone,
        // rejected under either strict flag.
        std::fs::write(
            &path,
            "{\"traceEvents\":[{\"name\":\"other\",\"ph\":\"X\",\
             \"ts\":0,\"dur\":1,\"pid\":1,\"tid\":1}]}",
        )
        .expect("writable tmp");
        assert_eq!(check_trace(&registry, &path, false, false, false), 0);
        assert_eq!(check_trace(&registry, &path, true, false, false), 1);
        assert_eq!(check_trace(&registry, &path, false, true, false), 1);
        assert_eq!(check_trace(&registry, &path, false, false, true), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn check_trace_rejects_non_finite_imbalance_gauges() {
        let registry = Registry::new();
        let path = std::env::temp_dir().join("f2-check-trace-nan-gauge.json");
        // A NaN gauge encodes as JSON `null`; even without the strict flags
        // the validator must flag it.
        std::fs::write(
            &path,
            "{\"traceEvents\":[{\"name\":\"other\",\"ph\":\"X\",\
             \"ts\":0,\"dur\":1,\"pid\":1,\"tid\":1},\
             {\"name\":\"exec.chunk_imbalance\",\"ph\":\"C\",\"ts\":0,\
             \"pid\":1,\"tid\":1,\"args\":{\"value\":null}}]}",
        )
        .expect("writable tmp");
        assert_eq!(check_trace(&registry, &path, false, false, false), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn check_trace_enforces_scf_bb_series() {
        let registry = Registry::new();
        let dir = std::env::temp_dir();
        let path = dir.join("f2-check-trace-scf-bb.json");
        std::fs::write(
            &path,
            "{\"traceEvents\":[{\"name\":\"other\",\"ph\":\"X\",\
             \"ts\":0,\"dur\":1,\"pid\":1,\"tid\":1},\
             {\"name\":\"scf.bb.hits\",\"ph\":\"C\",\"ts\":1,\"pid\":1,\
             \"tid\":0,\"args\":{\"value\":7}},\
             {\"name\":\"scf.bb.misses\",\"ph\":\"C\",\"ts\":1,\"pid\":1,\
             \"tid\":0,\"args\":{\"value\":3}},\
             {\"name\":\"scf.bb.invalidations\",\"ph\":\"C\",\"ts\":1,\
             \"pid\":1,\"tid\":0,\"args\":{\"value\":0}},\
             {\"name\":\"scf.bb.block_len\",\"ph\":\"C\",\"ts\":1,\"pid\":1,\
             \"tid\":0,\"args\":{\"count\":3,\"p50\":4,\"p90\":6,\"p99\":6,\
             \"max\":6}}]}",
        )
        .expect("writable tmp");
        assert_eq!(check_trace(&registry, &path, false, false, true), 0);
        // Dropping any one series fails the strict flag: rewrite without
        // the histogram summary.
        std::fs::write(
            &path,
            "{\"traceEvents\":[{\"name\":\"other\",\"ph\":\"X\",\
             \"ts\":0,\"dur\":1,\"pid\":1,\"tid\":1},\
             {\"name\":\"scf.bb.hits\",\"ph\":\"C\",\"ts\":1,\"pid\":1,\
             \"tid\":0,\"args\":{\"value\":7}},\
             {\"name\":\"scf.bb.misses\",\"ph\":\"C\",\"ts\":1,\"pid\":1,\
             \"tid\":0,\"args\":{\"value\":3}},\
             {\"name\":\"scf.bb.invalidations\",\"ph\":\"C\",\"ts\":1,\
             \"pid\":1,\"tid\":0,\"args\":{\"value\":0}}]}",
        )
        .expect("writable tmp");
        assert_eq!(check_trace(&registry, &path, false, false, true), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parses_check_log() {
        let Command::CheckLog { path } =
            parse_args(&args(&["check-log", "serve.jsonl"])).expect("parses")
        else {
            panic!("expected check-log");
        };
        assert_eq!(path, PathBuf::from("serve.jsonl"));
        assert!(parse_args(&args(&["check-log"])).is_err());
        assert!(parse_args(&args(&["check-log", "a", "b"])).is_err());
        assert!(parse_args(&args(&["check-log", "a", "--nope"])).is_err());
    }

    /// One well-formed access-log line with the given members spliced in.
    fn log_line(trace_id: &str, cache: &str, status: u64) -> String {
        format!(
            "{{\"schema\":\"f2-serve-log-v1\",\"trace_id\":\"{trace_id}\",\
             \"experiment\":\"echo_seed\",\
             \"scenario\":\"00000000deadbeef\",\"cache\":{cache},\
             \"status\":{status},\"queue_ms\":0.4,\"run_ms\":1.5,\
             \"total_ms\":2.1}}"
        )
    }

    #[test]
    fn check_log_accepts_a_well_formed_access_log() {
        let path = std::env::temp_dir().join("f2-check-log-ok.jsonl");
        let lines = [
            log_line("f2-0000000000000001", "\"miss\"", 200),
            log_line("client-id.7", "\"hit\"", 200),
            log_line("f2-0000000000000002", "null", 500),
            // Parse errors leave experiment/scenario empty — still valid.
            "{\"schema\":\"f2-serve-log-v1\",\"trace_id\":\"t\",\
             \"experiment\":\"\",\"scenario\":\"\",\"cache\":null,\
             \"status\":400,\"queue_ms\":0,\"run_ms\":0,\"total_ms\":0.1}"
                .to_string(),
        ];
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).expect("writable tmp");
        assert_eq!(check_log(&path), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn check_log_rejects_missing_malformed_and_empty() {
        let dir = std::env::temp_dir();
        let missing = dir.join("f2-check-log-missing.jsonl");
        let _ = std::fs::remove_file(&missing);
        assert_eq!(check_log(&missing), 2);
        let empty = dir.join("f2-check-log-empty.jsonl");
        std::fs::write(&empty, "\n\n").expect("writable tmp");
        assert_eq!(check_log(&empty), 1, "a log with zero records is invalid");
        let bad = dir.join("f2-check-log-bad.jsonl");
        std::fs::write(
            &bad,
            format!("{}\n{{not json\n", log_line("t", "null", 200)),
        )
        .expect("writable tmp");
        assert_eq!(check_log(&bad), 1);
        let _ = std::fs::remove_file(&empty);
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn check_log_rejects_ill_formed_records() {
        let cases: &[(&str, String)] = &[
            (
                "wrong-schema",
                log_line("t", "null", 200).replace("log-v1", "log-v9"),
            ),
            ("empty-trace-id", log_line("", "null", 200)),
            ("bad-cache", log_line("t", "\"maybe\"", 200)),
            ("bad-status", log_line("t", "null", 42)),
            (
                "fractional-status",
                log_line("t", "null", 200).replace(":200,", ":200.5,"),
            ),
            (
                "negative-latency",
                log_line("t", "null", 200).replace("\"run_ms\":1.5", "\"run_ms\":-1.5"),
            ),
            (
                "short-scenario-hash",
                log_line("t", "null", 200).replace("00000000deadbeef", "beef"),
            ),
        ];
        for (label, line) in cases {
            let path = std::env::temp_dir().join(format!("f2-check-log-{label}.jsonl"));
            std::fs::write(&path, format!("{line}\n")).expect("writable tmp");
            assert_eq!(check_log(&path), 1, "{label} must be rejected");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn parses_bench_flags() {
        let Command::Bench(opts) = parse_args(&args(&[
            "bench",
            "--quick",
            "--samples",
            "5",
            "--filter",
            "imc/",
            "--threads",
            "2",
            "--out",
            "/tmp/b.json",
            "--trace",
            "/tmp/bt.json",
        ]))
        .expect("parses") else {
            panic!("expected bench");
        };
        assert!(opts.quick);
        assert_eq!(opts.samples, 5);
        assert_eq!(opts.filter.as_deref(), Some("imc/"));
        assert_eq!(opts.threads, 2);
        assert_eq!(opts.out, Some(PathBuf::from("/tmp/b.json")));
        assert_eq!(opts.trace, Some(PathBuf::from("/tmp/bt.json")));
        assert!(parse_args(&args(&["bench", "--samples", "0"])).is_err());
        assert!(parse_args(&args(&["bench", "positional"])).is_err());
    }

    #[test]
    fn parses_check_bench() {
        let Command::CheckBench {
            baseline,
            current,
            max_regress,
            min_speedups,
        } = parse_args(&args(&["check-bench", "BENCH.json"])).expect("parses")
        else {
            panic!("expected check-bench");
        };
        assert_eq!(baseline, PathBuf::from("BENCH.json"));
        assert_eq!(current, None);
        assert_eq!(max_regress, 50.0);
        assert!(min_speedups.is_empty());
        let Command::CheckBench {
            max_regress,
            min_speedups,
            ..
        } = parse_args(&args(&[
            "check-bench",
            "b.json",
            "--current",
            "c.json",
            "--max-regress",
            "25",
            "--min-speedup",
            "scf/cpu_run=5",
            "--min-speedup",
            "scf/multicore_step=2.5",
        ]))
        .expect("parses")
        else {
            panic!("expected check-bench");
        };
        assert_eq!(max_regress, 25.0);
        assert_eq!(
            min_speedups,
            vec![
                ("scf/cpu_run".to_string(), 5.0),
                ("scf/multicore_step".to_string(), 2.5)
            ]
        );
        assert!(parse_args(&args(&["check-bench"])).is_err());
        assert!(parse_args(&args(&["check-bench", "a", "b"])).is_err());
        assert!(parse_args(&args(&["check-bench", "a", "--max-regress", "-5"])).is_err());
        assert!(parse_args(&args(&["check-bench", "a", "--min-speedup", "x"])).is_err());
        assert!(parse_args(&args(&["check-bench", "a", "--min-speedup", "x=0.5"])).is_err());
    }

    fn bench_doc(records: &[(&str, u64)]) -> String {
        let recs: Vec<String> = records
            .iter()
            .map(|(l, p10)| {
                format!(
                    "{{\"label\":\"{l}\",\"min_ns\":{p10},\"p10_ns\":{p10},\
                     \"median_ns\":{p10},\"mean_ns\":{p10},\"iters_per_sample\":1}}"
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"f2-bench-v1\",\"threads\":1,\"quick\":true,\
             \"samples\":3,\"records\":[{}]}}",
            recs.join(",")
        )
    }

    #[test]
    fn check_bench_flags_a_synthetic_regression() {
        let dir = std::env::temp_dir();
        let base = dir.join("f2-check-bench-base.json");
        let fast = dir.join("f2-check-bench-fast.json");
        let slow = dir.join("f2-check-bench-slow.json");
        std::fs::write(&base, bench_doc(&[("g/a", 100), ("g/b", 200)])).expect("writable tmp");
        std::fs::write(&fast, bench_doc(&[("g/a", 110), ("g/b", 150)])).expect("writable tmp");
        std::fs::write(&slow, bench_doc(&[("g/a", 400), ("g/b", 200)])).expect("writable tmp");
        assert_eq!(check_bench(&base, Some(&fast), 50.0, &[]), 0);
        assert_eq!(check_bench(&base, Some(&slow), 50.0, &[]), 1);
        // A tighter bound turns the mild slowdown into a failure too.
        assert_eq!(check_bench(&base, Some(&fast), 5.0, &[]), 1);
        for p in [&base, &fast, &slow] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn check_bench_min_speedup_demands_an_improvement() {
        let dir = std::env::temp_dir();
        let base = dir.join("f2-check-bench-ms-base.json");
        let cur = dir.join("f2-check-bench-ms-cur.json");
        std::fs::write(&base, bench_doc(&[("g/a", 1000), ("g/b", 1000)])).expect("writable tmp");
        // g/a sped up 5x, g/b only 2x.
        std::fs::write(&cur, bench_doc(&[("g/a", 200), ("g/b", 500)])).expect("writable tmp");
        let ms = |pairs: &[(&str, f64)]| -> Vec<(String, f64)> {
            pairs.iter().map(|(l, f)| (l.to_string(), *f)).collect()
        };
        assert_eq!(
            check_bench(&base, Some(&cur), 50.0, &ms(&[("g/a", 5.0)])),
            0
        );
        assert_eq!(
            check_bench(&base, Some(&cur), 50.0, &ms(&[("g/a", 5.0), ("g/b", 2.0)])),
            0
        );
        assert_eq!(
            check_bench(&base, Some(&cur), 50.0, &ms(&[("g/b", 5.0)])),
            1,
            "2x when 5x is demanded must fail"
        );
        assert_eq!(
            check_bench(&base, Some(&cur), 50.0, &ms(&[("g/ghost", 2.0)])),
            1,
            "a --min-speedup label absent from the reports must fail"
        );
        for p in [&base, &cur] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn check_bench_fails_on_vanished_kernels_and_bad_files() {
        let dir = std::env::temp_dir();
        let base = dir.join("f2-check-bench-base2.json");
        let partial = dir.join("f2-check-bench-partial.json");
        std::fs::write(&base, bench_doc(&[("g/a", 100), ("g/b", 200)])).expect("writable tmp");
        std::fs::write(&partial, bench_doc(&[("g/a", 100)])).expect("writable tmp");
        assert_eq!(
            check_bench(&base, Some(&partial), 50.0, &[]),
            1,
            "baseline kernel missing from current must fail"
        );
        // Extra current kernels are fine.
        assert_eq!(check_bench(&partial, Some(&base), 50.0, &[]), 0);
        let missing = dir.join("f2-check-bench-missing.json");
        let _ = std::fs::remove_file(&missing);
        assert_eq!(check_bench(&missing, Some(&base), 50.0, &[]), 2);
        let bad = dir.join("f2-check-bench-bad.json");
        std::fs::write(&bad, "{not json").expect("writable tmp");
        assert_eq!(check_bench(&bad, Some(&base), 50.0, &[]), 1);
        let wrong = dir.join("f2-check-bench-wrong-schema.json");
        std::fs::write(&wrong, "{\"schema\":\"other\",\"records\":[]}").expect("writable tmp");
        assert_eq!(check_bench(&wrong, Some(&base), 50.0, &[]), 1);
        for p in [&base, &partial, &bad, &wrong] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn compare_bench_reports_percentages() {
        let base = vec![("g/a".to_string(), 100.0)];
        let cur = vec![("g/a".to_string(), 300.0)];
        let failures = compare_bench(&base, &cur, 50.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("+200.0%"), "{}", failures[0]);
    }

    #[test]
    fn bench_subcommand_writes_a_checkable_report() {
        let dir = std::env::temp_dir();
        let out = dir.join("f2-bench-report-test.json");
        let trace = dir.join("f2-bench-trace-test.json");
        let opts = BenchOptions {
            quick: true,
            samples: 3,
            filter: Some("dna/channel".to_string()),
            threads: 1,
            out: Some(out.clone()),
            trace: Some(trace.clone()),
        };
        assert_eq!(bench(&opts), 0);
        // The report round-trips through check-bench against itself.
        assert_eq!(check_bench(&out, Some(&out), 50.0, &[]), 0);
        // The trace holds the kernel's bench span and passes validation.
        let registry = Registry::new();
        assert_eq!(check_trace(&registry, &trace, false, false, false), 0);
        let text = std::fs::read_to_string(&trace).expect("trace written");
        assert!(text.contains("bench:dna/channel"));
        // An all-excluding filter is an error.
        let none = BenchOptions {
            filter: Some("no-such-kernel".to_string()),
            out: None,
            trace: None,
            ..opts
        };
        assert_eq!(bench(&none), 1);
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn parses_serve_flags() {
        let Command::Serve(cfg) = parse_args(&args(&[
            "serve",
            "--addr",
            "127.0.0.1:9000",
            "--threads",
            "4",
            "--shards",
            "8",
            "--port-file",
            "/tmp/p.txt",
            "--log",
            "/tmp/s.jsonl",
        ]))
        .expect("parses") else {
            panic!("expected serve");
        };
        assert_eq!(cfg.addr, "127.0.0.1:9000");
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.shards, 8);
        assert_eq!(cfg.port_file, Some(PathBuf::from("/tmp/p.txt")));
        assert_eq!(cfg.log, Some(PathBuf::from("/tmp/s.jsonl")));
        // Defaults: ephemeral loopback port, standard shard count.
        let Command::Serve(cfg) = parse_args(&args(&["serve"])).expect("parses") else {
            panic!("expected serve");
        };
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.shards, f2_core::serve::cache::SHARDS);
        assert!(parse_args(&args(&["serve", "--threads", "0"])).is_err());
        assert!(parse_args(&args(&["serve", "--shards", "0"])).is_err());
        assert!(parse_args(&args(&["serve", "positional"])).is_err());
    }

    #[test]
    fn parses_loadgen_flags() {
        let Command::Loadgen(opts) = parse_args(&args(&[
            "loadgen",
            "--addr",
            "127.0.0.1:9000",
            "--rps",
            "80",
            "--duration",
            "1.5",
            "--connections",
            "2",
            "--mix",
            "cached",
            "--warmup",
            "1",
            "--wait",
            "10",
            "--out",
            "/tmp/l.json",
            "--expect-all-hits",
            "--recent",
            "/tmp/r.jsonl",
        ]))
        .expect("parses") else {
            panic!("expected loadgen");
        };
        assert_eq!(opts.addr, "127.0.0.1:9000");
        assert_eq!(opts.rps, 80.0);
        assert_eq!(opts.duration_s, 1.5);
        assert_eq!(opts.connections, 2);
        assert_eq!(opts.mix, crate::loadgen::Mix::Cached);
        assert_eq!(opts.warmup, 1);
        assert_eq!(opts.wait_s, 10.0);
        assert_eq!(opts.out, Some(PathBuf::from("/tmp/l.json")));
        assert!(opts.expect_all_hits);
        assert_eq!(opts.recent, Some(PathBuf::from("/tmp/r.jsonl")));
        assert!(!opts.shutdown);
        let Command::Loadgen(opts) = parse_args(&args(&["loadgen", "--shutdown"])).expect("parses")
        else {
            panic!("expected loadgen");
        };
        assert!(opts.shutdown);
        assert!(parse_args(&args(&["loadgen", "--rps", "0"])).is_err());
        assert!(parse_args(&args(&["loadgen", "--rps", "-3"])).is_err());
        assert!(parse_args(&args(&["loadgen", "--duration", "nope"])).is_err());
        assert!(parse_args(&args(&["loadgen", "--mix", "chaos"])).is_err());
        assert!(parse_args(&args(&["loadgen", "--wait", "-1"])).is_err());
    }

    #[test]
    fn check_passes_against_a_matching_snapshot() {
        use f2_core::experiment::{Kpi, DEFAULT_KPI_TOL};
        let dir = std::env::temp_dir().join("f2-check-test-match");
        let report = ExperimentReport {
            experiment: "demo".to_string(),
            kpis: vec![Kpi {
                name: "x".to_string(),
                value: 2.0,
                tol: DEFAULT_KPI_TOL,
            }],
        };
        golden::save(&golden::snapshot_path(&dir, "demo"), &report).expect("writable tmp");
        let line = format!("{}\n", report.to_json());
        let code = check(&mut line.as_bytes(), &dir);
        assert_eq!(code, 0);
    }
}
