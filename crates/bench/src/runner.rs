//! Implementation of the `f2` command-line runner.
//!
//! One binary drives every experiment in the registry:
//!
//! ```text
//! f2 list [--json]                 # inventory: names, tags, summaries
//! f2 run <name|tag|all> [flags]    # run a selection
//! f2 check [--golden <dir>]        # compare `--json` lines on stdin to snapshots
//! ```
//!
//! `run` flags: `--quick` (reduced problem sizes, the fidelity the golden
//! snapshots pin), `--json` (machine-readable lines instead of tables),
//! `--threads N`, `--seed N`, `--trace <out.json>` (Chrome/Perfetto trace
//! of the run) and `--metrics` (trace summary appended to the output). The
//! deprecated `F2_BENCH_JSON` environment alias still switches `--json`
//! on, and `F2_TRACE` switches `--trace` on (`F2_TRACE=1` writes
//! `f2-trace.json`, any other truthy value is used as the output path).
//!
//! `check` closes the CI loop as a plain UNIX pipe, and `check-trace`
//! validates a trace file the same way CI does:
//!
//! ```text
//! f2 run all --quick --json | f2 check
//! f2 run all --quick --trace /tmp/trace.json
//! f2 check-trace /tmp/trace.json --require-experiments
//! ```

use std::io::BufRead;
use std::path::PathBuf;

use f2_core::experiment::{golden, ExperimentCtx, ExperimentReport, Registry};
use f2_core::json::{Json, ToJson};

/// Environment variable enabling `--trace` without a flag: truthy values
/// switch tracing on; anything that is not `1`/`true` is the output path.
pub const TRACE_ENV: &str = "F2_TRACE";

/// Resolves [`TRACE_ENV`] to a trace output path, honouring the workspace
/// truthiness rule (empty, `0` and `false` mean off).
fn trace_env_path() -> Option<PathBuf> {
    let raw = std::env::var(TRACE_ENV).ok()?;
    if !golden::env_flag_enabled(&raw) {
        return None;
    }
    let trimmed = raw.trim();
    if trimmed.eq_ignore_ascii_case("1") || trimmed.eq_ignore_ascii_case("true") {
        Some(PathBuf::from("f2-trace.json"))
    } else {
        Some(PathBuf::from(trimmed))
    }
}

/// Options of the `run` subcommand.
pub struct RunOptions {
    /// Experiment name, tag, or `all`.
    pub selector: String,
    /// Reduced problem sizes (the fidelity golden snapshots pin).
    pub quick: bool,
    /// Emit machine-readable JSON lines instead of human-readable tables.
    pub json: bool,
    /// Worker threads for `ExperimentCtx::exec` sweeps.
    pub threads: usize,
    /// Root seed for all experiment randomness.
    pub seed: u64,
    /// Write a Chrome trace-event JSON of the run to this path.
    pub trace: Option<PathBuf>,
    /// Append the human-readable trace summary to the run output.
    pub metrics: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            selector: "all".to_string(),
            quick: false,
            json: crate::json_env_enabled(),
            threads: f2_core::exec::num_threads(),
            seed: f2_core::rng::DEFAULT_SEED,
            trace: trace_env_path(),
            metrics: false,
        }
    }
}

/// A parsed `f2` invocation.
pub enum Command {
    /// `f2 list [--json]`
    List {
        /// Emit the inventory as one JSON document.
        json: bool,
    },
    /// `f2 run <selector> [flags]`
    Run(RunOptions),
    /// `f2 check [--golden <dir>]`
    Check {
        /// Snapshot directory (defaults to the repo's `tests/golden`).
        golden_dir: PathBuf,
    },
    /// `f2 check-trace <file> [--require-experiments] [--require-workers]`
    CheckTrace {
        /// Trace file written by `run --trace`.
        path: PathBuf,
        /// Demand one `experiment:<name>` span per registered experiment.
        require_experiments: bool,
        /// Demand per-worker executor spans (`exec:worker`).
        require_workers: bool,
    },
}

/// The repo-local default snapshot directory, resolved at compile time.
fn default_golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
Usage: f2 <command>

Commands:
  list [--json]                      list every registered experiment
  run <name|tag|all> [flags]         run a selection of experiments
      --quick                        reduced problem sizes (snapshot fidelity)
      --json                         machine-readable JSON lines
      --threads <N>                  worker threads for sweeps
      --seed <N>                     root seed (default 0xF1A65817)
      --trace <out.json>             write a Chrome/Perfetto trace of the run
                                     (or set F2_TRACE=<path>)
      --metrics                      append the trace summary (hot spans,
                                     counters, quantiles) to the output
  check [--golden <dir>]             verify `run --json` lines piped on stdin
                                     against the golden KPI snapshots
  check-trace <file> [flags]         validate a trace written by `run --trace`
      --require-experiments          demand one span per registered experiment
      --require-workers              demand per-worker executor spans
";

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable description of the first problem.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or("missing command")?;
    match cmd.as_str() {
        "list" => {
            let mut json = false;
            for a in it {
                match a.as_str() {
                    "--json" => json = true,
                    other => return Err(format!("unknown `list` flag {other}")),
                }
            }
            Ok(Command::List { json })
        }
        "run" => {
            let mut opts = RunOptions::default();
            let mut selector = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--quick" => opts.quick = true,
                    "--json" => opts.json = true,
                    "--threads" => {
                        let v = it.next().ok_or("--threads needs a value")?;
                        opts.threads = v
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("invalid thread count {v}"))?;
                    }
                    "--seed" => {
                        let v = it.next().ok_or("--seed needs a value")?;
                        opts.seed = v.parse::<u64>().map_err(|_| format!("invalid seed {v}"))?;
                    }
                    "--trace" => {
                        opts.trace = Some(PathBuf::from(
                            it.next().ok_or("--trace needs an output path")?,
                        ));
                    }
                    "--metrics" => opts.metrics = true,
                    flag if flag.starts_with('-') => {
                        return Err(format!("unknown `run` flag {flag}"));
                    }
                    name => {
                        if selector.replace(name.to_string()).is_some() {
                            return Err("multiple selectors; pass one name, tag or `all`".into());
                        }
                    }
                }
            }
            opts.selector = selector.ok_or("missing selector: a name, tag or `all`")?;
            Ok(Command::Run(opts))
        }
        "check" => {
            let mut golden_dir = default_golden_dir();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--golden" => {
                        golden_dir = PathBuf::from(it.next().ok_or("--golden needs a value")?);
                    }
                    other => return Err(format!("unknown `check` flag {other}")),
                }
            }
            Ok(Command::Check { golden_dir })
        }
        "check-trace" => {
            let mut path = None;
            let mut require_experiments = false;
            let mut require_workers = false;
            for a in it {
                match a.as_str() {
                    "--require-experiments" => require_experiments = true,
                    "--require-workers" => require_workers = true,
                    flag if flag.starts_with('-') => {
                        return Err(format!("unknown `check-trace` flag {flag}"));
                    }
                    file => {
                        if path.replace(PathBuf::from(file)).is_some() {
                            return Err("multiple trace files; pass exactly one".into());
                        }
                    }
                }
            }
            Ok(Command::CheckTrace {
                path: path.ok_or("missing trace file: pass the `run --trace` output")?,
                require_experiments,
                require_workers,
            })
        }
        "--help" | "-h" | "help" => Err(USAGE.to_string()),
        other => Err(format!("unknown command {other}\n\n{USAGE}")),
    }
}

/// Prints the experiment inventory.
pub fn list(registry: &Registry, json: bool) {
    if json {
        let entries: Vec<Json> = registry
            .entries()
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("name".to_string(), e.name().to_json()),
                    ("summary".to_string(), e.summary().to_json()),
                    (
                        "tags".to_string(),
                        Json::Arr(e.tags().iter().map(|t| t.to_json()).collect()),
                    ),
                ])
            })
            .collect();
        println!("{}", Json::Arr(entries));
        return;
    }
    let rows: Vec<Vec<String>> = registry
        .entries()
        .iter()
        .map(|e| {
            vec![
                e.name().to_string(),
                e.tags().join(","),
                e.summary().to_string(),
            ]
        })
        .collect();
    crate::print_table(&["Experiment", "Tags", "Summary"], &rows);
    println!("\nRun one with `f2 run <name>`, a group with `f2 run <tag>`, or everything");
    println!("with `f2 run all`. Tags: {}", registry.tags().join(", "));
}

/// Runs the selected experiments; returns the process exit code.
///
/// In `--json` mode each experiment contributes its structured records
/// (`{"label": ..., "data": ...}` lines, the old `F2_BENCH_JSON` format)
/// followed by one report line (`{"experiment": ..., "kpis": [...]}`).
///
/// With `--trace`/`--metrics` a [`f2_core::trace`] session wraps the whole
/// run: each experiment gets an `experiment:<name>` span (sections and
/// executor workers nest underneath), the Chrome trace goes to the
/// `--trace` path, and `--metrics` appends the summary — to stdout in
/// human mode, to stderr in `--json` mode so report pipes stay clean.
pub fn run(registry: &Registry, opts: &RunOptions) -> u8 {
    let selected = match registry.select(&opts.selector) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("f2 run: {e}");
            eprintln!("known selectors: all, an experiment name, or one of the tags");
            eprintln!("from `f2 list`");
            return 2;
        }
    };
    let session = (opts.trace.is_some() || opts.metrics).then(f2_core::trace::session);
    let mut failures = 0;
    for exp in selected {
        let _span = f2_core::trace::span(&format!("experiment:{}", exp.name()));
        let mut ctx = if opts.json {
            ExperimentCtx::quiet(opts.seed, opts.quick, opts.threads)
        } else {
            println!("\n##### {} — {}", exp.name(), exp.summary());
            ExperimentCtx::new(opts.seed, opts.quick, opts.threads)
        };
        match exp.run(&mut ctx) {
            Ok(report) => {
                if opts.json {
                    for (label, data) in ctx.records() {
                        let doc = Json::Obj(vec![
                            ("label".to_string(), label.to_json()),
                            ("data".to_string(), data.clone()),
                        ]);
                        println!("{doc}");
                    }
                    println!("{}", report.to_json());
                }
            }
            Err(e) => {
                eprintln!("f2 run: experiment {} failed: {e}", exp.name());
                failures += 1;
            }
        }
    }
    if let Some(session) = session {
        let trace_report = session.finish();
        if opts.metrics {
            let summary = trace_report.summary();
            if opts.json {
                eprintln!("{summary}");
            } else {
                println!("{summary}");
            }
        }
        if let Some(path) = &opts.trace {
            match std::fs::write(path, trace_report.to_chrome_json().encode()) {
                Ok(()) => eprintln!(
                    "f2 run: wrote {} span(s) to {} (open in Perfetto or chrome://tracing)",
                    trace_report.spans.len(),
                    path.display()
                ),
                Err(e) => {
                    eprintln!("f2 run: cannot write trace to {}: {e}", path.display());
                    failures += 1;
                }
            }
        }
    }
    u8::from(failures > 0)
}

/// Validates a Chrome trace-event file written by `run --trace`: the JSON
/// must parse, `traceEvents` must contain at least one complete
/// (`"ph":"X"`) span, and every span must carry `name`/`ts`/`dur`/`tid`.
/// `require_experiments` additionally demands one `experiment:<name>` span
/// per registry entry; `require_workers` demands `exec:worker` spans plus at
/// least one `exec.chunk_imbalance` gauge event. Every `exec.chunk_imbalance`
/// gauge present must carry a finite value (non-finite values encode as JSON
/// `null`).
/// Returns the process exit code (0 valid, 1 invalid, 2 unreadable).
pub fn check_trace(
    registry: &Registry,
    path: &std::path::Path,
    require_experiments: bool,
    require_workers: bool,
) -> u8 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("f2 check-trace: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("f2 check-trace: {}: malformed JSON: {e}", path.display());
            return 1;
        }
    };
    let Some(events) = doc.get("traceEvents").and_then(Json::as_array) else {
        eprintln!(
            "f2 check-trace: {}: missing `traceEvents` array",
            path.display()
        );
        return 1;
    };
    let mut failures = Vec::new();
    let mut span_names = Vec::new();
    let mut imbalance_events = 0usize;
    for (i, event) in events.iter().enumerate() {
        let ph = event.get("ph").and_then(Json::as_str);
        let name = event.get("name").and_then(Json::as_str);
        // Non-finite gauge values encode as JSON `null` and would silently
        // poison downstream trace viewers — reject them here.
        if ph == Some("C") && name == Some("exec.chunk_imbalance") {
            imbalance_events += 1;
            match event
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64)
            {
                Some(v) if v.is_finite() => {}
                _ => failures.push(format!(
                    "event {i}: `exec.chunk_imbalance` value missing or non-finite"
                )),
            }
        }
        if ph != Some("X") {
            continue;
        }
        let well_formed = name.is_some()
            && event.get("ts").and_then(Json::as_f64).is_some()
            && event.get("dur").and_then(Json::as_f64).is_some()
            && event.get("tid").and_then(Json::as_f64).is_some();
        match name {
            Some(n) if well_formed => span_names.push(n.to_string()),
            _ => failures.push(format!("event {i}: span event missing name/ts/dur/tid")),
        }
    }
    if span_names.is_empty() {
        failures.push("no complete (\"ph\":\"X\") span events".to_string());
    }
    if require_experiments {
        for exp in registry.entries() {
            let want = format!("experiment:{}", exp.name());
            if !span_names.iter().any(|n| n == &want) {
                failures.push(format!("missing span `{want}`"));
            }
        }
    }
    if require_workers {
        if !span_names.iter().any(|n| n == "exec:worker") {
            failures.push("missing per-worker executor spans (`exec:worker`)".to_string());
        }
        if imbalance_events == 0 {
            failures.push("missing `exec.chunk_imbalance` gauge events".to_string());
        }
    }
    for f in &failures {
        eprintln!("f2 check-trace: {}: {f}", path.display());
    }
    if failures.is_empty() {
        eprintln!(
            "f2 check-trace: {}: {} span(s) across {} event(s), well-formed",
            path.display(),
            span_names.len(),
            events.len()
        );
        0
    } else {
        1
    }
}

/// Verifies `run --json` report lines against the golden snapshots.
///
/// Reads `input` line by line, ignores anything that is not a JSON
/// experiment report (table text, notes, record lines), and compares each
/// report against `golden_dir/<experiment>.json` with the per-KPI relative
/// tolerances stored in the snapshot. Returns the process exit code: `0`
/// when at least one report was seen and every one matched.
pub fn check(input: &mut dyn BufRead, golden_dir: &std::path::Path) -> u8 {
    let mut reports = 0usize;
    let mut failures = Vec::new();
    for line in input.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("f2 check: stdin: {e}");
                return 2;
            }
        };
        let Ok(doc) = Json::parse(&line) else {
            continue;
        };
        if doc.get("experiment").is_none() || doc.get("kpis").is_none() {
            continue;
        }
        let actual = match ExperimentReport::from_json(&doc) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("malformed report line: {e}"));
                continue;
            }
        };
        reports += 1;
        let path = golden::snapshot_path(golden_dir, &actual.experiment);
        match golden::load(&path) {
            Ok(expected) => {
                for diff in golden::compare(&expected, &actual) {
                    failures.push(format!("{}: {diff}", actual.experiment));
                }
            }
            Err(e) => failures.push(format!(
                "{}: no golden snapshot ({e}); run the golden test with F2_BLESS=1",
                actual.experiment
            )),
        }
    }
    if reports == 0 {
        eprintln!("f2 check: no report lines on stdin; pipe `f2 run <sel> --json` in");
        return 2;
    }
    for f in &failures {
        eprintln!("f2 check: {f}");
    }
    if failures.is_empty() {
        eprintln!("f2 check: {reports} report(s) matched the golden snapshots");
        0
    } else {
        eprintln!(
            "f2 check: {} failure(s) across {reports} report(s)",
            failures.len()
        );
        1
    }
}

/// Full CLI entry point used by `src/bin/f2.rs`.
pub fn main_with(registry: &Registry, args: &[String]) -> u8 {
    match parse_args(args) {
        Ok(Command::List { json }) => {
            list(registry, json);
            0
        }
        Ok(Command::Run(opts)) => run(registry, &opts),
        Ok(Command::Check { golden_dir }) => {
            let stdin = std::io::stdin();
            let mut lock = stdin.lock();
            check(&mut lock, &golden_dir)
        }
        Ok(Command::CheckTrace {
            path,
            require_experiments,
            require_workers,
        }) => check_trace(registry, &path, require_experiments, require_workers),
        Err(msg) => {
            eprintln!("{msg}");
            2
        }
    }
}

/// Entry point for the legacy one-experiment wrapper binaries: runs `name`
/// at full fidelity with default seed/threads, honouring the deprecated
/// `F2_BENCH_JSON` alias.
pub fn forward(registry: &Registry, name: &str) -> u8 {
    eprintln!("note: this binary is a thin wrapper; prefer `f2 run {name}`");
    run(
        registry,
        &RunOptions {
            selector: name.to_string(),
            ..RunOptions::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_core::experiment::Experiment;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run_flags() {
        let Command::Run(opts) = parse_args(&args(&[
            "run",
            "imc",
            "--quick",
            "--json",
            "--threads",
            "3",
            "--seed",
            "7",
            "--trace",
            "/tmp/t.json",
            "--metrics",
        ]))
        .expect("parses") else {
            panic!("expected run");
        };
        assert_eq!(opts.selector, "imc");
        assert!(opts.quick && opts.json && opts.metrics);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.trace, Some(PathBuf::from("/tmp/t.json")));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&["run"])).is_err());
        assert!(parse_args(&args(&["run", "a", "b"])).is_err());
        assert!(parse_args(&args(&["run", "a", "--threads", "0"])).is_err());
        assert!(parse_args(&args(&["run", "a", "--trace"])).is_err());
        assert!(parse_args(&args(&["check-trace"])).is_err());
        assert!(parse_args(&args(&["check-trace", "a.json", "b.json"])).is_err());
        assert!(parse_args(&args(&["check-trace", "a.json", "--nope"])).is_err());
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&[])).is_err());
    }

    #[test]
    fn parses_check_trace() {
        let Command::CheckTrace {
            path,
            require_experiments,
            require_workers,
        } = parse_args(&args(&[
            "check-trace",
            "/tmp/t.json",
            "--require-experiments",
        ]))
        .expect("parses")
        else {
            panic!("expected check-trace");
        };
        assert_eq!(path, PathBuf::from("/tmp/t.json"));
        assert!(require_experiments);
        assert!(!require_workers);
    }

    #[test]
    fn parses_list_and_check() {
        assert!(matches!(
            parse_args(&args(&["list", "--json"])),
            Ok(Command::List { json: true })
        ));
        let Command::Check { golden_dir } =
            parse_args(&args(&["check", "--golden", "/tmp/g"])).expect("parses")
        else {
            panic!("expected check");
        };
        assert_eq!(golden_dir, PathBuf::from("/tmp/g"));
    }

    #[test]
    fn check_ignores_non_report_lines_and_flags_missing_snapshots() {
        let dir = std::env::temp_dir().join("f2-check-test-missing");
        let input = b"plain text\n{\"label\":\"x\",\"data\":1}\n\
            {\"experiment\":\"ghost\",\"kpis\":[]}\n";
        let code = check(&mut &input[..], &dir);
        assert_eq!(code, 1, "missing snapshot must fail the check");
    }

    #[test]
    fn check_requires_at_least_one_report() {
        let dir = std::env::temp_dir().join("f2-check-test-empty");
        let code = check(&mut &b"no json here\n"[..], &dir);
        assert_eq!(code, 2);
    }

    /// Minimal experiment exercising sections and a parallel sweep, so a
    /// traced run produces section and `exec:worker` spans.
    struct TracedDemo;

    impl Experiment for TracedDemo {
        fn name(&self) -> &'static str {
            "traced_demo"
        }
        fn summary(&self) -> &'static str {
            "runner trace test fixture"
        }
        fn tags(&self) -> &'static [&'static str] {
            &["demo"]
        }
        fn run(&self, ctx: &mut ExperimentCtx) -> f2_core::Result<ExperimentReport> {
            ctx.section("sweep");
            let items: Vec<u64> = (0..16).collect();
            let out = ctx.exec().map(&items, |&x| x * x);
            ctx.counter_add("demo.points", out.len() as u64);
            ctx.kpi("sum", out.iter().sum::<u64>() as f64);
            Ok(ctx.report(self.name()))
        }
    }

    #[test]
    fn run_writes_a_validatable_trace() {
        let mut registry = Registry::new();
        registry.register(Box::new(TracedDemo));
        let path = std::env::temp_dir().join("f2-runner-trace-test.json");
        let opts = RunOptions {
            selector: "all".to_string(),
            quick: true,
            json: true,
            threads: 2,
            seed: 1,
            trace: Some(path.clone()),
            metrics: false,
        };
        assert_eq!(run(&registry, &opts), 0);
        // The CI validation path accepts it, including the strict flags.
        assert_eq!(check_trace(&registry, &path, true, true), 0);
        let text = std::fs::read_to_string(&path).expect("trace written");
        let doc = Json::parse(&text).expect("well-formed");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents");
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"experiment:traced_demo"));
        assert!(names.contains(&"section:sweep"));
        assert!(names.contains(&"exec:worker"));
        // The ctx counter made it into the exported counter events.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("C")
                && e.get("name").and_then(Json::as_str) == Some("demo.points")
        }));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn check_trace_rejects_missing_malformed_and_empty() {
        let registry = Registry::new();
        let dir = std::env::temp_dir();
        let missing = dir.join("f2-check-trace-missing.json");
        let _ = std::fs::remove_file(&missing);
        assert_eq!(check_trace(&registry, &missing, false, false), 2);
        let bad = dir.join("f2-check-trace-bad.json");
        std::fs::write(&bad, "{not json").expect("writable tmp");
        assert_eq!(check_trace(&registry, &bad, false, false), 1);
        let empty = dir.join("f2-check-trace-empty.json");
        std::fs::write(&empty, "{\"traceEvents\":[]}").expect("writable tmp");
        assert_eq!(check_trace(&registry, &empty, false, false), 1);
        let _ = std::fs::remove_file(&bad);
        let _ = std::fs::remove_file(&empty);
    }

    #[test]
    fn check_trace_enforces_required_spans() {
        let mut registry = Registry::new();
        registry.register(Box::new(TracedDemo));
        let path = std::env::temp_dir().join("f2-check-trace-partial.json");
        // A well-formed trace with one unrelated span: fine standalone,
        // rejected under either strict flag.
        std::fs::write(
            &path,
            "{\"traceEvents\":[{\"name\":\"other\",\"ph\":\"X\",\
             \"ts\":0,\"dur\":1,\"pid\":1,\"tid\":1}]}",
        )
        .expect("writable tmp");
        assert_eq!(check_trace(&registry, &path, false, false), 0);
        assert_eq!(check_trace(&registry, &path, true, false), 1);
        assert_eq!(check_trace(&registry, &path, false, true), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn check_trace_rejects_non_finite_imbalance_gauges() {
        let registry = Registry::new();
        let path = std::env::temp_dir().join("f2-check-trace-nan-gauge.json");
        // A NaN gauge encodes as JSON `null`; even without the strict flags
        // the validator must flag it.
        std::fs::write(
            &path,
            "{\"traceEvents\":[{\"name\":\"other\",\"ph\":\"X\",\
             \"ts\":0,\"dur\":1,\"pid\":1,\"tid\":1},\
             {\"name\":\"exec.chunk_imbalance\",\"ph\":\"C\",\"ts\":0,\
             \"pid\":1,\"tid\":1,\"args\":{\"value\":null}}]}",
        )
        .expect("writable tmp");
        assert_eq!(check_trace(&registry, &path, false, false), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn check_passes_against_a_matching_snapshot() {
        use f2_core::experiment::{Kpi, DEFAULT_KPI_TOL};
        let dir = std::env::temp_dir().join("f2-check-test-match");
        let report = ExperimentReport {
            experiment: "demo".to_string(),
            kpis: vec![Kpi {
                name: "x".to_string(),
                value: 2.0,
                tol: DEFAULT_KPI_TOL,
            }],
        };
        golden::save(&golden::snapshot_path(&dir, "demo"), &report).expect("writable tmp");
        let line = format!("{}\n", report.to_json());
        let code = check(&mut line.as_bytes(), &dir);
        assert_eq!(code, 0);
    }
}
