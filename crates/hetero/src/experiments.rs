//! This thrust's registry entries for the unified `f2` runner.

use f2_core::experiment::render::fmt;
use f2_core::experiment::{Experiment, ExperimentCtx, ExperimentReport, ParamSpec};

use crate::device::ComputeDevice;
use crate::pipeline::{run_inference, run_training, PipelineReport, PipelineSpec, Stage};
use crate::storage::StorageDevice;

fn stage_row(report: &PipelineReport) -> Vec<String> {
    let t = |s| fmt(report.stage_time(s) * 1e3, 1);
    vec![
        report.device.clone(),
        t(Stage::Load),
        t(Stage::Preprocess),
        t(Stage::Transfer),
        t(Stage::Compute),
        t(Stage::Postprocess),
        fmt(report.total_time * 1e3, 1),
        format!("{:?}", report.bottleneck()),
    ]
}

fn kpi_slug(device: &str) -> String {
    device
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// E7 / §VI — benchmarking campaign on the medical-image-segmentation DL
/// pipeline across CPU / GPU / FPGA.
///
/// Reproduces the profiling tables: per-stage times, bottleneck
/// identification, and the platform trade-off (GPU fastest training, FPGA
/// best inference energy). The analytic pipeline model is deterministic, so
/// all timings here are modelled, not wall-clock, and safe to pin as KPIs.
pub struct HeteroPipeline;

impl Experiment for HeteroPipeline {
    fn name(&self) -> &'static str {
        "hetero_pipeline"
    }

    fn summary(&self) -> &'static str {
        "E7 / §VI: CPU/GPU/FPGA profile of the segmentation DL pipeline"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["e7", "hetero"]
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![ParamSpec::u64(
            "num_samples",
            "campaign samples through the pipeline (default: segmentation spec)",
        )]
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> f2_core::Result<ExperimentReport> {
        let mut spec = PipelineSpec::segmentation_default();
        spec.num_samples = ctx.param_u64("num_samples", spec.num_samples);
        let nvme = StorageDevice::nvme_ssd();
        ctx.note(&format!(
            "Workload: {} ({} MACs/sample), {} samples of {:.1} KB",
            spec.model.name(),
            spec.model.total_macs(),
            spec.num_samples,
            spec.sample_bytes / 1e3
        ));

        ctx.section("Training epoch profile per device (ms, NVMe storage)");
        let training_phase = ctx.span("hetero:training_profile");
        // Device profiles are independent analytic models with very
        // different costs — run the campaign on the shared executor pool.
        let trainers: Vec<ComputeDevice> = ComputeDevice::campaign()
            .into_iter()
            .filter(|d| d.trains)
            .collect();
        let reports = ctx.exec().map(&trainers, |d| run_training(&spec, d, &nvme));
        let mut rows = Vec::new();
        for r in &reports {
            ctx.counter("hetero.pipeline_runs");
            ctx.kpi(
                &format!("training/{}_epoch_ms", kpi_slug(&r.device)),
                r.total_time * 1e3,
            );
            rows.push(stage_row(r));
        }
        ctx.table(
            &[
                "Device",
                "Load",
                "Preproc",
                "Xfer",
                "Compute",
                "Postproc",
                "Total",
                "Bottleneck",
            ],
            &rows,
        );

        drop(training_phase);
        ctx.section("Inference profile per device (ms for the campaign, NVMe)");
        let _phase = ctx.span("hetero:inference_profile");
        let devices = ComputeDevice::campaign();
        let reports = ctx.exec().map(&devices, |d| run_inference(&spec, d, &nvme));
        let mut rows = Vec::new();
        for r in &reports {
            ctx.counter("hetero.pipeline_runs");
            ctx.kpi(
                &format!("inference/{}_samples_per_s", kpi_slug(&r.device)),
                r.throughput,
            );
            ctx.kpi(
                &format!("inference/{}_energy_j", kpi_slug(&r.device)),
                r.energy.value(),
            );
            let mut row = stage_row(r);
            row.push(fmt(r.throughput, 0));
            row.push(fmt(r.energy.value(), 1));
            rows.push(row);
        }
        ctx.table(
            &[
                "Device",
                "Load",
                "Preproc",
                "Xfer",
                "Compute",
                "Postproc",
                "Total",
                "Bottleneck",
                "Samples/s",
                "Energy J",
            ],
            &rows,
        );
        ctx.note("\nShape check: GPU wins training time; FPGA wins inference energy;");
        ctx.note("fast accelerators expose the I/O path as the bottleneck (§VI).");
        Ok(ctx.report(self.name()))
    }
}

/// E8 / §VI — I/O-path optimisation with computational storage, persistent
/// memory and low-latency SSDs.
///
/// Reproduces: "a training time reduction of up to 10% and inference
/// throughput improvement of up to 10%" from the computational-storage
/// path, plus the wider storage ladder.
pub struct StorageIo;

impl Experiment for StorageIo {
    fn name(&self) -> &'static str {
        "storage_io"
    }

    fn summary(&self) -> &'static str {
        "E8 / §VI: storage ladder and the computational-storage ~10% claims"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["e8", "hetero", "storage"]
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![ParamSpec::u64(
            "num_samples",
            "samples through the I/O path (default: segmentation spec)",
        )]
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> f2_core::Result<ExperimentReport> {
        let mut spec = PipelineSpec::segmentation_default();
        spec.num_samples = ctx.param_u64("num_samples", spec.num_samples);
        let gpu = ComputeDevice::datacenter_gpu();
        let fpga = ComputeDevice::fpga_card();
        let base_train = run_training(&spec, &gpu, &StorageDevice::nvme_ssd());
        let base_infer = run_inference(&spec, &fpga, &StorageDevice::nvme_ssd());

        ctx.section("GPU training epoch vs storage device");
        let training_phase = ctx.span("storage:training_ladder");
        let mut rows = Vec::new();
        for s in StorageDevice::io_path_candidates() {
            let r = run_training(&spec, &gpu, &s);
            let gain_pct = (1.0 - r.total_time / base_train.total_time) * 100.0;
            ctx.kpi(
                &format!("training/{}_gain_pct", kpi_slug(&s.name)),
                gain_pct,
            );
            rows.push(vec![
                s.name.clone(),
                fmt(r.total_time * 1e3, 1),
                fmt(gain_pct, 1),
            ]);
        }
        ctx.table(&["Storage", "Epoch ms", "vs NVMe %"], &rows);

        drop(training_phase);
        ctx.section("FPGA inference throughput vs storage device");
        let _phase = ctx.span("storage:inference_ladder");
        let mut rows = Vec::new();
        for s in StorageDevice::io_path_candidates() {
            let r = run_inference(&spec, &fpga, &s);
            let gain_pct = (r.throughput / base_infer.throughput - 1.0) * 100.0;
            ctx.kpi(
                &format!("inference/{}_gain_pct", kpi_slug(&s.name)),
                gain_pct,
            );
            rows.push(vec![s.name.clone(), fmt(r.throughput, 0), fmt(gain_pct, 1)]);
        }
        ctx.table(&["Storage", "Samples/s", "vs NVMe %"], &rows);
        ctx.note("\nShape check: computational storage buys ~10% on both paths —");
        ctx.note("the §VI 'up to 10%' claims.");
        Ok(ctx.report(self.name()))
    }
}

/// This crate's experiments, for registry assembly.
pub fn experiments() -> Vec<Box<dyn Experiment>> {
    vec![Box::new(HeteroPipeline), Box::new(StorageIo)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_pipeline_emits_device_kpis() {
        let mut ctx = ExperimentCtx::quiet(f2_core::rng::DEFAULT_SEED, true, 1);
        let report = HeteroPipeline.run(&mut ctx).expect("runs");
        assert!(!report.kpis.is_empty());
        assert!(report
            .kpis
            .iter()
            .any(|k| k.name.starts_with("inference/") && k.name.ends_with("_energy_j")));
    }

    #[test]
    fn storage_io_reproduces_ten_percent_claims() {
        let mut ctx = ExperimentCtx::quiet(f2_core::rng::DEFAULT_SEED, true, 1);
        let report = StorageIo.run(&mut ctx).expect("runs");
        // The §VI "up to 10%" claims are about computational storage
        // specifically (PMem sits much higher on the ladder).
        for path in ["training", "inference"] {
            let gain = report
                .kpi(&format!("{path}/computational_ssd_gain_pct"))
                .expect("kpi");
            assert!(
                gain > 2.0 && gain < 15.0,
                "computational storage {path} gain in the ~10% band (got {gain})"
            );
        }
    }
}
