//! Compute-device models for the §VI benchmarking campaign.
//!
//! Each device is a roofline (peak throughput + memory bandwidth) plus a
//! host-link bandwidth and power figures, calibrated to the platform classes
//! the paper profiles: a server CPU, a data-center GPU and an FPGA
//! accelerator card. Training and inference peaks differ (FPGAs in the
//! campaign accelerate inference only; their training figure is the host
//! fallback).

use f2_core::kpi::{GigabytesPerSecond, Watts};
use f2_core::roofline::Roofline;
use std::fmt;

/// Platform class of a compute device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// General-purpose server CPU.
    Cpu,
    /// Data-center GPU.
    Gpu,
    /// FPGA accelerator card.
    Fpga,
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceClass::Cpu => "CPU",
            DeviceClass::Gpu => "GPU",
            DeviceClass::Fpga => "FPGA",
        };
        f.write_str(s)
    }
}

/// A compute device in the heterogeneous node.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeDevice {
    /// Device name.
    pub name: String,
    /// Platform class.
    pub class: DeviceClass,
    /// Roofline for training-precision math (FP32-class).
    pub train_roofline: Roofline,
    /// Roofline for inference-precision math (INT8/FP16-class).
    pub infer_roofline: Roofline,
    /// Host link (PCIe) bandwidth.
    pub host_link: GigabytesPerSecond,
    /// Board/package power at load.
    pub power: Watts,
    /// True if the device can execute the training phase at all.
    pub trains: bool,
}

impl ComputeDevice {
    /// A 2-socket server CPU (AVX-512 class).
    pub fn server_cpu() -> Self {
        Self {
            name: "2x Xeon 8380".to_string(),
            class: DeviceClass::Cpu,
            train_roofline: Roofline::new(4.0e12, 300e9),
            infer_roofline: Roofline::new(8.0e12, 300e9),
            host_link: GigabytesPerSecond::new(300.0), // it *is* the host
            power: Watts::new(540.0),
            trains: true,
        }
    }

    /// A data-center GPU (A100 class).
    pub fn datacenter_gpu() -> Self {
        Self {
            name: "A100-80GB".to_string(),
            class: DeviceClass::Gpu,
            train_roofline: Roofline::new(156e12, 2.0e12), // TF32 tensor core
            infer_roofline: Roofline::new(624e12, 2.0e12), // INT8
            host_link: GigabytesPerSecond::new(32.0),      // PCIe 4.0 x16
            power: Watts::new(400.0),
            trains: true,
        }
    }

    /// An FPGA accelerator card (Alveo class, inference only).
    pub fn fpga_card() -> Self {
        Self {
            name: "Alveo U280".to_string(),
            class: DeviceClass::Fpga,
            train_roofline: Roofline::new(1.0e12, 460e9), // host fallback rate
            infer_roofline: Roofline::new(24e12, 460e9),  // INT8 DSP fabric
            host_link: GigabytesPerSecond::new(16.0),
            power: Watts::new(60.0),
            trains: false,
        }
    }

    /// The three campaign devices.
    pub fn campaign() -> Vec<ComputeDevice> {
        vec![
            Self::server_cpu(),
            Self::datacenter_gpu(),
            Self::fpga_card(),
        ]
    }

    /// Time (s) to execute `flops` of work at operational intensity `oi`
    /// (FLOP/byte) in the given phase.
    pub fn compute_time(&self, flops: f64, oi: f64, phase: Phase) -> f64 {
        let roof = match phase {
            Phase::Training => &self.train_roofline,
            Phase::Inference => &self.infer_roofline,
        };
        flops / roof.attainable(oi)
    }

    /// Time (s) to move `bytes` over the host link.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        bytes / (self.host_link.value() * 1e9)
    }
}

/// Pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Model training (forward + backward, high precision).
    Training,
    /// Model inference (forward only, reduced precision).
    Inference,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_fastest_at_compute_bound_work() {
        let flops = 1e15;
        let oi = 1e4; // compute bound
        let cpu = ComputeDevice::server_cpu().compute_time(flops, oi, Phase::Training);
        let gpu = ComputeDevice::datacenter_gpu().compute_time(flops, oi, Phase::Training);
        assert!(gpu < cpu / 10.0, "GPU should train >10x faster");
    }

    #[test]
    fn fpga_is_efficient_at_inference() {
        // Inference ops per joule.
        let fpga = ComputeDevice::fpga_card();
        let gpu = ComputeDevice::datacenter_gpu();
        let fpga_eff = fpga.infer_roofline.peak_ops() / fpga.power.value();
        let gpu_eff = gpu.infer_roofline.peak_ops() / gpu.power.value();
        // The paper's framing: FPGAs favour energy efficiency on
        // resource-constrained inference; per-watt they are competitive even
        // against the GPU's INT8 peak at realistic (memory-bound) intensity.
        let oi = 50.0;
        let fpga_real = fpga.infer_roofline.attainable(oi) / fpga.power.value();
        let gpu_real = gpu.infer_roofline.attainable(oi) / gpu.power.value();
        assert!(
            fpga_real > gpu_real,
            "FPGA {fpga_real:.2e} vs GPU {gpu_real:.2e} ops/J at oi={oi}"
        );
        // At unconstrained peak the GPU wins raw throughput.
        assert!(gpu_eff > fpga_eff / 10.0);
    }

    #[test]
    fn transfer_time_uses_host_link() {
        let gpu = ComputeDevice::datacenter_gpu();
        let t = gpu.transfer_time(32e9);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fpga_does_not_train() {
        assert!(!ComputeDevice::fpga_card().trains);
        assert!(ComputeDevice::server_cpu().trains);
    }

    #[test]
    fn campaign_has_three_classes() {
        let devs = ComputeDevice::campaign();
        assert_eq!(devs.len(), 3);
        let classes: std::collections::HashSet<_> = devs.iter().map(|d| d.class).collect();
        assert_eq!(classes.len(), 3);
    }
}
