//! Error type for the heterogeneous-platform crate.

use std::error::Error;
use std::fmt;

/// Error raised by pipeline modelling.
#[derive(Debug, Clone, PartialEq)]
pub enum HeteroError {
    /// A pipeline or device parameter is out of range.
    InvalidParameter(String),
}

impl fmt::Display for HeteroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeteroError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for HeteroError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn check<T: Send + Sync + Error>() {}
        check::<HeteroError>();
        assert!(HeteroError::InvalidParameter("x".into())
            .to_string()
            .contains('x'));
    }
}
