//! The Fig. 5 end-to-end DL pipeline simulator.
//!
//! §VI: "the overall performance and energy efficiency of typical AI
//! applications … are contingent on optimizations applied across the
//! complete software/hardware stack, as well as on the refinement of the
//! end-to-end data flow between the data host and the accelerator."
//!
//! The simulator executes the medical-image-segmentation flow stage by
//! stage: **load** (storage media + request latency) → **preprocess**
//! (host-side, minus any in-storage offload) → **transfer** (host link) →
//! **compute** (device roofline) → **postprocess**. Training epochs overlap
//! the I/O path with compute up to an overlap efficiency; single-stream
//! inference (the clinical deployment mode) accumulates stage latencies.

use crate::device::{ComputeDevice, Phase};
use crate::storage::StorageDevice;
use f2_core::kpi::Joules;
use f2_core::workload::dnn::{segmentation_unet, DnnModel};

/// Workload and modelling parameters of one pipeline campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    /// The DNN under study.
    pub model: DnnModel,
    /// Bytes of one stored sample (e.g. one CT slice).
    pub sample_bytes: f64,
    /// Samples per epoch / inference batch campaign.
    pub num_samples: u64,
    /// Training epochs.
    pub epochs: u32,
    /// Host preprocessing cost (FLOP per stored byte).
    pub preprocess_flops_per_byte: f64,
    /// Host postprocessing cost (FLOP per sample).
    pub postprocess_flops_per_sample: f64,
    /// Effective host scalar throughput for pre/post processing (FLOP/s).
    pub host_flops: f64,
    /// Operational intensity of the training kernels (FLOP/byte).
    pub train_oi: f64,
    /// Operational intensity of the inference kernels (FLOP/byte).
    pub infer_oi: f64,
    /// Fraction of the shorter of {I/O path, compute} hidden by
    /// double-buffered overlap during training.
    pub overlap: f64,
}

impl PipelineSpec {
    /// The §VI campaign: U-Net-class segmentation of 512×512 CT slices
    /// (~0.5 MB/sample), 8192 slices per epoch.
    pub fn segmentation_default() -> Self {
        Self {
            model: segmentation_unet(256, 256).expect("static dims are valid"),
            sample_bytes: 0.5e6,
            num_samples: 8192,
            epochs: 1,
            preprocess_flops_per_byte: 2.0,
            postprocess_flops_per_sample: 1e6,
            host_flops: 5e10,
            train_oi: 8.0,
            infer_oi: 20.0,
            overlap: 0.6,
        }
    }

    /// Forward FLOPs of one sample (2 FLOPs per MAC).
    pub fn flops_per_sample_infer(&self) -> f64 {
        2.0 * self.model.total_macs() as f64
    }

    /// Training FLOPs of one sample (forward + backward ≈ 3× forward).
    pub fn flops_per_sample_train(&self) -> f64 {
        3.0 * self.flops_per_sample_infer()
    }

    /// Total stored dataset bytes.
    pub fn dataset_bytes(&self) -> f64 {
        self.sample_bytes * self.num_samples as f64
    }
}

/// Stages of the end-to-end flow (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Read from storage media.
    Load,
    /// Host-side decode/normalise.
    Preprocess,
    /// Host → accelerator transfer.
    Transfer,
    /// Train/infer kernels on the device.
    Compute,
    /// Host-side postprocessing.
    Postprocess,
}

/// Per-stage timing report of one pipeline execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Device the compute phase ran on.
    pub device: String,
    /// Storage the data came from.
    pub storage: String,
    /// Stage times in seconds (unoverlapped view).
    pub stage_times: Vec<(Stage, f64)>,
    /// End-to-end time with overlap applied (s).
    pub total_time: f64,
    /// Energy estimate over the run.
    pub energy: Joules,
    /// Sustained samples per second.
    pub throughput: f64,
}

impl PipelineReport {
    /// The stage with the largest unoverlapped time.
    pub fn bottleneck(&self) -> Stage {
        self.stage_times
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("times are finite"))
            .map(|&(s, _)| s)
            .expect("stage list is never empty")
    }

    /// Time of one stage.
    pub fn stage_time(&self, stage: Stage) -> f64 {
        self.stage_times
            .iter()
            .find(|&&(s, _)| s == stage)
            .map(|&(_, t)| t)
            .unwrap_or(0.0)
    }
}

fn stage_times(
    spec: &PipelineSpec,
    device: &ComputeDevice,
    storage: &StorageDevice,
    phase: Phase,
) -> Vec<(Stage, f64)> {
    let stored = spec.dataset_bytes();
    let host_bytes = storage.host_visible_bytes(stored);
    let load = storage.read_time(stored, spec.num_samples);
    let prep_flops = stored * spec.preprocess_flops_per_byte * (1.0 - storage.preprocess_offload);
    let preprocess = prep_flops / spec.host_flops;
    // The CPU *is* the host: no transfer stage for it.
    let transfer = if device.class == crate::device::DeviceClass::Cpu {
        0.0
    } else {
        device.transfer_time(host_bytes)
    };
    let flops = match phase {
        Phase::Training => spec.flops_per_sample_train(),
        Phase::Inference => spec.flops_per_sample_infer(),
    } * spec.num_samples as f64;
    let oi = match phase {
        Phase::Training => spec.train_oi,
        Phase::Inference => spec.infer_oi,
    };
    let compute = device.compute_time(flops, oi, phase);
    let post = spec.postprocess_flops_per_sample * spec.num_samples as f64 / spec.host_flops;
    vec![
        (Stage::Load, load),
        (Stage::Preprocess, preprocess),
        (Stage::Transfer, transfer),
        (Stage::Compute, compute),
        (Stage::Postprocess, post),
    ]
}

/// Simulates training: epochs of double-buffered I/O-path/compute overlap.
pub fn run_training(
    spec: &PipelineSpec,
    device: &ComputeDevice,
    storage: &StorageDevice,
) -> PipelineReport {
    let times = stage_times(spec, device, storage, Phase::Training);
    let io_path: f64 = times
        .iter()
        .filter(|(s, _)| matches!(s, Stage::Load | Stage::Preprocess | Stage::Transfer))
        .map(|&(_, t)| t)
        .sum();
    let compute = times
        .iter()
        .find(|(s, _)| *s == Stage::Compute)
        .map(|&(_, t)| t)
        .expect("compute stage present");
    let post = times
        .iter()
        .find(|(s, _)| *s == Stage::Postprocess)
        .map(|&(_, t)| t)
        .expect("postprocess stage present");
    let epoch = io_path.max(compute) + (1.0 - spec.overlap) * io_path.min(compute) + post;
    let total = epoch * spec.epochs as f64;
    let energy = f2_core::kpi::Watts::new(device.power.value()) * f2_core::kpi::Seconds::new(total)
        + f2_core::kpi::Watts::new(storage.power.value())
            * f2_core::kpi::Seconds::new(times[0].1 * spec.epochs as f64);
    PipelineReport {
        device: device.name.clone(),
        storage: storage.name.clone(),
        stage_times: times,
        total_time: total,
        energy,
        throughput: spec.num_samples as f64 * spec.epochs as f64 / total,
    }
}

/// Simulates single-stream inference over the campaign's samples: per-sample
/// latency is the sum of the stage latencies (the clinical deployment mode),
/// so throughput is `1 / per-sample latency`.
pub fn run_inference(
    spec: &PipelineSpec,
    device: &ComputeDevice,
    storage: &StorageDevice,
) -> PipelineReport {
    let times = stage_times(spec, device, storage, Phase::Inference);
    let per_sample: f64 = times.iter().map(|&(_, t)| t).sum::<f64>() / spec.num_samples as f64;
    let total = per_sample * spec.num_samples as f64;
    let energy = f2_core::kpi::Watts::new(device.power.value()) * f2_core::kpi::Seconds::new(total)
        + f2_core::kpi::Watts::new(storage.power.value()) * f2_core::kpi::Seconds::new(times[0].1);
    PipelineReport {
        device: device.name.clone(),
        storage: storage.name.clone(),
        stage_times: times,
        total_time: total,
        energy,
        throughput: 1.0 / per_sample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PipelineSpec {
        PipelineSpec::segmentation_default()
    }

    #[test]
    fn gpu_trains_faster_than_cpu() {
        let s = spec();
        let nvme = StorageDevice::nvme_ssd();
        let gpu = run_training(&s, &ComputeDevice::datacenter_gpu(), &nvme);
        let cpu = run_training(&s, &ComputeDevice::server_cpu(), &nvme);
        assert!(
            gpu.total_time < cpu.total_time / 2.0,
            "gpu {:.2}s vs cpu {:.2}s",
            gpu.total_time,
            cpu.total_time
        );
    }

    #[test]
    fn fpga_has_best_inference_energy() {
        let s = spec();
        let nvme = StorageDevice::nvme_ssd();
        let fpga = run_inference(&s, &ComputeDevice::fpga_card(), &nvme);
        let gpu = run_inference(&s, &ComputeDevice::datacenter_gpu(), &nvme);
        let cpu = run_inference(&s, &ComputeDevice::server_cpu(), &nvme);
        assert!(
            fpga.energy.value() < gpu.energy.value(),
            "fpga {:.1} J vs gpu {:.1} J",
            fpga.energy.value(),
            gpu.energy.value()
        );
        assert!(fpga.energy.value() < cpu.energy.value());
    }

    #[test]
    fn io_becomes_bottleneck_on_fast_accelerators() {
        let s = spec();
        let gpu = run_training(
            &s,
            &ComputeDevice::datacenter_gpu(),
            &StorageDevice::sata_ssd(),
        );
        assert_eq!(gpu.bottleneck(), Stage::Load, "{:?}", gpu.stage_times);
        // On the slow CPU compute dominates instead.
        let cpu = run_training(&s, &ComputeDevice::server_cpu(), &StorageDevice::nvme_ssd());
        assert_eq!(cpu.bottleneck(), Stage::Compute);
    }

    #[test]
    fn computational_storage_training_gain_near_10pct() {
        // §VI: "a training time reduction of up to 10%".
        let s = spec();
        let gpu = ComputeDevice::datacenter_gpu();
        let base = run_training(&s, &gpu, &StorageDevice::nvme_ssd());
        let cs = run_training(&s, &gpu, &StorageDevice::computational_storage());
        let gain = 1.0 - cs.total_time / base.total_time;
        assert!(
            (0.02..=0.15).contains(&gain),
            "training time reduction {gain:.3} should be in the 'up to 10%' band"
        );
    }

    #[test]
    fn computational_storage_inference_gain_near_10pct() {
        // §VI: "inference throughput improvement of up to 10%".
        let s = spec();
        let fpga = ComputeDevice::fpga_card();
        let base = run_inference(&s, &fpga, &StorageDevice::nvme_ssd());
        let cs = run_inference(&s, &fpga, &StorageDevice::computational_storage());
        let gain = cs.throughput / base.throughput - 1.0;
        assert!(
            (0.02..=0.2).contains(&gain),
            "inference throughput gain {gain:.3} should be in the 'up to 10%' band"
        );
    }

    #[test]
    fn pmem_beats_sata_dramatically_on_io() {
        let s = spec();
        let gpu = ComputeDevice::datacenter_gpu();
        let sata = run_training(&s, &gpu, &StorageDevice::sata_ssd());
        let pmem = run_training(&s, &gpu, &StorageDevice::persistent_memory());
        assert!(pmem.total_time < sata.total_time / 2.0);
        assert!(pmem.stage_time(Stage::Load) < sata.stage_time(Stage::Load) / 10.0);
    }

    #[test]
    fn epochs_scale_training_linearly() {
        let mut s = spec();
        let gpu = ComputeDevice::datacenter_gpu();
        let one = run_training(&s, &gpu, &StorageDevice::nvme_ssd());
        s.epochs = 4;
        let four = run_training(&s, &gpu, &StorageDevice::nvme_ssd());
        assert!((four.total_time / one.total_time - 4.0).abs() < 1e-9);
    }

    #[test]
    fn report_accessors() {
        let s = spec();
        let r = run_training(
            &s,
            &ComputeDevice::datacenter_gpu(),
            &StorageDevice::nvme_ssd(),
        );
        assert!(r.stage_time(Stage::Load) > 0.0);
        assert!(r.throughput > 0.0);
        assert_eq!(r.stage_times.len(), 5);
    }
}

impl f2_core::json::ToJson for Stage {
    /// Stages serialise as their name.
    fn to_json(&self) -> f2_core::json::Json {
        f2_core::json::Json::Str(format!("{self:?}"))
    }
}

f2_core::impl_to_json!(PipelineReport {
    device,
    storage,
    stage_times,
    total_time,
    energy,
    throughput,
});
