//! The §VI benchmarking campaign: a structured sweep over devices and
//! storage configurations.
//!
//! "We conducted a benchmarking campaign on a relevant DL model for medical
//! image segmentation by using the most appropriate profiling tools for CPU,
//! GPU, and FPGA architectures in different stages of the DL pipeline …
//! The results are a reference point for future optimization and trade-off
//! analysis." [`run_campaign`] produces that reference point as data:
//! every device × storage × phase combination with totals, bottlenecks and
//! energy, plus the query helpers the trade-off analysis needs.

use crate::device::{ComputeDevice, Phase};
use crate::pipeline::{run_inference, run_training, PipelineReport, PipelineSpec, Stage};
use crate::storage::StorageDevice;

/// One campaign measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignEntry {
    /// Pipeline phase.
    pub phase: Phase,
    /// Device name.
    pub device: String,
    /// Whether the device class can run this phase natively.
    pub native: bool,
    /// Storage name.
    pub storage: String,
    /// The full per-stage report.
    pub report: PipelineReport,
}

/// The complete campaign result set.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// All measurements.
    pub entries: Vec<CampaignEntry>,
}

impl Campaign {
    /// Entries of one phase.
    pub fn phase(&self, phase: Phase) -> impl Iterator<Item = &CampaignEntry> {
        self.entries.iter().filter(move |e| e.phase == phase)
    }

    /// The fastest entry of a phase (minimum total time), if any.
    pub fn fastest(&self, phase: Phase) -> Option<&CampaignEntry> {
        self.phase(phase).min_by(|a, b| {
            a.report
                .total_time
                .partial_cmp(&b.report.total_time)
                .expect("times are finite")
        })
    }

    /// The most energy-efficient entry of a phase, if any.
    pub fn most_efficient(&self, phase: Phase) -> Option<&CampaignEntry> {
        self.phase(phase).min_by(|a, b| {
            a.report
                .energy
                .value()
                .partial_cmp(&b.report.energy.value())
                .expect("energies are finite")
        })
    }

    /// Histogram of bottleneck stages across the campaign.
    pub fn bottleneck_histogram(&self) -> Vec<(Stage, usize)> {
        let mut counts: std::collections::BTreeMap<u8, (Stage, usize)> = Default::default();
        for e in &self.entries {
            let s = e.report.bottleneck();
            let key = s as u8;
            counts.entry(key).or_insert((s, 0)).1 += 1;
        }
        counts.into_values().collect()
    }

    /// Best storage (by total time) for a given device and phase.
    pub fn best_storage_for(&self, device: &str, phase: Phase) -> Option<&CampaignEntry> {
        self.phase(phase)
            .filter(|e| e.device == device)
            .min_by(|a, b| {
                a.report
                    .total_time
                    .partial_cmp(&b.report.total_time)
                    .expect("times are finite")
            })
    }
}

/// Runs the full cross product: every campaign device × every I/O-path
/// candidate × both phases. Devices that cannot train are recorded with
/// `native = false` for the training phase (they fall back to the host
/// path, as the real campaign did).
pub fn run_campaign(spec: &PipelineSpec) -> Campaign {
    let mut entries = Vec::new();
    for device in ComputeDevice::campaign() {
        for storage in StorageDevice::io_path_candidates() {
            entries.push(CampaignEntry {
                phase: Phase::Training,
                device: device.name.clone(),
                native: device.trains,
                storage: storage.name.clone(),
                report: run_training(spec, &device, &storage),
            });
            entries.push(CampaignEntry {
                phase: Phase::Inference,
                device: device.name.clone(),
                native: true,
                storage: storage.name.clone(),
                report: run_inference(spec, &device, &storage),
            });
        }
    }
    Campaign { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign() -> Campaign {
        run_campaign(&PipelineSpec::segmentation_default())
    }

    #[test]
    fn covers_full_cross_product() {
        let c = campaign();
        // 3 devices × 5 storage × 2 phases.
        assert_eq!(c.entries.len(), 30);
    }

    #[test]
    fn gpu_wins_training_fpga_wins_inference_energy() {
        let c = campaign();
        let fastest_training = c.fastest(Phase::Training).expect("entries");
        assert!(
            fastest_training.device.contains("A100"),
            "fastest training on {}",
            fastest_training.device
        );
        let best_energy = c.most_efficient(Phase::Inference).expect("entries");
        assert!(
            best_energy.device.contains("Alveo"),
            "best inference energy on {}",
            best_energy.device
        );
    }

    #[test]
    fn bottleneck_histogram_nonempty_and_mixed() {
        let c = campaign();
        let hist = c.bottleneck_histogram();
        let total: usize = hist.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 30);
        assert!(
            hist.len() >= 2,
            "expected multiple bottleneck kinds: {hist:?}"
        );
    }

    #[test]
    fn best_storage_is_fast_for_gpu_training() {
        let c = campaign();
        let best = c
            .best_storage_for("A100-80GB", Phase::Training)
            .expect("entries");
        assert!(
            best.storage == "PMem"
                || best.storage.contains("Computational")
                || best.storage.contains("Low-latency"),
            "unexpected best storage {}",
            best.storage
        );
    }

    #[test]
    fn non_training_devices_flagged() {
        let c = campaign();
        let fpga_training: Vec<_> = c
            .phase(Phase::Training)
            .filter(|e| e.device.contains("Alveo"))
            .collect();
        assert!(!fpga_training.is_empty());
        assert!(fpga_training.iter().all(|e| !e.native));
    }
}
