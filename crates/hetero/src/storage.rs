//! Storage-device models, including computational storage.
//!
//! §VI: "we started improving the end-to-end performance in DL by addressing
//! the I/O path with the adoption of custom solutions such as the one in
//! \[23\] based on the Computational Storage paradigm and even prospecting the
//! use of advanced memory devices such as Persistent Memory modules or
//! low-latency SSDs."
//!
//! A [`StorageDevice`] supplies read bandwidth and access latency; a
//! computational-storage device additionally executes part of the
//! preprocessing *inside the drive* (the FPGA-augmented enterprise SSD of
//! \[23\]), shrinking both the bytes crossing the host interface and the
//! host-side preprocessing work.

use f2_core::kpi::{GigabytesPerSecond, Watts};

/// Kind of storage device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageKind {
    /// SATA SSD.
    SataSsd,
    /// NVMe SSD.
    NvmeSsd,
    /// Low-latency (Optane-class) SSD.
    LowLatencySsd,
    /// Persistent-memory modules on the memory bus.
    PersistentMemory,
    /// NVMe SSD with an in-drive FPGA preprocessing engine.
    ComputationalStorage,
}

/// A storage device in the I/O path.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageDevice {
    /// Device name.
    pub name: String,
    /// Device kind.
    pub kind: StorageKind,
    /// Sequential read bandwidth.
    pub read_bandwidth: GigabytesPerSecond,
    /// Per-request access latency (s).
    pub access_latency: f64,
    /// Device power at load.
    pub power: Watts,
    /// Fraction of preprocessing offloaded into the drive (0 for passive
    /// devices).
    pub preprocess_offload: f64,
    /// Data-reduction factor of in-storage preprocessing (bytes leaving the
    /// drive divided by bytes stored; 1.0 for passive devices).
    pub output_ratio: f64,
}

impl StorageDevice {
    /// SATA SSD baseline.
    pub fn sata_ssd() -> Self {
        Self {
            name: "SATA SSD".to_string(),
            kind: StorageKind::SataSsd,
            read_bandwidth: GigabytesPerSecond::new(0.55),
            access_latency: 80e-6,
            power: Watts::new(4.0),
            preprocess_offload: 0.0,
            output_ratio: 1.0,
        }
    }

    /// Enterprise NVMe SSD.
    pub fn nvme_ssd() -> Self {
        Self {
            name: "NVMe SSD".to_string(),
            kind: StorageKind::NvmeSsd,
            read_bandwidth: GigabytesPerSecond::new(6.8),
            access_latency: 12e-6,
            power: Watts::new(12.0),
            preprocess_offload: 0.0,
            output_ratio: 1.0,
        }
    }

    /// Low-latency SSD (Optane-class).
    pub fn low_latency_ssd() -> Self {
        Self {
            name: "Low-latency SSD".to_string(),
            kind: StorageKind::LowLatencySsd,
            read_bandwidth: GigabytesPerSecond::new(7.2),
            access_latency: 4e-6,
            power: Watts::new(14.0),
            preprocess_offload: 0.0,
            output_ratio: 1.0,
        }
    }

    /// Persistent memory on the DDR bus.
    pub fn persistent_memory() -> Self {
        Self {
            name: "PMem".to_string(),
            kind: StorageKind::PersistentMemory,
            read_bandwidth: GigabytesPerSecond::new(38.0),
            access_latency: 0.3e-6,
            power: Watts::new(15.0),
            preprocess_offload: 0.0,
            output_ratio: 1.0,
        }
    }

    /// Computational-storage SSD: NVMe media plus an in-drive FPGA that
    /// decodes/normalises samples before they cross the host interface \[23\].
    pub fn computational_storage() -> Self {
        Self {
            name: "Computational SSD".to_string(),
            kind: StorageKind::ComputationalStorage,
            read_bandwidth: GigabytesPerSecond::new(6.8),
            access_latency: 12e-6,
            power: Watts::new(18.0),
            preprocess_offload: 0.5,
            output_ratio: 0.8,
        }
    }

    /// All I/O-path candidates evaluated in §VI.
    pub fn io_path_candidates() -> Vec<StorageDevice> {
        vec![
            Self::sata_ssd(),
            Self::nvme_ssd(),
            Self::low_latency_ssd(),
            Self::persistent_memory(),
            Self::computational_storage(),
        ]
    }

    /// Time (s) to read `bytes` of stored data as `requests` requests,
    /// including the in-drive reduction for computational storage (the host
    /// receives `bytes × output_ratio`).
    pub fn read_time(&self, bytes: f64, requests: u64) -> f64 {
        let media = bytes / (self.read_bandwidth.value() * 1e9);
        media + requests as f64 * self.access_latency
    }

    /// Bytes that actually cross the host interface when `bytes` are read.
    pub fn host_visible_bytes(&self, bytes: f64) -> f64 {
        bytes * self.output_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_ladder() {
        let sata = StorageDevice::sata_ssd();
        let nvme = StorageDevice::nvme_ssd();
        let lls = StorageDevice::low_latency_ssd();
        let pmem = StorageDevice::persistent_memory();
        assert!(sata.read_bandwidth.value() < nvme.read_bandwidth.value());
        assert!(nvme.read_bandwidth.value() <= lls.read_bandwidth.value());
        assert!(lls.read_bandwidth.value() < pmem.read_bandwidth.value());
    }

    #[test]
    fn latency_ladder() {
        let candidates = StorageDevice::io_path_candidates();
        let sata = &candidates[0];
        let pmem = &candidates[3];
        assert!(pmem.access_latency < sata.access_latency / 50.0);
    }

    #[test]
    fn read_time_includes_latency() {
        let d = StorageDevice::nvme_ssd();
        let bulk = d.read_time(6.8e9, 1);
        assert!((bulk - 1.0).abs() < 1e-3);
        let many = d.read_time(6.8e9, 100_000);
        assert!(many > bulk + 1.0);
    }

    #[test]
    fn computational_storage_reduces_host_bytes() {
        let cs = StorageDevice::computational_storage();
        let nvme = StorageDevice::nvme_ssd();
        assert!(cs.host_visible_bytes(1e9) < nvme.host_visible_bytes(1e9));
        assert!(cs.preprocess_offload > 0.0);
        assert_eq!(nvme.preprocess_offload, 0.0);
    }
}
