//! # f2-hetero
//!
//! Reproduction of the heterogeneous CPU-GPU-FPGA platform thrust of §VI:
//! the benchmarking campaign on a medical-image-segmentation deep-learning
//! pipeline, and the I/O-path optimisation with computational storage that
//! bought "a training time reduction of up to 10% and inference throughput
//! improvement of up to 10%".
//!
//! * [`device`] — roofline-based compute-device models (server CPU,
//!   data-center GPU, FPGA accelerator card) with host-link bandwidths.
//! * [`storage`] — storage-device models (SATA/NVMe/low-latency SSD,
//!   persistent memory, computational storage with in-storage
//!   preprocessing).
//! * [`pipeline`] — the Fig. 5 end-to-end flow simulator: load → preprocess
//!   → train/infer → postprocess, with stage overlap, per-stage profiling
//!   and energy accounting.
//!
//! ```
//! use f2_hetero::device::ComputeDevice;
//! use f2_hetero::pipeline::{PipelineSpec, run_training};
//! use f2_hetero::storage::StorageDevice;
//!
//! let spec = PipelineSpec::segmentation_default();
//! let gpu = run_training(&spec, &ComputeDevice::datacenter_gpu(), &StorageDevice::nvme_ssd());
//! let cpu = run_training(&spec, &ComputeDevice::server_cpu(), &StorageDevice::nvme_ssd());
//! assert!(gpu.total_time < cpu.total_time);
//! ```

pub mod campaign;
pub mod device;
pub mod error;
pub mod experiments;
pub mod pipeline;
pub mod storage;

pub use error::HeteroError;

/// Convenience result alias used across `f2-hetero`.
pub type Result<T> = std::result::Result<T, HeteroError>;
