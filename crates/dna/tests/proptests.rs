//! Property-based tests of DNA-storage invariants.

use f2_core::ptest::Gen;
use f2_dna::alignment::align_banded;
use f2_dna::codec::{decode, encode, CodecConfig};
use f2_dna::levenshtein::{levenshtein_banded, levenshtein_dp, levenshtein_myers};
use f2_dna::sequence::{DnaBase, DnaSequence};

fn gen_sequence(g: &mut Gen, max_len: usize) -> DnaSequence {
    let bases = g.vec(0..max_len, |g| DnaBase::from_bits(g.u8() % 4));
    DnaSequence::from_bases(bases)
}

f2_core::ptest! {
    /// Bytes → bases → bytes is the identity.
    fn sequence_codec_round_trip(g) {
        let payload = g.bytes(0..200);
        let seq = DnaSequence::from_bytes(&payload);
        assert_eq!(seq.to_bytes(), payload);
    }

    /// Myers bit-parallel distance equals the DP reference for any pair.
    fn myers_equals_dp(g) {
        let a = gen_sequence(g, 180);
        let b = gen_sequence(g, 180);
        assert_eq!(
            levenshtein_myers(&a, &b).distance,
            levenshtein_dp(&a, &b).distance
        );
    }

    /// Banded distance is exact whenever it returns a value.
    fn banded_is_exact_when_it_answers(g) {
        let a = gen_sequence(g, 120);
        let b = gen_sequence(g, 120);
        let band = g.usize_in(1..24);
        if let Some(d) = levenshtein_banded(&a, &b, band).distance {
            assert_eq!(Some(d), levenshtein_dp(&a, &b).distance);
            assert!(d <= band);
        }
    }

    /// Alignment cost equals edit distance whenever the band admits it, and
    /// the op list's geometry is consistent with both sequences.
    fn alignment_consistent(g) {
        let a = gen_sequence(g, 80);
        let b = gen_sequence(g, 80);
        let d = levenshtein_dp(&a, &b).distance.expect("exact");
        if let Some(al) = align_banded(&a, &b, 30) {
            assert_eq!(al.cost, d);
            let draft_len = al.ops.iter()
                .filter(|op| !matches!(op, f2_dna::alignment::AlignOp::Insert)).count();
            let read_len = al.ops.iter()
                .filter(|op| !matches!(op, f2_dna::alignment::AlignOp::Delete)).count();
            assert_eq!(draft_len, a.len());
            assert_eq!(read_len, b.len());
        } else {
            assert!(d > 30);
        }
    }

    /// Archive encode/decode round-trips for arbitrary payloads and framing.
    fn archive_round_trip(g) {
        let payload = g.bytes(0..300);
        let dps = g.usize_in(4..32);
        let group = g.usize_in(1..9);
        let cfg = CodecConfig { data_per_strand: dps, group_size: group };
        let archive = encode(&payload, cfg).expect("encodable");
        let (decoded, stats) = decode(&archive.strands, archive.payload_len, cfg)
            .expect("decodable");
        assert_eq!(decoded, payload);
        assert_eq!(stats.lost, 0);
    }

    /// Any single dropped strand is recovered by parity.
    fn single_erasure_repaired(g) {
        let payload = g.bytes(32..200);
        let drop_idx = g.usize_in(0..8);
        let cfg = CodecConfig { data_per_strand: 16, group_size: 4 };
        let archive = encode(&payload, cfg).expect("encodable");
        let n_data = payload.len().div_ceil(16);
        let mut strands = archive.strands.clone();
        strands.remove(drop_idx % n_data);
        let (decoded, stats) = decode(&strands, archive.payload_len, cfg)
            .expect("repairable");
        assert_eq!(decoded, payload);
        assert_eq!(stats.parity_recovered, 1);
    }

    /// Reverse complement is an involution that preserves GC content.
    fn reverse_complement_involution(g) {
        let s = gen_sequence(g, 100);
        let rc = s.reverse_complement();
        assert_eq!(rc.reverse_complement(), s.clone());
        assert!((rc.gc_content() - s.gc_content()).abs() < 1e-12);
    }
}
