//! Property-based tests of DNA-storage invariants.

use f2_dna::alignment::align_banded;
use f2_dna::codec::{decode, encode, CodecConfig};
use f2_dna::levenshtein::{levenshtein_banded, levenshtein_dp, levenshtein_myers};
use f2_dna::sequence::{DnaBase, DnaSequence};
use proptest::prelude::*;

fn arb_sequence(max_len: usize) -> impl Strategy<Value = DnaSequence> {
    prop::collection::vec(0u8..4, 0..max_len)
        .prop_map(|v| DnaSequence::from_bases(v.into_iter().map(DnaBase::from_bits).collect()))
}

proptest! {
    /// Bytes → bases → bytes is the identity.
    #[test]
    fn sequence_codec_round_trip(payload in prop::collection::vec(any::<u8>(), 0..200)) {
        let seq = DnaSequence::from_bytes(&payload);
        prop_assert_eq!(seq.to_bytes(), payload);
    }

    /// Myers bit-parallel distance equals the DP reference for any pair.
    #[test]
    fn myers_equals_dp(a in arb_sequence(180), b in arb_sequence(180)) {
        prop_assert_eq!(
            levenshtein_myers(&a, &b).distance,
            levenshtein_dp(&a, &b).distance
        );
    }

    /// Banded distance is exact whenever it returns a value.
    #[test]
    fn banded_is_exact_when_it_answers(a in arb_sequence(120), b in arb_sequence(120),
                                       band in 1usize..24) {
        if let Some(d) = levenshtein_banded(&a, &b, band).distance {
            prop_assert_eq!(Some(d), levenshtein_dp(&a, &b).distance);
            prop_assert!(d <= band);
        }
    }

    /// Alignment cost equals edit distance whenever the band admits it, and
    /// the op list's geometry is consistent with both sequences.
    #[test]
    fn alignment_consistent(a in arb_sequence(80), b in arb_sequence(80)) {
        let d = levenshtein_dp(&a, &b).distance.expect("exact");
        if let Some(al) = align_banded(&a, &b, 30) {
            prop_assert_eq!(al.cost, d);
            let draft_len = al.ops.iter()
                .filter(|op| !matches!(op, f2_dna::alignment::AlignOp::Insert)).count();
            let read_len = al.ops.iter()
                .filter(|op| !matches!(op, f2_dna::alignment::AlignOp::Delete)).count();
            prop_assert_eq!(draft_len, a.len());
            prop_assert_eq!(read_len, b.len());
        } else {
            prop_assert!(d > 30);
        }
    }

    /// Archive encode/decode round-trips for arbitrary payloads and framing.
    #[test]
    fn archive_round_trip(payload in prop::collection::vec(any::<u8>(), 0..300),
                          dps in 4usize..32, group in 1usize..9) {
        let cfg = CodecConfig { data_per_strand: dps, group_size: group };
        let archive = encode(&payload, cfg).expect("encodable");
        let (decoded, stats) = decode(&archive.strands, archive.payload_len, cfg)
            .expect("decodable");
        prop_assert_eq!(decoded, payload);
        prop_assert_eq!(stats.lost, 0);
    }

    /// Any single dropped strand is recovered by parity.
    #[test]
    fn single_erasure_repaired(payload in prop::collection::vec(any::<u8>(), 32..200),
                               drop_idx in 0usize..8) {
        let cfg = CodecConfig { data_per_strand: 16, group_size: 4 };
        let archive = encode(&payload, cfg).expect("encodable");
        let n_data = payload.len().div_ceil(16);
        let mut strands = archive.strands.clone();
        strands.remove(drop_idx % n_data);
        let (decoded, stats) = decode(&strands, archive.payload_len, cfg)
            .expect("repairable");
        prop_assert_eq!(decoded, payload);
        prop_assert_eq!(stats.parity_recovered, 1);
    }

    /// Reverse complement is an involution that preserves GC content.
    #[test]
    fn reverse_complement_involution(s in arb_sequence(100)) {
        let rc = s.reverse_complement();
        prop_assert_eq!(rc.reverse_complement(), s.clone());
        prop_assert!((rc.gc_content() - s.gc_content()).abs() < 1e-12);
    }
}
