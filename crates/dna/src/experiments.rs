//! This thrust's registry entries for the unified `f2` runner.

use f2_core::experiment::render::fmt;
use f2_core::experiment::{Experiment, ExperimentCtx, ExperimentReport, ParamSpec};

use crate::accelerator::{AcceleratorConfig, CpuBaseline};
use crate::channel::ChannelModel;
use crate::levenshtein::{levenshtein_banded, levenshtein_dp, levenshtein_myers};
use crate::pipeline::{run_pipeline, PipelineConfig};
use crate::sequence::{DnaBase, DnaSequence};
use std::time::Instant;

const PAYLOAD: &[u8] = b"The ICSC Italian National Research Center for High-Performance \
Computing, Big Data, and Quantum Computing is a central hub for supercomputing \
infrastructure, supported by ten specialized research spokes.";

/// E9 / §VI — the FPGA edit-distance accelerator for DNA storage.
///
/// Reproduces the published Alveo U50 figures (16.8 TCUPS, 46 Mpair/J, ~90%
/// computing efficiency at ~90% resource use) from the systolic-array model
/// and compares against CPU baselines. The software-kernel timing table is
/// informative only (wall-clock, machine-dependent); the KPIs are the
/// deterministic model outputs and cell-update counts.
pub struct DnaThroughput;

impl DnaThroughput {
    fn software_kernels(&self, ctx: &mut ExperimentCtx) {
        let pairs_n = ctx.param_u64("pairs", if ctx.quick() { 50 } else { 200 });
        let strand_len = ctx.param_u64("strand_len", 150) as usize;
        ctx.section(&format!(
            "Software kernel throughput (this machine, {strand_len}-base pairs, {pairs_n} pairs)"
        ));
        let mut rng = ctx.rng_for("e9");
        let pairs: Vec<(DnaSequence, DnaSequence)> = (0..pairs_n)
            .map(|_| {
                let s = |rng: &mut _| {
                    DnaSequence::from_bases(
                        (0..strand_len)
                            .map(|_| DnaBase::from_bits(f2_core::rng::Rng::gen(rng)))
                            .collect(),
                    )
                };
                (s(&mut rng), s(&mut rng))
            })
            .collect();
        let mut rows = Vec::new();
        for (name, slug, f) in [
            (
                "exact DP",
                "exact_dp",
                Box::new(|a: &DnaSequence, b: &DnaSequence| levenshtein_dp(a, b).cell_updates)
                    as Box<dyn Fn(&DnaSequence, &DnaSequence) -> u64>,
            ),
            (
                "banded (k=16)",
                "banded_k16",
                Box::new(|a: &DnaSequence, b: &DnaSequence| {
                    levenshtein_banded(a, b, 16).cell_updates
                }),
            ),
            (
                "Myers bit-parallel",
                "myers",
                Box::new(|a: &DnaSequence, b: &DnaSequence| levenshtein_myers(a, b).cell_updates),
            ),
        ] {
            let start = Instant::now();
            let mut cells = 0u64;
            for (a, b) in &pairs {
                cells += f(a, b);
            }
            let dt = start.elapsed().as_secs_f64();
            rows.push(vec![
                name.to_string(),
                cells.to_string(),
                fmt(cells as f64 / dt / 1e9, 2),
                fmt(pairs.len() as f64 / dt / 1e3, 1),
            ]);
            // Cell-update counts are deterministic; GCUPS is wall-clock and
            // stays out of the KPI set.
            ctx.kpi(&format!("kernels/cell_updates_{slug}"), cells as f64);
        }
        ctx.table(&["Kernel", "Cell updates", "GCUPS", "kpairs/s"], &rows);
    }

    fn accelerator_model(&self, ctx: &mut ExperimentCtx) {
        ctx.section("Alveo U50 accelerator model vs baselines (150-base pairs)");
        let fpga = AcceleratorConfig::alveo_u50();
        let cpu = CpuBaseline::server();
        let rows = vec![
            vec![
                "Alveo U50 systolic [35]".to_string(),
                fmt(fpga.throughput().value(), 1),
                fmt(fpga.pairs_per_second(150) / 1e6, 0),
                fmt(fpga.pair_efficiency(150).value(), 1),
                fmt(fpga.compute_efficiency * 100.0, 0),
                fmt(fpga.resource_utilization * 100.0, 0),
            ],
            vec![
                "32-core CPU (Myers)".to_string(),
                fmt(cpu.throughput().value(), 3),
                fmt(cpu.throughput().value() * 1e12 / (150.0 * 150.0) / 1e6, 1),
                fmt(cpu.pair_efficiency(150).value(), 3),
                "-".to_string(),
                "-".to_string(),
            ],
        ];
        ctx.table(
            &[
                "Platform",
                "TCUPS",
                "Mpairs/s",
                "Mpair/J",
                "Compute eff %",
                "Resource %",
            ],
            &rows,
        );
        ctx.kpi("accelerator/tcups", fpga.throughput().value());
        ctx.kpi(
            "accelerator/mpair_per_joule",
            fpga.pair_efficiency(150).value(),
        );
        ctx.kpi(
            "accelerator/throughput_speedup_vs_cpu",
            fpga.throughput().value() / cpu.throughput().value(),
        );
        ctx.kpi(
            "accelerator/energy_speedup_vs_cpu",
            fpga.pair_efficiency(150).value() / cpu.pair_efficiency(150).value(),
        );
        ctx.note("\nPublished: 16.8 TCUPS, 46 Mpair/J, ~90% efficiency, ~90% resources.");

        ctx.section("Ablation: strand length vs pair throughput (quadratic cell count)");
        let mut rows = Vec::new();
        for len in [100usize, 150, 200, 300] {
            rows.push(vec![
                len.to_string(),
                fmt(fpga.pairs_per_second(len) / 1e6, 0),
                fmt(fpga.pair_efficiency(len).value(), 1),
            ]);
            ctx.kpi(
                &format!("accelerator/mpairs_per_s_len_{len}"),
                fpga.pairs_per_second(len) / 1e6,
            );
        }
        ctx.table(&["Strand length", "Mpairs/s", "Mpair/J"], &rows);
    }
}

impl Experiment for DnaThroughput {
    fn name(&self) -> &'static str {
        "dna_throughput"
    }

    fn summary(&self) -> &'static str {
        "E9 / §VI: FPGA edit-distance accelerator model vs CPU baselines"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["e9", "dna", "fpga"]
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::u64(
                "pairs",
                "software-kernel sequence pairs (quick 50, full 200)",
            ),
            ParamSpec::u64("strand_len", "bases per generated strand (default 150)"),
        ]
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> f2_core::Result<ExperimentReport> {
        {
            let _phase = ctx.span("dna:software_kernels");
            self.software_kernels(ctx);
        }
        {
            let _phase = ctx.span("dna:accelerator_model");
            self.accelerator_model(ctx);
        }
        Ok(ctx.report(self.name()))
    }
}

/// E10 / Fig. 6b — end-to-end DNA storage channel round trip.
///
/// Reproduces the DNAssim-style simulation: payload -> oligos -> noisy
/// channel -> clustering -> consensus -> decode, sweeping the channel error
/// rate to find where recovery breaks down.
pub struct DnaPipeline;

impl Experiment for DnaPipeline {
    fn name(&self) -> &'static str {
        "dna_pipeline"
    }

    fn summary(&self) -> &'static str {
        "E10 / Fig. 6b: end-to-end DNA storage channel round trip"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["e10", "dna", "figure"]
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::u64(
                "sweep_seeds",
                "seeds per substitution-sweep point (quick 3, full 5)",
            ),
            ParamSpec::f64(
                "sub_scale",
                "error-regime multiplier on every swept substitution rate (default 1)",
            ),
        ]
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> f2_core::Result<ExperimentReport> {
        ctx.note(&format!("Payload: {} bytes", PAYLOAD.len()));

        ctx.section("Round trip across channel profiles");
        let roundtrip_phase = ctx.span("dna:roundtrip_profiles");
        let mut rows = Vec::new();
        for (name, slug, ch) in [
            (
                "noiseless",
                "noiseless",
                ChannelModel {
                    substitution: 0.0,
                    insertion: 0.0,
                    deletion: 0.0,
                    dropout: 0.0,
                    mean_coverage: 5.0,
                },
            ),
            (
                "typical (Illumina-class)",
                "typical",
                ChannelModel::typical(),
            ),
            ("harsh (nanopore-class)", "harsh", ChannelModel::harsh()),
        ] {
            let cfg = PipelineConfig {
                channel: ch,
                ..PipelineConfig::default()
            };
            let (_, report) = run_pipeline(PAYLOAD, &cfg, 42).expect("valid config");
            ctx.counter_add("dna.distance_calls", report.distance_calls);
            rows.push(vec![
                name.to_string(),
                report.strands_written.to_string(),
                report.reads.to_string(),
                report.clusters.to_string(),
                report.decode.parity_recovered.to_string(),
                report.payload_recovered.to_string(),
                report.distance_calls.to_string(),
            ]);
            ctx.kpi(
                &format!("roundtrip/{slug}_recovered"),
                if report.payload_recovered { 1.0 } else { 0.0 },
            );
            ctx.kpi(
                &format!("roundtrip/{slug}_distance_calls"),
                report.distance_calls as f64,
            );
        }
        ctx.table(
            &[
                "Channel",
                "Oligos",
                "Reads",
                "Clusters",
                "Parity fixes",
                "Recovered",
                "Dist calls",
            ],
            &rows,
        );

        // Quick mode trims the sweep and the per-point seed count; the
        // clean-recovery/breakdown shape is what the KPIs pin. `sub_scale`
        // shifts the whole sweep into a harsher or milder error regime.
        let (base_subs, seeds_d): (&[f64], u64) = if ctx.quick() {
            (&[0.005, 0.02, 0.1], 3)
        } else {
            (&[0.005, 0.01, 0.02, 0.05, 0.1], 5)
        };
        let seeds = ctx.param_u64("sweep_seeds", seeds_d);
        let sub_scale = ctx.param_f64("sub_scale", 1.0);
        let subs: Vec<f64> = base_subs.iter().map(|s| s * sub_scale).collect();
        let subs = subs.as_slice();
        drop(roundtrip_phase);
        ctx.section(&format!(
            "Substitution-rate sweep (recovery probability over {seeds} seeds)"
        ));
        let _phase = ctx.span("dna:substitution_sweep");
        let results = ctx.exec().map(subs, |&sub| {
            let cfg = PipelineConfig {
                channel: ChannelModel {
                    substitution: sub,
                    ..ChannelModel::typical()
                },
                ..PipelineConfig::default()
            };
            (0..seeds)
                .filter(|&seed| {
                    run_pipeline(PAYLOAD, &cfg, seed)
                        .map(|(_, r)| r.payload_recovered)
                        .unwrap_or(false)
                })
                .count()
        });
        let mut rows = Vec::new();
        for (&sub, ok) in subs.iter().zip(results) {
            rows.push(vec![fmt(sub * 100.0, 1), format!("{ok}/{seeds}")]);
            ctx.kpi(
                &format!("sweep/recovery_rate_sub_{}bp10k", (sub * 10_000.0) as u64),
                ok as f64 / seeds as f64,
            );
        }
        ctx.table(&["Substitution %", "Recovered"], &rows);
        ctx.note("\nShape check: clean recovery at realistic error rates, graceful");
        ctx.note("breakdown as the channel degrades — the decoding workload whose");
        ctx.note("cost motivates the FPGA accelerator (§VI).");
        Ok(ctx.report(self.name()))
    }
}

/// This crate's experiments, for registry assembly.
pub fn experiments() -> Vec<Box<dyn Experiment>> {
    vec![Box::new(DnaThroughput), Box::new(DnaPipeline)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_throughput_matches_published_model() {
        let mut ctx = ExperimentCtx::quiet(f2_core::rng::DEFAULT_SEED, true, 1);
        let report = DnaThroughput.run(&mut ctx).expect("runs");
        let tcups = report.kpi("accelerator/tcups").expect("kpi");
        assert!((tcups - 16.8).abs() < 0.5, "calibrated TCUPS (got {tcups})");
    }

    #[test]
    fn dna_pipeline_recovers_on_clean_channels() {
        let mut ctx = ExperimentCtx::quiet(f2_core::rng::DEFAULT_SEED, true, 2);
        let report = DnaPipeline.run(&mut ctx).expect("runs");
        assert_eq!(report.kpi("roundtrip/noiseless_recovered"), Some(1.0));
        assert_eq!(report.kpi("roundtrip/typical_recovered"), Some(1.0));
    }
}
