//! Banded global alignment with traceback, and alignment-based consensus.
//!
//! The column-vote consensus in [`crate::cluster`] is exact for
//! substitution-only noise but degrades under insertions/deletions (reads of
//! shifted length are excluded from the vote). Nanopore-class channels
//! (§VI's "harsh" profile) are indel-dominated, so production DNA-storage
//! decoders align each read to a draft before voting. This module provides
//! that machinery: a banded Needleman-Wunsch aligner with traceback and the
//! draft-anchored consensus built on it.

use crate::sequence::{DnaBase, DnaSequence};

/// One step of a pairwise alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Bases match.
    Match,
    /// Substitution (mismatch).
    Substitute,
    /// Base present in the read but not the draft (insertion).
    Insert,
    /// Base present in the draft but not the read (deletion).
    Delete,
}

/// A global alignment of a read against a draft.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Edit operations in draft order.
    pub ops: Vec<AlignOp>,
    /// Total edit cost (unit costs).
    pub cost: usize,
}

impl Alignment {
    /// Number of draft positions covered (matches + substitutions +
    /// deletions).
    pub fn draft_len(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| !matches!(op, AlignOp::Insert))
            .count()
    }
}

/// Banded Needleman-Wunsch global alignment (unit costs) with traceback.
/// Returns `None` if no alignment of cost ≤ `band` exists.
pub fn align_banded(draft: &DnaSequence, read: &DnaSequence, band: usize) -> Option<Alignment> {
    let a = draft.bases();
    let b = read.bases();
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > band {
        return None;
    }
    const BIG: usize = usize::MAX / 4;
    let width = 2 * band + 1;
    // dp[i][k] where k encodes j = i - band + k, clamped to the band.
    let idx = |i: usize, j: usize| -> Option<usize> {
        let lo = i.saturating_sub(band);
        if j < lo || j > i + band || j > m {
            None
        } else {
            Some(j + band - i)
        }
    };
    let mut dp = vec![vec![BIG; width]; n + 1];
    let mut back = vec![vec![0u8; width]; n + 1]; // 1=diag, 2=up(del), 3=left(ins)
    for j in 0..=band.min(m) {
        dp[0][idx(0, j).expect("in band")] = j;
        if j > 0 {
            back[0][idx(0, j).expect("in band")] = 3;
        }
    }
    for i in 1..=n {
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(m);
        for j in lo..=hi {
            let k = idx(i, j).expect("in band");
            let mut best = BIG;
            let mut dir = 0u8;
            if j > 0 {
                if let Some(kd) = idx(i - 1, j - 1) {
                    let cost = dp[i - 1][kd] + usize::from(a[i - 1] != b[j - 1]);
                    if cost < best {
                        best = cost;
                        dir = 1;
                    }
                }
            }
            if let Some(ku) = idx(i - 1, j) {
                let cost = dp[i - 1][ku].saturating_add(1);
                if cost < best {
                    best = cost;
                    dir = 2;
                }
            }
            if j > 0 {
                if let Some(kl) = idx(i, j - 1) {
                    let cost = dp[i][kl].saturating_add(1);
                    if cost < best {
                        best = cost;
                        dir = 3;
                    }
                }
            }
            dp[i][k] = best;
            back[i][k] = dir;
        }
    }
    let final_k = idx(n, m)?;
    let cost = dp[n][final_k];
    if cost > band {
        return None;
    }
    // Traceback.
    let mut ops = Vec::with_capacity(n + band);
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let k = idx(i, j).expect("traceback stays in band");
        match back[i][k] {
            1 => {
                ops.push(if a[i - 1] == b[j - 1] {
                    AlignOp::Match
                } else {
                    AlignOp::Substitute
                });
                i -= 1;
                j -= 1;
            }
            2 => {
                ops.push(AlignOp::Delete);
                i -= 1;
            }
            3 => {
                ops.push(AlignOp::Insert);
                j -= 1;
            }
            _ => return None, // unreachable cell
        }
    }
    ops.reverse();
    Some(Alignment { ops, cost })
}

/// Per-draft-position read bases after alignment: `Some(base)` where the
/// read covers the draft position (match/substitute), `None` where the read
/// deleted it. Insertions are dropped (they do not map to a draft column).
pub fn project_to_draft(
    draft: &DnaSequence,
    read: &DnaSequence,
    band: usize,
) -> Option<Vec<Option<DnaBase>>> {
    project_with_insertions(draft, read, band).map(|(cols, _)| cols)
}

/// A read projected onto draft columns (`None` where the read has a
/// deletion) plus its insertions as `(draft_position, base)` pairs.
pub type Projection = (Vec<Option<DnaBase>>, Vec<(usize, DnaBase)>);

/// Like [`project_to_draft`], but also returns the read's insertions as
/// `(draft_position, base)` pairs — the base the read inserts *before* that
/// draft column (`draft.len()` marks an append at the end).
pub fn project_with_insertions(
    draft: &DnaSequence,
    read: &DnaSequence,
    band: usize,
) -> Option<Projection> {
    let alignment = align_banded(draft, read, band)?;
    let mut column = Vec::with_capacity(draft.len());
    let mut insertions = Vec::new();
    let mut read_pos = 0usize;
    for op in alignment.ops {
        match op {
            AlignOp::Match | AlignOp::Substitute => {
                column.push(Some(read.bases()[read_pos]));
                read_pos += 1;
            }
            AlignOp::Delete => column.push(None),
            AlignOp::Insert => {
                insertions.push((column.len(), read.bases()[read_pos]));
                read_pos += 1;
            }
        }
    }
    debug_assert_eq!(column.len(), draft.len());
    Some((column, insertions))
}

/// Alignment-based consensus: the medoid read anchors a draft; every read is
/// aligned to it and each draft column takes the plurality base. Columns a
/// majority of reads delete are dropped; positions a majority of reads
/// insert at gain the plurality inserted base. A second refinement round
/// re-aligns every read against the round-one consensus, which repairs
/// errors inherited from the draft itself.
///
/// Returns an empty strand for an empty cluster.
pub fn consensus_aligned(reads: &[&DnaSequence], band: usize) -> DnaSequence {
    if reads.is_empty() {
        return DnaSequence::new();
    }
    if reads.len() == 1 {
        return reads[0].clone();
    }
    // Medoid draft (minimum summed banded distance).
    let mut best = (usize::MAX, 0usize);
    for (i, a) in reads.iter().enumerate() {
        let total: usize = reads
            .iter()
            .map(|b| {
                crate::levenshtein::levenshtein_banded(a, b, band)
                    .distance
                    .unwrap_or(a.len().max(b.len()))
            })
            .sum();
        if total < best.0 {
            best = (total, i);
        }
    }
    let mut draft = reads[best.1].clone();
    for _ in 0..2 {
        let refined = consensus_round(&draft, reads, band);
        if refined == draft {
            break;
        }
        draft = refined;
    }
    draft
}

fn consensus_round(draft: &DnaSequence, reads: &[&DnaSequence], band: usize) -> DnaSequence {
    let mut base_votes = vec![[0usize; 4]; draft.len()];
    let mut del_votes = vec![0usize; draft.len()];
    // ins_votes[pos][base]: reads inserting `base` before draft column `pos`.
    let mut ins_votes = vec![[0usize; 4]; draft.len() + 1];
    let mut voters = 0usize;
    for read in reads {
        if let Some((column, insertions)) = project_with_insertions(draft, read, band) {
            voters += 1;
            for (pos, b) in column.into_iter().enumerate() {
                match b {
                    Some(base) => base_votes[pos][base.to_bits() as usize] += 1,
                    None => del_votes[pos] += 1,
                }
            }
            for (pos, base) in insertions {
                ins_votes[pos][base.to_bits() as usize] += 1;
            }
        }
    }
    if voters == 0 {
        return draft.clone();
    }
    let majority = voters / 2;
    let mut bases = Vec::with_capacity(draft.len() + 2);
    let emit_insertion = |bases: &mut Vec<DnaBase>, pos: usize| {
        let (b, count) = ins_votes[pos]
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, &c)| (i, c))
            .expect("four bases");
        if count > majority {
            bases.push(DnaBase::from_bits(b as u8));
        }
    };
    for pos in 0..draft.len() {
        emit_insertion(&mut bases, pos);
        let (best_base, best_count) = base_votes[pos]
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, &c)| (i, c))
            .expect("four bases");
        if del_votes[pos] > best_count {
            continue; // majority says this draft base was an insertion artefact
        }
        bases.push(DnaBase::from_bits(best_base as u8));
    }
    emit_insertion(&mut bases, draft.len());
    DnaSequence::from_bases(bases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;
    use crate::levenshtein::levenshtein_dp;
    use f2_core::rng::rng_for;
    use f2_core::rng::Rng;

    fn seq(s: &str) -> DnaSequence {
        DnaSequence::parse(s).expect("valid sequence")
    }

    fn random_strand(len: usize, rng: &mut impl Rng) -> DnaSequence {
        DnaSequence::from_bases((0..len).map(|_| DnaBase::from_bits(rng.gen())).collect())
    }

    #[test]
    fn identical_sequences_align_with_zero_cost() {
        let s = seq("ACGTACGT");
        let a = align_banded(&s, &s, 4).expect("aligns");
        assert_eq!(a.cost, 0);
        assert!(a.ops.iter().all(|op| *op == AlignOp::Match));
    }

    #[test]
    fn alignment_cost_matches_edit_distance() {
        let mut rng = rng_for(1, "align");
        for _ in 0..30 {
            let a = random_strand(50, &mut rng);
            let mut b_bases = a.bases().to_vec();
            // A few random edits.
            for _ in 0..rng.gen_range(0..4) {
                match rng.gen_range(0..3) {
                    0 => {
                        let i = rng.gen_range(0..b_bases.len());
                        b_bases[i] = DnaBase::from_bits(rng.gen());
                    }
                    1 => {
                        let i = rng.gen_range(0..=b_bases.len());
                        b_bases.insert(i, DnaBase::from_bits(rng.gen()));
                    }
                    _ => {
                        if b_bases.len() > 1 {
                            let i = rng.gen_range(0..b_bases.len());
                            b_bases.remove(i);
                        }
                    }
                }
            }
            let b = DnaSequence::from_bases(b_bases);
            let d = levenshtein_dp(&a, &b).distance.expect("exact");
            let al = align_banded(&a, &b, 12).expect("within band");
            assert_eq!(al.cost, d, "alignment cost must equal edit distance");
        }
    }

    #[test]
    fn ops_reconstruct_the_read() {
        let draft = seq("ACGTACGTAC");
        let read = seq("ACTACGGTAC"); // del G@2, ins G@6 relative to draft
        let al = align_banded(&draft, &read, 6).expect("aligns");
        // Replaying ops over the draft must regenerate the read.
        let mut rebuilt = Vec::new();
        let (mut di, mut ri) = (0usize, 0usize);
        for op in &al.ops {
            match op {
                AlignOp::Match | AlignOp::Substitute => {
                    rebuilt.push(read.bases()[ri]);
                    di += 1;
                    ri += 1;
                }
                AlignOp::Delete => di += 1,
                AlignOp::Insert => {
                    rebuilt.push(read.bases()[ri]);
                    ri += 1;
                }
            }
        }
        assert_eq!(di, draft.len());
        assert_eq!(DnaSequence::from_bases(rebuilt), read);
    }

    #[test]
    fn band_too_small_returns_none() {
        let a = seq("AAAAAAAAAA");
        let b = seq("TTTTTTTTTT");
        assert!(align_banded(&a, &b, 4).is_none());
        assert!(align_banded(&a, &seq("AA"), 3).is_none()); // length gap 8 > 3
    }

    #[test]
    fn projection_marks_deletions() {
        let draft = seq("ACGT");
        let read = seq("AGT"); // C deleted
        let col = project_to_draft(&draft, &read, 3).expect("aligns");
        assert_eq!(col.len(), 4);
        assert_eq!(col[0], Some(DnaBase::A));
        assert_eq!(col[1], None);
        assert_eq!(col[2], Some(DnaBase::G));
        assert_eq!(col[3], Some(DnaBase::T));
    }

    #[test]
    fn aligned_consensus_recovers_under_indels() {
        let mut rng = rng_for(3, "align-cons");
        let original = random_strand(80, &mut rng);
        let ch = ChannelModel {
            substitution: 0.01,
            insertion: 0.01,
            deletion: 0.01,
            dropout: 0.0,
            mean_coverage: 1.0,
        };
        let mut recovered = 0;
        let trials = 10;
        for _ in 0..trials {
            let reads: Vec<DnaSequence> = (0..9).map(|_| ch.corrupt(&original, &mut rng)).collect();
            let refs: Vec<&DnaSequence> = reads.iter().collect();
            if consensus_aligned(&refs, 16) == original {
                recovered += 1;
            }
        }
        assert!(
            recovered >= 8,
            "aligned consensus recovered only {recovered}/{trials}"
        );
    }

    #[test]
    fn aligned_beats_column_vote_under_indels() {
        let mut rng = rng_for(4, "align-vs-col");
        let ch = ChannelModel {
            substitution: 0.01,
            insertion: 0.02,
            deletion: 0.02,
            dropout: 0.0,
            mean_coverage: 1.0,
        };
        let mut aligned_exact = 0;
        let mut column_exact = 0;
        let trials = 12;
        for _ in 0..trials {
            let original = random_strand(70, &mut rng);
            let reads: Vec<DnaSequence> =
                (0..11).map(|_| ch.corrupt(&original, &mut rng)).collect();
            let refs: Vec<&DnaSequence> = reads.iter().collect();
            if consensus_aligned(&refs, 16) == original {
                aligned_exact += 1;
            }
            if crate::cluster::consensus(&refs) == original {
                column_exact += 1;
            }
        }
        assert!(
            aligned_exact > column_exact,
            "aligned {aligned_exact}/{trials} should beat column vote {column_exact}/{trials}"
        );
    }

    #[test]
    fn consensus_edge_cases() {
        assert!(consensus_aligned(&[], 8).is_empty());
        let s = seq("ACGT");
        assert_eq!(consensus_aligned(&[&s], 8), s);
    }
}
