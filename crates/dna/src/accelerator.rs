//! Systolic-array model of the Alveo U50 edit-distance accelerator \[35\].
//!
//! §VI: "Our solution uses nearly 90% of FPGA basic-block hardware
//! resources, achieving about 90% computing efficiency while delivering a
//! maximum throughput of 16.8 TCUPS and an energy efficiency of 46
//! Mpair/Joule."
//!
//! The accelerator tiles Myers-style bit-parallel processing elements (each
//! PE advances one 64-row block of the DP matrix per cycle) across the
//! device fabric. Throughput is therefore
//! `PEs × 64 cells × fmax × efficiency`, and the model exposes exactly the
//! quantities the paper reports: TCUPS, Mpair/J, computing efficiency and
//! resource utilisation. The host-side software baseline reuses the same
//! kernels from [`crate::levenshtein`], so the speedup comparison is
//! apples-to-apples on cell updates.

use crate::error::DnaError;
use crate::Result;
use f2_core::kpi::{Megahertz, MpairPerJoule, Tcups, Watts};

/// Configuration of the systolic edit-distance accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Bit-parallel processing elements instantiated.
    pub pe_count: usize,
    /// DP cells each PE updates per cycle (the Myers word width).
    pub cells_per_pe: usize,
    /// Achieved kernel clock.
    pub fmax: Megahertz,
    /// Fraction of cycles PEs do useful work (pipeline fill, strand-length
    /// raggedness and HBM stalls).
    pub compute_efficiency: f64,
    /// Board power at load.
    pub power: Watts,
    /// Fraction of the device's LUT budget the design occupies.
    pub resource_utilization: f64,
}

impl AcceleratorConfig {
    /// The published Alveo U50 design point of \[35\].
    pub fn alveo_u50() -> Self {
        Self {
            pe_count: 912,
            cells_per_pe: 64,
            fmax: Megahertz::new(320.0),
            compute_efficiency: 0.90,
            power: Watts::new(16.3),
            resource_utilization: 0.90,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DnaError::InvalidParameter`] on zero/invalid fields.
    pub fn validate(&self) -> Result<()> {
        if self.pe_count == 0 || self.cells_per_pe == 0 {
            return Err(DnaError::InvalidParameter(
                "PE array must be non-empty".to_string(),
            ));
        }
        if !(0.0..=1.0).contains(&self.compute_efficiency)
            || !(0.0..=1.0).contains(&self.resource_utilization)
        {
            return Err(DnaError::InvalidParameter(
                "efficiency/utilization must be fractions".to_string(),
            ));
        }
        if self.fmax.value() <= 0.0 || self.power.value() <= 0.0 {
            return Err(DnaError::InvalidParameter(
                "clock and power must be positive".to_string(),
            ));
        }
        Ok(())
    }

    /// Sustained throughput in tera cell-updates per second.
    pub fn throughput(&self) -> Tcups {
        let cups = self.pe_count as f64
            * self.cells_per_pe as f64
            * self.fmax.to_hertz()
            * self.compute_efficiency;
        Tcups::new(cups / 1e12)
    }

    /// Sequence pairs compared per second for `len × len` strands.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn pairs_per_second(&self, len: usize) -> f64 {
        assert!(len > 0, "strand length must be positive");
        self.throughput().value() * 1e12 / (len * len) as f64
    }

    /// Energy efficiency in mega sequence-pairs per joule for `len × len`
    /// strands.
    pub fn pair_efficiency(&self, len: usize) -> MpairPerJoule {
        MpairPerJoule::new(self.pairs_per_second(len) / self.power.value() / 1e6)
    }

    /// Wall-clock seconds to compare `pairs` pairs of `len`-base strands.
    pub fn batch_time(&self, pairs: u64, len: usize) -> f64 {
        pairs as f64 / self.pairs_per_second(len)
    }
}

/// A software (CPU) baseline calibrated from the bit-parallel kernel: a
/// modern core sustains a few GCUPS per core with Myers' algorithm \[29\].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuBaseline {
    /// Cores used.
    pub cores: usize,
    /// Giga cell-updates per second per core.
    pub gcups_per_core: f64,
    /// Package power.
    pub power: Watts,
}

impl CpuBaseline {
    /// A 32-core server-class baseline.
    pub fn server() -> Self {
        Self {
            cores: 32,
            gcups_per_core: 2.5,
            power: Watts::new(250.0),
        }
    }

    /// Sustained throughput in TCUPS.
    pub fn throughput(&self) -> Tcups {
        Tcups::new(self.cores as f64 * self.gcups_per_core / 1000.0)
    }

    /// Energy efficiency for `len × len` strand pairs.
    pub fn pair_efficiency(&self, len: usize) -> MpairPerJoule {
        let pairs_per_s = self.throughput().value() * 1e12 / (len * len) as f64;
        MpairPerJoule::new(pairs_per_s / self.power.value() / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alveo_reaches_published_tcups() {
        let acc = AcceleratorConfig::alveo_u50();
        let t = acc.throughput().value();
        assert!(
            (t - 16.8).abs() / 16.8 < 0.03,
            "throughput {t:.2} TCUPS should match the published 16.8"
        );
    }

    #[test]
    fn alveo_reaches_published_pair_efficiency() {
        let acc = AcceleratorConfig::alveo_u50();
        // The paper's Mpair/J figure corresponds to ~150-base oligos.
        let eff = acc.pair_efficiency(150).value();
        assert!(
            (eff - 46.0).abs() / 46.0 < 0.05,
            "efficiency {eff:.1} Mpair/J should match the published 46"
        );
    }

    #[test]
    fn resource_and_compute_efficiency_near_90pct() {
        let acc = AcceleratorConfig::alveo_u50();
        assert!((acc.compute_efficiency - 0.9).abs() < 1e-9);
        assert!((acc.resource_utilization - 0.9).abs() < 1e-9);
    }

    #[test]
    fn fpga_dominates_cpu_baseline() {
        let acc = AcceleratorConfig::alveo_u50();
        let cpu = CpuBaseline::server();
        let speedup = acc.throughput().value() / cpu.throughput().value();
        assert!(speedup > 100.0, "FPGA speedup {speedup:.0}x");
        let energy_gain = acc.pair_efficiency(150).value() / cpu.pair_efficiency(150).value();
        assert!(energy_gain > 1000.0, "energy gain {energy_gain:.0}x");
    }

    #[test]
    fn batch_time_scales_quadratically_with_length() {
        let acc = AcceleratorConfig::alveo_u50();
        let short = acc.batch_time(1_000_000, 100);
        let long = acc.batch_time(1_000_000, 200);
        assert!((long / short - 4.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut acc = AcceleratorConfig::alveo_u50();
        assert!(acc.validate().is_ok());
        acc.pe_count = 0;
        assert!(acc.validate().is_err());
        let mut acc2 = AcceleratorConfig::alveo_u50();
        acc2.compute_efficiency = 1.5;
        assert!(acc2.validate().is_err());
        let mut acc3 = AcceleratorConfig::alveo_u50();
        acc3.power = Watts::new(0.0);
        assert!(acc3.validate().is_err());
    }

    #[test]
    fn throughput_linear_in_pes() {
        let mut acc = AcceleratorConfig::alveo_u50();
        let t1 = acc.throughput().value();
        acc.pe_count *= 2;
        assert!((acc.throughput().value() / t1 - 2.0).abs() < 1e-9);
    }
}
