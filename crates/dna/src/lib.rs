//! # f2-dna
//!
//! Reproduction of the DNA-based data-storage thrust of §VI: the DNAssim-style
//! simulation framework \[26\] and the FPGA edit-distance accelerator \[35\] that
//! reached **16.8 TCUPS / 46 Mpair/J at ~90% computing efficiency** on an
//! AMD-Xilinx Alveo U50.
//!
//! * [`sequence`] — DNA alphabets, bit ⇄ base codecs.
//! * [`codec`] — payload framing: indexed oligos, checksums, XOR-parity
//!   erasure groups.
//! * [`channel`] — the synthesis/sequencing noise channel of Fig. 6b:
//!   substitutions, insertions, deletions, strand dropout and copy counts.
//! * [`levenshtein`] — the similarity kernel: exact DP, Ukkonen banded, and
//!   Myers bit-parallel (blocked, arbitrary lengths) with cell-update (CUPS)
//!   accounting.
//! * [`cluster`] — read clustering by edit distance with k-mer prefilter and
//!   per-column consensus calling.
//! * [`pipeline`] — the end-to-end encode → synthesise → sequence → cluster
//!   → decode loop.
//! * [`accelerator`] — systolic-array model of the Alveo U50 accelerator:
//!   TCUPS, Mpair/J, computing efficiency vs resource usage.
//!
//! ```
//! use f2_dna::sequence::DnaSequence;
//!
//! let strand = DnaSequence::from_bytes(b"hi");
//! assert_eq!(strand.len(), 8); // 2 bits per base
//! assert_eq!(strand.to_bytes(), b"hi");
//! ```

pub mod accelerator;
pub mod alignment;
pub mod channel;
pub mod cluster;
pub mod codec;
pub mod constraints;
pub mod error;
pub mod experiments;
pub mod levenshtein;
pub mod pipeline;
pub mod sequence;

pub use error::DnaError;

/// Convenience result alias used across `f2-dna`.
pub type Result<T> = std::result::Result<T, DnaError>;
