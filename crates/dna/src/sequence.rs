//! DNA alphabets and bit ⇄ base codecs.
//!
//! Fig. 6a: "the digital encoding of the bases" — two bits per nucleotide,
//! `A=00, C=01, G=10, T=11` (the conventional mapping of DNA-storage
//! codecs).

use crate::error::DnaError;
use crate::Result;
use std::fmt;

/// One nucleotide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DnaBase {
    /// Adenine (bits `00`).
    A,
    /// Cytosine (bits `01`).
    C,
    /// Guanine (bits `10`).
    G,
    /// Thymine (bits `11`).
    T,
}

impl DnaBase {
    /// The four bases in bit order.
    pub const ALL: [DnaBase; 4] = [DnaBase::A, DnaBase::C, DnaBase::G, DnaBase::T];

    /// Two-bit encoding of the base.
    pub fn to_bits(self) -> u8 {
        match self {
            DnaBase::A => 0b00,
            DnaBase::C => 0b01,
            DnaBase::G => 0b10,
            DnaBase::T => 0b11,
        }
    }

    /// Base for a two-bit value (upper bits ignored).
    pub fn from_bits(bits: u8) -> Self {
        Self::ALL[(bits & 0b11) as usize]
    }

    /// Watson-Crick complement.
    pub fn complement(self) -> Self {
        match self {
            DnaBase::A => DnaBase::T,
            DnaBase::T => DnaBase::A,
            DnaBase::C => DnaBase::G,
            DnaBase::G => DnaBase::C,
        }
    }

    /// Parses a character (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`DnaError::InvalidBase`] for non-ACGT characters.
    pub fn from_char(c: char) -> Result<Self> {
        match c.to_ascii_uppercase() {
            'A' => Ok(DnaBase::A),
            'C' => Ok(DnaBase::C),
            'G' => Ok(DnaBase::G),
            'T' => Ok(DnaBase::T),
            other => Err(DnaError::InvalidBase(other)),
        }
    }

    /// Character representation.
    pub fn to_char(self) -> char {
        match self {
            DnaBase::A => 'A',
            DnaBase::C => 'C',
            DnaBase::G => 'G',
            DnaBase::T => 'T',
        }
    }
}

impl fmt::Display for DnaBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// An oligonucleotide strand.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct DnaSequence {
    bases: Vec<DnaBase>,
}

impl DnaSequence {
    /// Empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a base vector.
    pub fn from_bases(bases: Vec<DnaBase>) -> Self {
        Self { bases }
    }

    /// Encodes bytes at 2 bits/base, MSB first (4 bases per byte).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut bases = Vec::with_capacity(bytes.len() * 4);
        for &b in bytes {
            for shift in [6u8, 4, 2, 0] {
                bases.push(DnaBase::from_bits(b >> shift));
            }
        }
        Self { bases }
    }

    /// Decodes back to bytes (length must be a multiple of 4; trailing
    /// partial bytes are dropped).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.bases
            .chunks_exact(4)
            .map(|quad| {
                quad.iter()
                    .fold(0u8, |acc, base| (acc << 2) | base.to_bits())
            })
            .collect()
    }

    /// Parses an ACGT string.
    ///
    /// # Errors
    ///
    /// Returns [`DnaError::InvalidBase`] on the first invalid character.
    pub fn parse(s: &str) -> Result<Self> {
        Ok(Self {
            bases: s.chars().map(DnaBase::from_char).collect::<Result<_>>()?,
        })
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Borrow of the bases.
    pub fn bases(&self) -> &[DnaBase] {
        &self.bases
    }

    /// Mutable borrow of the bases (used by the noise channel).
    pub fn bases_mut(&mut self) -> &mut Vec<DnaBase> {
        &mut self.bases
    }

    /// GC content in `[0, 1]` (a synthesis-quality constraint in real
    /// pipelines); 0 for the empty strand.
    pub fn gc_content(&self) -> f64 {
        if self.bases.is_empty() {
            return 0.0;
        }
        let gc = self
            .bases
            .iter()
            .filter(|b| matches!(b, DnaBase::G | DnaBase::C))
            .count();
        gc as f64 / self.bases.len() as f64
    }

    /// Reverse complement of the strand.
    pub fn reverse_complement(&self) -> DnaSequence {
        DnaSequence {
            bases: self.bases.iter().rev().map(|b| b.complement()).collect(),
        }
    }
}

impl fmt::Display for DnaSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bases {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_mapping_round_trip() {
        for b in DnaBase::ALL {
            assert_eq!(DnaBase::from_bits(b.to_bits()), b);
        }
    }

    #[test]
    fn byte_round_trip() {
        let payload = b"The ICSC Flagship 2 project";
        let seq = DnaSequence::from_bytes(payload);
        assert_eq!(seq.len(), payload.len() * 4);
        assert_eq!(seq.to_bytes(), payload);
    }

    #[test]
    fn parse_and_display() {
        let seq = DnaSequence::parse("ACGTacgt").expect("valid");
        assert_eq!(seq.to_string(), "ACGTACGT");
        assert!(DnaSequence::parse("ACGX").is_err());
    }

    #[test]
    fn complement_is_involution() {
        for b in DnaBase::ALL {
            assert_eq!(b.complement().complement(), b);
        }
        let seq = DnaSequence::parse("ACGGT").expect("valid");
        assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn gc_content() {
        let seq = DnaSequence::parse("GGCC").expect("valid");
        assert_eq!(seq.gc_content(), 1.0);
        let seq2 = DnaSequence::parse("AATT").expect("valid");
        assert_eq!(seq2.gc_content(), 0.0);
        let seq3 = DnaSequence::parse("ACGT").expect("valid");
        assert_eq!(seq3.gc_content(), 0.5);
        assert_eq!(DnaSequence::new().gc_content(), 0.0);
    }

    #[test]
    fn known_encoding() {
        // 0b00011011 = A C G T
        let seq = DnaSequence::from_bytes(&[0b0001_1011]);
        assert_eq!(seq.to_string(), "ACGT");
    }
}
