//! Error type for the DNA-storage crate.

use std::error::Error;
use std::fmt;

/// Error raised by DNA-storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnaError {
    /// A sequence contained an invalid character.
    InvalidBase(char),
    /// Codec framing was violated (bad length, bad index, checksum…).
    CodecError(String),
    /// Decoding failed to recover the payload.
    DecodeFailure(String),
    /// An accelerator or channel parameter was out of range.
    InvalidParameter(String),
}

impl fmt::Display for DnaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnaError::InvalidBase(c) => write!(f, "invalid DNA base {c:?}"),
            DnaError::CodecError(msg) => write!(f, "codec error: {msg}"),
            DnaError::DecodeFailure(msg) => write!(f, "decode failure: {msg}"),
            DnaError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for DnaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn check<T: Send + Sync + Error>() {}
        check::<DnaError>();
        assert!(DnaError::InvalidBase('x').to_string().contains('x'));
        assert!(!DnaError::CodecError("short".into()).to_string().is_empty());
    }
}
