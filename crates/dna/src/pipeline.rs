//! The end-to-end DNA storage pipeline of Fig. 6b.
//!
//! encode → synthesise → (noise channel) → sequence → cluster → consensus →
//! decode, with statistics at every stage — the loop the DNAssim framework
//! \[26\] simulates and whose decoding phase motivates the FPGA accelerator.

use crate::alignment::consensus_aligned;
use crate::channel::ChannelModel;
use crate::cluster::{cluster_reads, consensus, ClusterConfig};
use crate::codec::{decode, encode, CodecConfig, DecodeStats};
use crate::sequence::DnaSequence;
use crate::Result;
use f2_core::rng::rng_for;

/// Consensus algorithm used to collapse each read cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsensusMode {
    /// Length-filtered column voting (fast; substitution-robust).
    ColumnVote,
    /// Draft-anchored alignment voting with the given band
    /// (indel-robust; the production decoder's choice for nanopore-class
    /// channels).
    Aligned {
        /// Alignment band (maximum edits tolerated per read).
        band: usize,
    },
}

/// Configuration of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Codec framing.
    pub codec: CodecConfig,
    /// Channel error model.
    pub channel: ChannelModel,
    /// Clustering parameters.
    pub cluster: ClusterConfig,
    /// Consensus algorithm.
    pub consensus: ConsensusMode,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            codec: CodecConfig::default(),
            channel: ChannelModel::typical(),
            cluster: ClusterConfig::default(),
            consensus: ConsensusMode::ColumnVote,
        }
    }
}

/// Statistics of one end-to-end run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Oligos synthesised.
    pub strands_written: usize,
    /// Raw reads returned by the sequencer.
    pub reads: usize,
    /// Clusters formed.
    pub clusters: usize,
    /// Codec-level decode statistics.
    pub decode: DecodeStats,
    /// Whether the payload was recovered bit-exactly.
    pub payload_recovered: bool,
    /// Banded distance computations spent in clustering (the accelerator's
    /// target workload).
    pub distance_calls: u64,
}

/// Runs the full pipeline on `payload` with deterministic noise derived from
/// `seed`. Returns the recovered payload (if decodable) and the report.
///
/// # Errors
///
/// Propagates configuration errors; decode failures are reported in the
/// `PipelineReport` (with `payload_recovered = false`), not as errors.
pub fn run_pipeline(
    payload: &[u8],
    cfg: &PipelineConfig,
    seed: u64,
) -> Result<(Option<Vec<u8>>, PipelineReport)> {
    cfg.channel.validate()?;
    let archive = encode(payload, cfg.codec)?;
    let mut rng = rng_for(seed, "dna-pipeline");
    let reads = cfg.channel.sequence_pool(&archive.strands, &mut rng);

    let clustering = cluster_reads(&reads, &cfg.cluster);
    let consensi: Vec<DnaSequence> = clustering
        .clusters
        .iter()
        .map(|cluster| {
            let members: Vec<&DnaSequence> = cluster.iter().map(|&i| &reads[i]).collect();
            match cfg.consensus {
                ConsensusMode::ColumnVote => consensus(&members),
                ConsensusMode::Aligned { band } => consensus_aligned(&members, band),
            }
        })
        .collect();

    let decode_result = decode(&consensi, archive.payload_len, cfg.codec);
    let (recovered, decode_stats) = match decode_result {
        Ok((data, stats)) => {
            let ok = data == payload;
            (if ok { Some(data) } else { None }, stats)
        }
        Err(_) => (None, DecodeStats::default()),
    };

    let report = PipelineReport {
        strands_written: archive.strands.len(),
        reads: reads.len(),
        clusters: clustering.clusters.len(),
        decode: decode_stats,
        payload_recovered: recovered.is_some(),
        distance_calls: clustering.distance_calls,
    };
    Ok((recovered, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAYLOAD: &[u8] =
        b"DNA can endure for thousands of years with minimal power consumption, \
          reaching densities of approximately 100 PB per gram.";

    #[test]
    fn round_trip_under_typical_noise() {
        let cfg = PipelineConfig::default();
        let (recovered, report) = run_pipeline(PAYLOAD, &cfg, 42).expect("valid config");
        assert!(
            report.payload_recovered,
            "typical channel should round-trip: {report:?}"
        );
        assert_eq!(recovered.expect("recovered"), PAYLOAD);
        assert!(report.reads > report.strands_written);
        assert!(report.distance_calls > 0);
    }

    #[test]
    fn noiseless_channel_trivially_recovers() {
        let mut cfg = PipelineConfig::default();
        cfg.channel.substitution = 0.0;
        cfg.channel.insertion = 0.0;
        cfg.channel.deletion = 0.0;
        cfg.channel.dropout = 0.0;
        let (_, report) = run_pipeline(PAYLOAD, &cfg, 1).expect("valid config");
        assert!(report.payload_recovered);
        assert_eq!(report.decode.parity_recovered, 0);
        // Clusters should match written strands exactly.
        assert_eq!(report.clusters, report.strands_written);
    }

    #[test]
    fn extreme_noise_fails_gracefully() {
        let mut cfg = PipelineConfig::default();
        cfg.channel.substitution = 0.4;
        cfg.channel.insertion = 0.1;
        cfg.channel.deletion = 0.1;
        let (recovered, report) = run_pipeline(PAYLOAD, &cfg, 2).expect("valid config");
        assert!(!report.payload_recovered);
        assert!(recovered.is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = PipelineConfig::default();
        let a = run_pipeline(PAYLOAD, &cfg, 7).expect("valid config");
        let b = run_pipeline(PAYLOAD, &cfg, 7).expect("valid config");
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn aligned_consensus_survives_harsher_channels() {
        // Indel-heavy channel where column voting starts failing.
        let mut cfg = PipelineConfig {
            channel: ChannelModel {
                substitution: 0.01,
                insertion: 0.012,
                deletion: 0.012,
                dropout: 0.0,
                mean_coverage: 14.0,
            },
            ..PipelineConfig::default()
        };
        let mut column_ok = 0;
        let mut aligned_ok = 0;
        for seed in 0..6 {
            cfg.consensus = ConsensusMode::ColumnVote;
            if run_pipeline(PAYLOAD, &cfg, seed)
                .expect("valid config")
                .1
                .payload_recovered
            {
                column_ok += 1;
            }
            cfg.consensus = ConsensusMode::Aligned { band: 16 };
            if run_pipeline(PAYLOAD, &cfg, seed)
                .expect("valid config")
                .1
                .payload_recovered
            {
                aligned_ok += 1;
            }
        }
        assert!(
            aligned_ok >= column_ok,
            "aligned ({aligned_ok}/6) must not lose to column vote ({column_ok}/6)"
        );
        assert!(
            aligned_ok >= 5,
            "aligned consensus should recover: {aligned_ok}/6"
        );
    }

    #[test]
    fn dropout_is_absorbed_by_parity() {
        let mut cfg = PipelineConfig::default();
        cfg.channel.substitution = 0.0;
        cfg.channel.insertion = 0.0;
        cfg.channel.deletion = 0.0;
        cfg.channel.dropout = 0.04; // a few strands vanish
        cfg.channel.mean_coverage = 6.0;
        let mut recovered_runs = 0;
        for seed in 0..5 {
            let (_, report) = run_pipeline(PAYLOAD, &cfg, seed).expect("valid config");
            if report.payload_recovered {
                recovered_runs += 1;
            }
        }
        assert!(
            recovered_runs >= 4,
            "parity should absorb light dropout ({recovered_runs}/5 runs recovered)"
        );
    }
}

f2_core::impl_to_json!(PipelineReport {
    strands_written,
    reads,
    clusters,
    decode,
    payload_recovered,
    distance_calls,
});
