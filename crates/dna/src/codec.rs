//! Payload framing: indexed oligos with checksums and XOR-parity erasure
//! groups.
//!
//! Real DNA archives (Grass et al. \[25\]) wrap payloads in inner checksums
//! and an outer erasure code so that strand dropout and residual consensus
//! errors are recoverable. This codec implements that structure in its
//! simplest dependable form: a 2-byte strand index, a 1-byte additive
//! checksum, and one XOR-parity strand per group of data strands (any single
//! missing strand per group is reconstructable).

use crate::error::DnaError;
use crate::sequence::DnaSequence;
use crate::Result;

/// Codec framing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecConfig {
    /// Payload bytes per strand.
    pub data_per_strand: usize,
    /// Data strands per parity group.
    pub group_size: usize,
}

impl Default for CodecConfig {
    /// 24 data bytes per strand (≈110-base oligos), groups of 8.
    fn default() -> Self {
        Self {
            data_per_strand: 24,
            group_size: 8,
        }
    }
}

impl CodecConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DnaError::InvalidParameter`] on zero sizes.
    pub fn validate(&self) -> Result<()> {
        if self.data_per_strand == 0 || self.group_size == 0 {
            return Err(DnaError::InvalidParameter(
                "codec sizes must be positive".to_string(),
            ));
        }
        Ok(())
    }

    /// Oligo length in bases for this configuration.
    pub fn strand_bases(&self) -> usize {
        (2 + self.data_per_strand + 1) * 4
    }
}

/// An encoded archive: the synthesised oligo pool plus decode metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Archive {
    /// All oligos (data strands then parity strands, but decoding does not
    /// rely on order).
    pub strands: Vec<DnaSequence>,
    /// Original payload length in bytes.
    pub payload_len: usize,
    /// Framing parameters.
    pub config: CodecConfig,
}

const PARITY_FLAG: u16 = 0x8000;

fn checksum(bytes: &[u8]) -> u8 {
    bytes
        .iter()
        .fold(0u8, |acc, &b| acc.wrapping_mul(31).wrapping_add(b))
}

/// Index-seeded keystream byte. Scrambling each strand's payload with a
/// per-index mask is the standard "randomization" step of DNA codecs: it
/// decorrelates strands that carry similar data (and balances GC content),
/// which is what keeps distinct oligos from merging in the clustering stage.
fn keystream(index: u16, position: usize) -> u8 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (index as u64);
    h = h.wrapping_mul(0x0000_0100_0000_01B3);
    h ^= position as u64;
    h = h.wrapping_mul(0x0000_0100_0000_01B3);
    (h >> 32) as u8
}

fn frame(index: u16, data: &[u8]) -> DnaSequence {
    let mut bytes = Vec::with_capacity(3 + data.len());
    bytes.extend_from_slice(&index.to_be_bytes());
    bytes.extend(
        data.iter()
            .enumerate()
            .map(|(i, &b)| b ^ keystream(index, i)),
    );
    bytes.push(checksum(&bytes));
    DnaSequence::from_bytes(&bytes)
}

fn unframe(strand: &DnaSequence, data_len: usize) -> Option<(u16, Vec<u8>)> {
    let bytes = strand.to_bytes();
    if bytes.len() != 3 + data_len {
        return None;
    }
    let (body, check) = bytes.split_at(bytes.len() - 1);
    if checksum(body) != check[0] {
        return None;
    }
    let index = u16::from_be_bytes([body[0], body[1]]);
    let data = body[2..]
        .iter()
        .enumerate()
        .map(|(i, &b)| b ^ keystream(index, i))
        .collect();
    Some((index, data))
}

/// Encodes a payload into a constraint-compliant archive: every strand is
/// rotation-coded ([`crate::constraints::rotation_encode`]), so the pool is
/// homopolymer-free at a 1.5× length overhead.
///
/// # Errors
///
/// Same as [`encode`].
pub fn encode_constrained(payload: &[u8], config: CodecConfig) -> Result<Archive> {
    let mut archive = encode(payload, config)?;
    archive.strands = archive
        .strands
        .iter()
        .map(|s| crate::constraints::rotation_encode(&s.to_bytes()))
        .collect();
    Ok(archive)
}

/// Decodes an archive produced by [`encode_constrained`].
///
/// Strands whose rotation codewords are corrupt count as checksum rejects.
///
/// # Errors
///
/// Same as [`decode`].
pub fn decode_constrained(
    strands: &[DnaSequence],
    payload_len: usize,
    config: CodecConfig,
) -> Result<(Vec<u8>, DecodeStats)> {
    let mut rejects = 0usize;
    let inner: Vec<DnaSequence> = strands
        .iter()
        .filter_map(|s| match crate::constraints::rotation_decode(s) {
            Ok(bytes) => Some(DnaSequence::from_bytes(&bytes)),
            Err(_) => {
                rejects += 1;
                None
            }
        })
        .collect();
    let (payload, mut stats) = decode(&inner, payload_len, config)?;
    stats.rejected += rejects;
    Ok((payload, stats))
}

/// Encodes a payload into an oligo archive.
///
/// # Errors
///
/// Returns [`DnaError::InvalidParameter`] for bad configs or payloads that
/// need more than 2¹⁵ strands (index space).
pub fn encode(payload: &[u8], config: CodecConfig) -> Result<Archive> {
    config.validate()?;
    let n_strands = payload.len().div_ceil(config.data_per_strand).max(1);
    if n_strands as u64 >= PARITY_FLAG as u64 {
        return Err(DnaError::InvalidParameter(format!(
            "payload needs {n_strands} strands, exceeding the 15-bit index space"
        )));
    }
    let mut strands = Vec::new();
    for i in 0..n_strands {
        let start = i * config.data_per_strand;
        let end = (start + config.data_per_strand).min(payload.len());
        let mut data = payload[start..end].to_vec();
        data.resize(config.data_per_strand, 0);
        strands.push(frame(i as u16, &data));
    }
    // Parity strands: XOR of each group's data blocks.
    let n_groups = n_strands.div_ceil(config.group_size);
    for g in 0..n_groups {
        let mut parity = vec![0u8; config.data_per_strand];
        for i in (g * config.group_size)..((g + 1) * config.group_size).min(n_strands) {
            let start = i * config.data_per_strand;
            for (k, p) in parity.iter_mut().enumerate() {
                let idx = start + k;
                *p ^= if idx < payload.len() { payload[idx] } else { 0 };
            }
        }
        strands.push(frame(PARITY_FLAG | g as u16, &parity));
    }
    Ok(Archive {
        strands,
        payload_len: payload.len(),
        config,
    })
}

/// Statistics of a decode attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Data strands recovered directly.
    pub direct: usize,
    /// Data strands reconstructed from parity.
    pub parity_recovered: usize,
    /// Data strands lost beyond repair.
    pub lost: usize,
    /// Strands whose checksum rejected them.
    pub rejected: usize,
}

/// Decodes a set of recovered strands (post-consensus) back to the payload.
///
/// # Errors
///
/// Returns [`DnaError::DecodeFailure`] if any group lost more strands than
/// parity can repair.
#[allow(clippy::needless_range_loop)]
pub fn decode(
    strands: &[DnaSequence],
    payload_len: usize,
    config: CodecConfig,
) -> Result<(Vec<u8>, DecodeStats)> {
    config.validate()?;
    let n_strands = payload_len.div_ceil(config.data_per_strand).max(1);
    let mut data: Vec<Option<Vec<u8>>> = vec![None; n_strands];
    let n_groups = n_strands.div_ceil(config.group_size);
    let mut parity: Vec<Option<Vec<u8>>> = vec![None; n_groups];
    let mut stats = DecodeStats::default();

    for strand in strands {
        match unframe(strand, config.data_per_strand) {
            Some((index, bytes)) => {
                if index & PARITY_FLAG != 0 {
                    let g = (index & !PARITY_FLAG) as usize;
                    if g < n_groups {
                        parity[g] = Some(bytes);
                    }
                } else if (index as usize) < n_strands {
                    if data[index as usize].is_none() {
                        stats.direct += 1;
                    }
                    data[index as usize] = Some(bytes);
                }
            }
            None => stats.rejected += 1,
        }
    }

    // Parity repair: one missing strand per group is recoverable.
    for g in 0..n_groups {
        let members: Vec<usize> =
            ((g * config.group_size)..((g + 1) * config.group_size).min(n_strands)).collect();
        let missing: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&i| data[i].is_none())
            .collect();
        match (missing.len(), &parity[g]) {
            (0, _) => {}
            (1, Some(p)) => {
                let mut rec = p.clone();
                for &i in &members {
                    if let Some(d) = &data[i] {
                        for (r, b) in rec.iter_mut().zip(d) {
                            *r ^= b;
                        }
                    }
                }
                data[missing[0]] = Some(rec);
                stats.parity_recovered += 1;
            }
            (k, _) => {
                stats.lost += k;
            }
        }
    }

    if stats.lost > 0 {
        return Err(DnaError::DecodeFailure(format!(
            "{} strands unrecoverable after parity repair",
            stats.lost
        )));
    }

    let mut payload = Vec::with_capacity(payload_len);
    for d in data.into_iter() {
        payload.extend_from_slice(&d.expect("all strands present after repair"));
    }
    payload.truncate(payload_len);
    Ok((payload, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAYLOAD: &[u8] = b"In-memory computing minimises data movement between CPU and RAM.";

    #[test]
    fn round_trip_without_loss() {
        let archive = encode(PAYLOAD, CodecConfig::default()).expect("encodable");
        let (decoded, stats) =
            decode(&archive.strands, archive.payload_len, archive.config).expect("decodable");
        assert_eq!(decoded, PAYLOAD);
        assert_eq!(stats.parity_recovered, 0);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn strand_count_includes_parity() {
        let cfg = CodecConfig {
            data_per_strand: 8,
            group_size: 4,
        };
        let archive = encode(&[0u8; 64], cfg).expect("encodable");
        // 8 data strands + 2 parity strands.
        assert_eq!(archive.strands.len(), 10);
        assert_eq!(archive.strands[0].len(), cfg.strand_bases());
    }

    #[test]
    fn single_loss_per_group_is_repaired() {
        let cfg = CodecConfig {
            data_per_strand: 8,
            group_size: 4,
        };
        let archive = encode(PAYLOAD, cfg).expect("encodable");
        let mut strands = archive.strands.clone();
        strands.remove(2); // drop one data strand
        let (decoded, stats) = decode(&strands, archive.payload_len, cfg).expect("repairable");
        assert_eq!(decoded, PAYLOAD);
        assert_eq!(stats.parity_recovered, 1);
    }

    #[test]
    fn double_loss_in_group_fails() {
        let cfg = CodecConfig {
            data_per_strand: 8,
            group_size: 4,
        };
        let archive = encode(PAYLOAD, cfg).expect("encodable");
        let mut strands = archive.strands.clone();
        strands.remove(1);
        strands.remove(1); // two strands of group 0
        assert!(decode(&strands, archive.payload_len, cfg).is_err());
    }

    #[test]
    fn corrupted_strand_rejected_by_checksum() {
        let archive = encode(PAYLOAD, CodecConfig::default()).expect("encodable");
        let mut strands = archive.strands.clone();
        // Flip one base in strand 0's payload region.
        let bases = strands[0].bases_mut();
        bases[20] = bases[20].complement();
        let (decoded, stats) =
            decode(&strands, archive.payload_len, archive.config).expect("repairable");
        assert_eq!(decoded, PAYLOAD);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.parity_recovered, 1);
    }

    #[test]
    fn constrained_archive_is_homopolymer_free_and_round_trips() {
        use crate::constraints::{max_homopolymer, ConstraintSpec};
        let cfg = CodecConfig::default();
        let archive = encode_constrained(PAYLOAD, cfg).expect("encodable");
        // The rotation code eliminates homopolymers outright and keeps GC
        // loosely balanced (tight per-window GC shaping is a separate
        // screening step in real flows).
        let spec = ConstraintSpec {
            max_homopolymer: 1,
            gc_min: 0.2,
            gc_max: 0.8,
            gc_window: 50,
        };
        for strand in &archive.strands {
            assert_eq!(max_homopolymer(strand), 1);
            assert!(spec.check(strand).is_ok(), "constraint violated");
            // 1.5x the dense strand length.
            assert_eq!(strand.len(), cfg.strand_bases() * 3 / 2);
        }
        let (decoded, _) =
            decode_constrained(&archive.strands, archive.payload_len, cfg).expect("decodable");
        assert_eq!(decoded, PAYLOAD);
    }

    #[test]
    fn constrained_decode_counts_corrupt_codewords() {
        let cfg = CodecConfig {
            data_per_strand: 8,
            group_size: 4,
        };
        let archive = encode_constrained(PAYLOAD, cfg).expect("encodable");
        let mut strands = archive.strands.clone();
        // Corrupt one strand into an invalid rotation codeword (repeat).
        let bases = strands[0].bases_mut();
        bases[1] = bases[0];
        let (decoded, stats) =
            decode_constrained(&strands, archive.payload_len, cfg).expect("repairable");
        assert_eq!(decoded, PAYLOAD);
        assert!(stats.rejected >= 1);
        assert_eq!(stats.parity_recovered, 1);
    }

    #[test]
    fn empty_payload() {
        let archive = encode(&[], CodecConfig::default()).expect("encodable");
        let (decoded, _) =
            decode(&archive.strands, archive.payload_len, archive.config).expect("decodable");
        assert!(decoded.is_empty());
    }

    #[test]
    fn oversized_payload_rejected() {
        let cfg = CodecConfig {
            data_per_strand: 1,
            group_size: 8,
        };
        assert!(encode(&vec![0u8; 40_000], cfg).is_err());
    }

    #[test]
    fn zero_config_rejected() {
        assert!(encode(
            b"x",
            CodecConfig {
                data_per_strand: 0,
                group_size: 1
            }
        )
        .is_err());
    }
}

f2_core::impl_to_json!(DecodeStats {
    direct,
    parity_recovered,
    lost,
    rejected
});
