//! Levenshtein (edit) distance kernels with cell-update accounting.
//!
//! §VI: "The similarity index is determined using the edit distance, also
//! known as the Levenshtein distance … there is a surge of interest in FPGA
//! accelerators for edit distance." Three kernels are provided, matching the
//! algorithm families the paper's related work spans:
//!
//! * [`levenshtein_dp`] — the exact O(n·m) dynamic program (the functional
//!   reference and the unit of "cell updates" that CUPS counts).
//! * [`levenshtein_banded`] — Ukkonen's band-limited variant, the
//!   "approximated distance technique" trade-off (\[33\], \[34\]).
//! * [`levenshtein_myers`] — Myers' bit-parallel algorithm (blocked for
//!   arbitrary pattern lengths), the formulation the GPU work \[29\] and the
//!   FPGA accelerator \[35\] parallelise.

use crate::sequence::DnaSequence;

/// Outcome of one distance computation, with work accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceResult {
    /// The edit distance (`None` if a banded search exceeded its band).
    pub distance: Option<usize>,
    /// DP cell updates performed (the CUPS unit).
    pub cell_updates: u64,
}

/// Exact Levenshtein distance by full dynamic programming.
pub fn levenshtein_dp(a: &DnaSequence, b: &DnaSequence) -> DistanceResult {
    let (a, b) = (a.bases(), b.bases());
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return DistanceResult {
            distance: Some(n.max(m)),
            cell_updates: 0,
        };
    }
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut curr = vec![0usize; m + 1];
    for i in 1..=n {
        curr[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            curr[j] = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    DistanceResult {
        distance: Some(prev[m]),
        cell_updates: (n * m) as u64,
    }
}

/// Ukkonen band-limited Levenshtein: exact when the true distance ≤ `band`,
/// otherwise returns `None` having done only O(n·band) work.
pub fn levenshtein_banded(a: &DnaSequence, b: &DnaSequence, band: usize) -> DistanceResult {
    let (av, bv) = (a.bases(), b.bases());
    let (n, m) = (av.len(), bv.len());
    if n.abs_diff(m) > band {
        return DistanceResult {
            distance: None,
            cell_updates: 0,
        };
    }
    if n == 0 || m == 0 {
        return DistanceResult {
            distance: Some(n.max(m)),
            cell_updates: 0,
        };
    }
    const BIG: usize = usize::MAX / 2;
    let mut prev = vec![BIG; m + 1];
    let mut curr = vec![BIG; m + 1];
    for (j, p) in prev.iter_mut().enumerate().take(band.min(m) + 1) {
        *p = j;
    }
    let mut updates = 0u64;
    for i in 1..=n {
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        curr.fill(BIG);
        if lo == 1 {
            curr[0] = i;
        }
        for j in lo..=hi {
            let cost = usize::from(av[i - 1] != bv[j - 1]);
            let mut best = prev[j - 1] + cost;
            if prev[j] < BIG {
                best = best.min(prev[j] + 1);
            }
            if curr[j - 1] < BIG {
                best = best.min(curr[j - 1] + 1);
            }
            curr[j] = best;
            updates += 1;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = prev[m];
    DistanceResult {
        distance: if d <= band { Some(d) } else { None },
        cell_updates: updates,
    }
}

/// Myers bit-parallel Levenshtein (blocked variant, Hyyrö 2003), exact for
/// arbitrary lengths. Processes 64 pattern rows per machine word per text
/// column — the parallelism the FPGA accelerator implements in silicon.
pub fn levenshtein_myers(a: &DnaSequence, b: &DnaSequence) -> DistanceResult {
    let pattern = a.bases();
    let text = b.bases();
    let n = pattern.len();
    let m = text.len();
    if n == 0 || m == 0 {
        return DistanceResult {
            distance: Some(n.max(m)),
            cell_updates: 0,
        };
    }
    let words = n.div_ceil(64);
    // Pattern-match bitmasks per base per word.
    let mut peq = vec![[0u64; 4]; words];
    for (i, base) in pattern.iter().enumerate() {
        peq[i / 64][base.to_bits() as usize] |= 1u64 << (i % 64);
    }
    let mut vp = vec![u64::MAX; words];
    let mut vn = vec![0u64; words];
    // Bit of the score row (n-1) inside the last word.
    let last_bit = 1u64 << ((n - 1) % 64);
    let mut score = n as i64;

    // Hyyrö's block advance: horizontal delta `hin` ∈ {-1, 0, +1} enters at
    // the block's low boundary, `hout` leaves at its high boundary.
    for tb in text {
        let eq_idx = tb.to_bits() as usize;
        let mut hin: i64 = 1; // row-0 boundary of the DP matrix is +1 per column
        for w in 0..words {
            let mut eq = peq[w][eq_idx];
            if hin < 0 {
                eq |= 1;
            }
            let pv = vp[w];
            let mv = vn[w];
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let mut ph = mv | !(xh | pv);
            let mut mh = pv & xh;
            let high = if w == words - 1 { last_bit } else { 1u64 << 63 };
            let mut hout = 0i64;
            if ph & high != 0 {
                hout = 1;
            } else if mh & high != 0 {
                hout = -1;
            }
            ph <<= 1;
            mh <<= 1;
            if hin > 0 {
                ph |= 1;
            } else if hin < 0 {
                mh |= 1;
            }
            vp[w] = mh | !(xv | ph);
            vn[w] = ph & xv;
            hin = hout;
        }
        score += hin;
    }
    DistanceResult {
        distance: Some(score.max(0) as usize),
        cell_updates: (n * m) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::DnaSequence;
    use f2_core::rng::rng_for;
    use f2_core::rng::Rng;

    fn seq(s: &str) -> DnaSequence {
        DnaSequence::parse(s).expect("valid test sequence")
    }

    fn random_seq(len: usize, rng: &mut impl Rng) -> DnaSequence {
        use crate::sequence::DnaBase;
        DnaSequence::from_bases((0..len).map(|_| DnaBase::from_bits(rng.gen())).collect())
    }

    #[test]
    fn dp_known_distances() {
        assert_eq!(levenshtein_dp(&seq("ACGT"), &seq("ACGT")).distance, Some(0));
        assert_eq!(levenshtein_dp(&seq("ACGT"), &seq("AGGT")).distance, Some(1));
        assert_eq!(levenshtein_dp(&seq("ACGT"), &seq("CGT")).distance, Some(1));
        assert_eq!(levenshtein_dp(&seq("ACGT"), &seq("TGCA")).distance, Some(4));
        assert_eq!(levenshtein_dp(&seq(""), &seq("ACG")).distance, Some(3));
        assert_eq!(levenshtein_dp(&seq("AC"), &seq("")).distance, Some(2));
    }

    #[test]
    fn dp_cell_updates() {
        let r = levenshtein_dp(&seq("ACGT"), &seq("ACG"));
        assert_eq!(r.cell_updates, 12);
    }

    #[test]
    fn myers_matches_dp_on_random_pairs() {
        let mut rng = rng_for(1, "myers");
        for _ in 0..50 {
            let la = rng.gen_range(1..200usize);
            let lb = rng.gen_range(1..200usize);
            let a = random_seq(la, &mut rng);
            let b = random_seq(lb, &mut rng);
            let dp = levenshtein_dp(&a, &b).distance;
            let my = levenshtein_myers(&a, &b).distance;
            assert_eq!(dp, my, "mismatch for lengths {la}/{lb}");
        }
    }

    #[test]
    fn myers_multiword_patterns() {
        let mut rng = rng_for(2, "myers-long");
        for len in [64, 65, 128, 129, 200] {
            let a = random_seq(len, &mut rng);
            let b = random_seq(len + 7, &mut rng);
            assert_eq!(
                levenshtein_dp(&a, &b).distance,
                levenshtein_myers(&a, &b).distance,
                "length {len}"
            );
        }
    }

    #[test]
    fn banded_exact_within_band() {
        let mut rng = rng_for(3, "banded");
        for _ in 0..30 {
            let a = random_seq(60, &mut rng);
            // Mutate a few bases to stay near.
            let mut b = a.clone();
            for _ in 0..3 {
                let i = rng.gen_range(0..b.len());
                b.bases_mut()[i] = crate::sequence::DnaBase::from_bits(rng.gen());
            }
            let dp = levenshtein_dp(&a, &b).distance.expect("exact");
            let banded = levenshtein_banded(&a, &b, 8).distance;
            assert_eq!(banded, Some(dp));
        }
    }

    #[test]
    fn banded_rejects_far_pairs_cheaply() {
        let mut rng = rng_for(4, "banded-far");
        let a = random_seq(100, &mut rng);
        let b = random_seq(100, &mut rng);
        let full = levenshtein_dp(&a, &b);
        let banded = levenshtein_banded(&a, &b, 5);
        // Random 100-mers differ by far more than 5.
        assert_eq!(banded.distance, None);
        assert!(banded.cell_updates < full.cell_updates / 3);
    }

    #[test]
    fn banded_length_gap_shortcut() {
        let a = seq("ACGTACGTACGT");
        let b = seq("AC");
        let r = levenshtein_banded(&a, &b, 3);
        assert_eq!(r.distance, None);
        assert_eq!(r.cell_updates, 0);
    }

    #[test]
    fn distance_is_a_metric() {
        let mut rng = rng_for(5, "metric");
        let seqs: Vec<DnaSequence> = (0..6).map(|_| random_seq(30, &mut rng)).collect();
        let d =
            |x: &DnaSequence, y: &DnaSequence| levenshtein_dp(x, y).distance.expect("exact") as i64;
        for x in &seqs {
            assert_eq!(d(x, x), 0);
            for y in &seqs {
                assert_eq!(d(x, y), d(y, x), "symmetry");
                for z in &seqs {
                    assert!(d(x, z) <= d(x, y) + d(y, z), "triangle inequality");
                }
            }
        }
    }

    #[test]
    fn single_indel_detected() {
        let a = seq("ACGTACGT");
        let mut b_bases = a.bases().to_vec();
        b_bases.insert(3, crate::sequence::DnaBase::T);
        let b = DnaSequence::from_bases(b_bases);
        assert_eq!(levenshtein_dp(&a, &b).distance, Some(1));
        assert_eq!(levenshtein_myers(&a, &b).distance, Some(1));
    }
}
