//! Biochemical sequence constraints and the homopolymer-free rotation code.
//!
//! Real synthesis and sequencing chemistry (Fig. 6) degrades sharply on long
//! homopolymer runs (AAAA…) and unbalanced GC content, so production DNA
//! codecs enforce constraints on every oligo and, when necessary, trade
//! density for compliance. This module provides the constraint checker and
//! the classic *rotation code*: each payload trit selects one of the three
//! bases different from the previous one, which makes runs of length > 1
//! impossible by construction (Goldman et al.'s encoding discipline) at a
//! density cost of log₂3 ≈ 1.58 bits/base vs the unconstrained 2 bits/base.

use crate::error::DnaError;
use crate::sequence::{DnaBase, DnaSequence};
use crate::Result;

/// Biochemical constraints an oligo must satisfy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstraintSpec {
    /// Longest tolerated homopolymer run.
    pub max_homopolymer: usize,
    /// Minimum GC fraction over each window.
    pub gc_min: f64,
    /// Maximum GC fraction over each window.
    pub gc_max: f64,
    /// Sliding-window length for the GC check (whole strand if larger).
    pub gc_window: usize,
}

impl ConstraintSpec {
    /// Typical synthesis-vendor limits: runs ≤ 3, GC in 40–60 % per 50-mer.
    pub fn synthesis_default() -> Self {
        Self {
            max_homopolymer: 3,
            gc_min: 0.40,
            gc_max: 0.60,
            gc_window: 50,
        }
    }

    /// Checks a strand; returns the first violation found.
    ///
    /// # Errors
    ///
    /// Returns [`DnaError::CodecError`] describing the violation.
    pub fn check(&self, seq: &DnaSequence) -> Result<()> {
        let run = max_homopolymer(seq);
        if run > self.max_homopolymer {
            return Err(DnaError::CodecError(format!(
                "homopolymer run of {run} exceeds limit {}",
                self.max_homopolymer
            )));
        }
        let window = self.gc_window.min(seq.len().max(1));
        let (lo, hi) = gc_window_range(seq, window);
        if seq.len() >= window && (lo < self.gc_min || hi > self.gc_max) {
            return Err(DnaError::CodecError(format!(
                "windowed GC content {lo:.2}..{hi:.2} outside {:.2}..{:.2}",
                self.gc_min, self.gc_max
            )));
        }
        Ok(())
    }
}

/// Longest homopolymer run in the strand (0 for the empty strand).
pub fn max_homopolymer(seq: &DnaSequence) -> usize {
    let bases = seq.bases();
    let mut best = 0;
    let mut run = 0;
    let mut last: Option<DnaBase> = None;
    for &b in bases {
        if Some(b) == last {
            run += 1;
        } else {
            run = 1;
            last = Some(b);
        }
        best = best.max(run);
    }
    best
}

/// Minimum and maximum GC fraction over all windows of the given length.
/// Returns `(0, 0)` for strands shorter than one base.
pub fn gc_window_range(seq: &DnaSequence, window: usize) -> (f64, f64) {
    let bases = seq.bases();
    if bases.is_empty() || window == 0 {
        return (0.0, 0.0);
    }
    let window = window.min(bases.len());
    let is_gc = |b: &DnaBase| matches!(b, DnaBase::G | DnaBase::C);
    let mut count = bases[..window].iter().filter(|b| is_gc(b)).count();
    let mut lo = count;
    let mut hi = count;
    for i in window..bases.len() {
        count += usize::from(is_gc(&bases[i]));
        count -= usize::from(is_gc(&bases[i - window]));
        lo = lo.min(count);
        hi = hi.max(count);
    }
    (lo as f64 / window as f64, hi as f64 / window as f64)
}

// Rotation tables: for each previous base (or none at the strand start),
// the three successor bases in trit order. Chosen so every trit value maps
// to a distinct base class across contexts (balanced usage).
fn rotation_successors(prev: Option<DnaBase>) -> [DnaBase; 3] {
    use DnaBase::*;
    match prev {
        None => [A, C, G],
        Some(A) => [C, G, T],
        Some(C) => [G, T, A],
        Some(G) => [T, A, C],
        Some(T) => [A, C, G],
    }
}

/// Encodes bytes with the rotation code: each byte becomes 6 trits
/// (3⁶ = 729 ≥ 256), each trit selects a base different from its
/// predecessor. The result contains no homopolymer runs by construction.
pub fn rotation_encode(bytes: &[u8]) -> DnaSequence {
    let mut bases = Vec::with_capacity(bytes.len() * 6);
    let mut prev = None;
    for &byte in bytes {
        let mut v = byte as u16;
        let mut trits = [0u8; 6];
        for t in trits.iter_mut() {
            *t = (v % 3) as u8;
            v /= 3;
        }
        for &t in &trits {
            let base = rotation_successors(prev)[t as usize];
            bases.push(base);
            prev = Some(base);
        }
    }
    DnaSequence::from_bases(bases)
}

/// Decodes a rotation-coded strand back to bytes.
///
/// # Errors
///
/// Returns [`DnaError::CodecError`] if the length is not a multiple of 6, a
/// base repeats its predecessor (impossible in a valid codeword), or a byte
/// overflows (trit pattern above 255).
pub fn rotation_decode(seq: &DnaSequence) -> Result<Vec<u8>> {
    if !seq.len().is_multiple_of(6) {
        return Err(DnaError::CodecError(format!(
            "rotation codeword length {} is not a multiple of 6",
            seq.len()
        )));
    }
    let mut out = Vec::with_capacity(seq.len() / 6);
    let mut prev = None;
    let mut trits = Vec::with_capacity(6);
    for &base in seq.bases() {
        let successors = rotation_successors(prev);
        let trit = successors
            .iter()
            .position(|&s| s == base)
            .ok_or_else(|| DnaError::CodecError("base repeats its predecessor".to_string()))?;
        trits.push(trit as u16);
        prev = Some(base);
        if trits.len() == 6 {
            let mut v = 0u16;
            for &t in trits.iter().rev() {
                v = v * 3 + t;
            }
            if v > 255 {
                return Err(DnaError::CodecError(format!(
                    "trit group decodes to {v} > 255"
                )));
            }
            out.push(v as u8);
            trits.clear();
        }
    }
    Ok(out)
}

/// Density of the rotation code in bits per base (the cost of compliance).
pub fn rotation_density_bits_per_base() -> f64 {
    8.0 / 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homopolymer_detection() {
        let s = DnaSequence::parse("ACGTTTTACG").expect("valid");
        assert_eq!(max_homopolymer(&s), 4);
        assert_eq!(max_homopolymer(&DnaSequence::new()), 0);
        assert_eq!(
            max_homopolymer(&DnaSequence::parse("ACGT").expect("valid")),
            1
        );
    }

    #[test]
    fn gc_window_detection() {
        let s = DnaSequence::parse("GGGGAAAA").expect("valid");
        let (lo, hi) = gc_window_range(&s, 4);
        assert_eq!(hi, 1.0);
        assert_eq!(lo, 0.0);
        let balanced = DnaSequence::parse("GACTGACT").expect("valid");
        let (lo, hi) = gc_window_range(&balanced, 4);
        assert!(lo >= 0.25 && hi <= 0.75);
    }

    #[test]
    fn constraint_check_flags_violations() {
        let spec = ConstraintSpec {
            max_homopolymer: 3,
            gc_min: 0.2,
            gc_max: 0.8,
            gc_window: 8,
        };
        assert!(spec
            .check(&DnaSequence::parse("ACGTACGTAC").expect("valid"))
            .is_ok());
        assert!(spec
            .check(&DnaSequence::parse("AAAAACGT").expect("valid"))
            .is_err());
        assert!(spec
            .check(&DnaSequence::parse("GCGCGCGCGC").expect("valid"))
            .is_err());
    }

    #[test]
    fn rotation_round_trip() {
        let payload = b"constraint-aware DNA codec";
        let encoded = rotation_encode(payload);
        assert_eq!(encoded.len(), payload.len() * 6);
        assert_eq!(rotation_decode(&encoded).expect("valid codeword"), payload);
    }

    #[test]
    fn rotation_never_produces_homopolymers() {
        // All-equal bytes are the worst case for repeat patterns.
        for byte in [0u8, 0xFF, 0xAA, 0x55] {
            let encoded = rotation_encode(&[byte; 50]);
            assert_eq!(
                max_homopolymer(&encoded),
                1,
                "byte {byte:#04x} produced a run"
            );
        }
        // And across random content.
        let mut rng = f2_core::rng::rng_for(5, "rotation");
        let payload: Vec<u8> = (0..200).map(|_| f2_core::rng::Rng::gen(&mut rng)).collect();
        assert_eq!(max_homopolymer(&rotation_encode(&payload)), 1);
    }

    #[test]
    fn rotation_rejects_corrupt_codewords() {
        let payload = b"abc";
        let encoded = rotation_encode(payload);
        // Introduce a repeat (invalid under rotation coding).
        let mut bases = encoded.bases().to_vec();
        bases[3] = bases[2];
        assert!(rotation_decode(&DnaSequence::from_bases(bases)).is_err());
        // Bad length.
        let short = DnaSequence::from_bases(encoded.bases()[..5].to_vec());
        assert!(rotation_decode(&short).is_err());
    }

    #[test]
    fn rotation_density_cost() {
        // 8 bits / 6 bases ≈ 1.33 bits per base vs 2.0 unconstrained:
        // the compliance tax is a 1.5x length overhead.
        let d = rotation_density_bits_per_base();
        assert!((d - 8.0 / 6.0).abs() < 1e-12);
        let plain = DnaSequence::from_bytes(b"x").len();
        let rotated = rotation_encode(b"x").len();
        assert_eq!(rotated as f64 / plain as f64, 1.5);
    }

    #[test]
    fn rotation_gc_stays_balanced() {
        let mut rng = f2_core::rng::rng_for(6, "rotation-gc");
        let payload: Vec<u8> = (0..300).map(|_| f2_core::rng::Rng::gen(&mut rng)).collect();
        let encoded = rotation_encode(&payload);
        let (lo, hi) = gc_window_range(&encoded, 50);
        assert!(lo > 0.2 && hi < 0.8, "GC range {lo:.2}..{hi:.2}");
    }
}
