//! The DNA synthesis/sequencing noise channel of Fig. 6b.
//!
//! §VI: "A distinctive feature of the DNA channel is that the input consists
//! of numerous strings of similar lengths that share a certain degree of
//! similarity." The channel takes each synthesised oligo and emits a random
//! number of noisy *reads*: per-base substitutions, insertions and deletions
//! plus whole-strand dropout — the error processes real synthesis and
//! nanopore/Illumina sequencing introduce.

use crate::error::DnaError;
use crate::sequence::{DnaBase, DnaSequence};
use crate::Result;
use f2_core::rng::Rng;

/// Channel error-rate configuration (per-base probabilities).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelModel {
    /// Substitution probability per base.
    pub substitution: f64,
    /// Insertion probability per base position.
    pub insertion: f64,
    /// Deletion probability per base.
    pub deletion: f64,
    /// Probability an oligo is never recovered at all.
    pub dropout: f64,
    /// Mean sequencing coverage (reads per oligo).
    pub mean_coverage: f64,
}

impl ChannelModel {
    /// A modern synthesis + Illumina-class profile (per-base error ≈ 0.7%).
    pub fn typical() -> Self {
        Self {
            substitution: 0.004,
            insertion: 0.0015,
            deletion: 0.0015,
            dropout: 0.005,
            mean_coverage: 10.0,
        }
    }

    /// A harsh nanopore-class profile (per-base error ≈ 6%).
    pub fn harsh() -> Self {
        Self {
            substitution: 0.03,
            insertion: 0.015,
            deletion: 0.015,
            dropout: 0.02,
            mean_coverage: 20.0,
        }
    }

    /// Validates that all probabilities are in range.
    ///
    /// # Errors
    ///
    /// Returns [`DnaError::InvalidParameter`] if any rate is outside `[0, 1]`
    /// or coverage is not positive.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("substitution", self.substitution),
            ("insertion", self.insertion),
            ("deletion", self.deletion),
            ("dropout", self.dropout),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(DnaError::InvalidParameter(format!(
                    "{name} probability {p} out of [0,1]"
                )));
            }
        }
        if self.mean_coverage <= 0.0 {
            return Err(DnaError::InvalidParameter(
                "mean coverage must be positive".to_string(),
            ));
        }
        Ok(())
    }

    /// Corrupts a single strand once.
    pub fn corrupt(&self, strand: &DnaSequence, rng: &mut impl Rng) -> DnaSequence {
        let mut out = Vec::with_capacity(strand.len() + 4);
        for &base in strand.bases() {
            if rng.gen::<f64>() < self.insertion {
                out.push(DnaBase::from_bits(rng.gen()));
            }
            if rng.gen::<f64>() < self.deletion {
                continue;
            }
            if rng.gen::<f64>() < self.substitution {
                // Substitute with one of the *other* three bases.
                let mut b = DnaBase::from_bits(rng.gen());
                while b == base {
                    b = DnaBase::from_bits(rng.gen());
                }
                out.push(b);
            } else {
                out.push(base);
            }
        }
        DnaSequence::from_bases(out)
    }

    /// Sequences one oligo: returns its reads (possibly none on dropout).
    /// Coverage is Poisson-like (geometric mixture around the mean).
    pub fn sequence(&self, strand: &DnaSequence, rng: &mut impl Rng) -> Vec<DnaSequence> {
        if rng.gen::<f64>() < self.dropout {
            return Vec::new();
        }
        let copies = sample_poisson(self.mean_coverage, rng).max(1);
        (0..copies).map(|_| self.corrupt(strand, rng)).collect()
    }

    /// Sequences a whole pool of oligos, concatenating and shuffling reads
    /// (the unordered pool a sequencer returns).
    pub fn sequence_pool(&self, strands: &[DnaSequence], rng: &mut impl Rng) -> Vec<DnaSequence> {
        let mut reads: Vec<DnaSequence> =
            strands.iter().flat_map(|s| self.sequence(s, rng)).collect();
        // Fisher-Yates shuffle: the pool has no order.
        for i in (1..reads.len()).rev() {
            let j = rng.gen_range(0..=i);
            reads.swap(i, j);
        }
        reads
    }
}

/// Knuth's Poisson sampler (fine for the coverage means used here).
fn sample_poisson(mean: f64, rng: &mut impl Rng) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // numerical guard for extreme means
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::levenshtein_dp;
    use f2_core::rng::rng_for;

    fn strand(len: usize, seed: u64) -> DnaSequence {
        let mut rng = rng_for(seed, "strand");
        DnaSequence::from_bases(
            (0..len)
                .map(|_| DnaBase::from_bits(f2_core::rng::Rng::gen(&mut rng)))
                .collect(),
        )
    }

    #[test]
    fn noiseless_channel_is_identity() {
        let ch = ChannelModel {
            substitution: 0.0,
            insertion: 0.0,
            deletion: 0.0,
            dropout: 0.0,
            mean_coverage: 3.0,
        };
        let mut rng = rng_for(1, "ch");
        let s = strand(100, 1);
        assert_eq!(ch.corrupt(&s, &mut rng), s);
        let reads = ch.sequence(&s, &mut rng);
        assert!(!reads.is_empty());
        assert!(reads.iter().all(|r| *r == s));
    }

    #[test]
    fn error_rate_matches_configuration() {
        let ch = ChannelModel {
            substitution: 0.05,
            insertion: 0.0,
            deletion: 0.0,
            dropout: 0.0,
            mean_coverage: 1.0,
        };
        let mut rng = rng_for(2, "ch2");
        let s = strand(400, 2);
        let mut edits = 0u64;
        let trials = 100;
        for _ in 0..trials {
            let c = ch.corrupt(&s, &mut rng);
            edits += levenshtein_dp(&s, &c).distance.expect("exact") as u64;
        }
        let observed = edits as f64 / (trials * 400) as f64;
        assert!(
            (observed - 0.05).abs() < 0.01,
            "observed substitution rate {observed}"
        );
    }

    #[test]
    fn indels_change_length() {
        let ch = ChannelModel {
            substitution: 0.0,
            insertion: 0.1,
            deletion: 0.0,
            dropout: 0.0,
            mean_coverage: 1.0,
        };
        let mut rng = rng_for(3, "ch3");
        let s = strand(300, 3);
        let c = ch.corrupt(&s, &mut rng);
        assert!(c.len() > s.len(), "insertions should lengthen the read");
        let del = ChannelModel {
            insertion: 0.0,
            deletion: 0.1,
            ..ch
        };
        let c2 = del.corrupt(&s, &mut rng);
        assert!(c2.len() < s.len(), "deletions should shorten the read");
    }

    #[test]
    fn dropout_loses_strands() {
        let ch = ChannelModel {
            substitution: 0.0,
            insertion: 0.0,
            deletion: 0.0,
            dropout: 1.0,
            mean_coverage: 5.0,
        };
        let mut rng = rng_for(4, "ch4");
        assert!(ch.sequence(&strand(50, 4), &mut rng).is_empty());
    }

    #[test]
    fn coverage_mean_is_respected() {
        let ch = ChannelModel {
            substitution: 0.0,
            insertion: 0.0,
            deletion: 0.0,
            dropout: 0.0,
            mean_coverage: 8.0,
        };
        let mut rng = rng_for(5, "ch5");
        let s = strand(20, 5);
        let total: usize = (0..200).map(|_| ch.sequence(&s, &mut rng).len()).sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 8.0).abs() < 1.0, "mean coverage {mean}");
    }

    #[test]
    fn pool_mixes_reads() {
        let ch = ChannelModel::typical();
        let mut rng = rng_for(6, "ch6");
        let strands: Vec<DnaSequence> = (0..10).map(|i| strand(60, 100 + i)).collect();
        let reads = ch.sequence_pool(&strands, &mut rng);
        assert!(reads.len() > 50, "expected ~100 reads, got {}", reads.len());
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let mut ch = ChannelModel::typical();
        assert!(ch.validate().is_ok());
        ch.substitution = 1.5;
        assert!(ch.validate().is_err());
        let mut ch2 = ChannelModel::typical();
        ch2.mean_coverage = 0.0;
        assert!(ch2.validate().is_err());
    }
}
