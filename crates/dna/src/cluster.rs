//! Read clustering and consensus calling.
//!
//! §VI cites "Clustering Billions of Reads for DNA Data Storage" \[32\] as the
//! workload that makes edit distance the pipeline's bottleneck: every read
//! must be grouped with the other noisy copies of the same oligo. This
//! module implements the standard two-stage scheme: a cheap k-mer-sketch
//! prefilter, then a banded edit-distance test against cluster
//! representatives; clusters are reduced to a consensus strand by
//! length-filtered column voting with a medoid fallback.

use crate::levenshtein::levenshtein_banded;
use crate::sequence::{DnaBase, DnaSequence};

/// Clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Maximum edit distance to a cluster representative.
    pub distance_threshold: usize,
    /// k-mer size of the prefilter sketch.
    pub kmer: usize,
    /// Minimum shared-k-mer fraction to attempt the exact test.
    pub prefilter_threshold_millis: u32,
}

impl Default for ClusterConfig {
    /// Threshold 12 edits, 6-mers, 30% sketch overlap.
    fn default() -> Self {
        Self {
            distance_threshold: 12,
            kmer: 6,
            prefilter_threshold_millis: 300,
        }
    }
}

/// 256-bit k-mer occupancy sketch of a sequence (wide enough that typical
/// oligo lengths do not saturate it).
fn sketch(seq: &DnaSequence, k: usize) -> [u64; 4] {
    let bases = seq.bases();
    let mut s = [0u64; 4];
    if bases.len() < k {
        return s;
    }
    for win in bases.windows(k) {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in win {
            h ^= b.to_bits() as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let bin = (h % 256) as usize;
        s[bin / 64] |= 1u64 << (bin % 64);
    }
    s
}

fn sketch_overlap_millis(a: [u64; 4], b: [u64; 4]) -> u32 {
    let mut inter = 0u32;
    let mut union = 0u32;
    for i in 0..4 {
        inter += (a[i] & b[i]).count_ones();
        union += (a[i] | b[i]).count_ones();
    }
    inter * 1000 / union.max(1)
}

/// Result of clustering a read pool.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Read indices per cluster.
    pub clusters: Vec<Vec<usize>>,
    /// Banded distance computations performed.
    pub distance_calls: u64,
    /// Candidate pairs skipped by the k-mer prefilter.
    pub prefilter_skips: u64,
}

/// Greedy single-pass clustering: each read joins the first cluster whose
/// representative is within the threshold, else founds a new cluster.
pub fn cluster_reads(reads: &[DnaSequence], cfg: &ClusterConfig) -> Clustering {
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut representatives: Vec<(usize, [u64; 4])> = Vec::new(); // (read idx, sketch)
    let mut distance_calls = 0u64;
    let mut prefilter_skips = 0u64;

    for (i, read) in reads.iter().enumerate() {
        let sk = sketch(read, cfg.kmer);
        let mut placed = false;
        for (c, &(rep_idx, rep_sketch)) in representatives.iter().enumerate() {
            if sketch_overlap_millis(sk, rep_sketch) < cfg.prefilter_threshold_millis {
                prefilter_skips += 1;
                continue;
            }
            distance_calls += 1;
            let d = levenshtein_banded(read, &reads[rep_idx], cfg.distance_threshold);
            if d.distance.is_some() {
                clusters[c].push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            clusters.push(vec![i]);
            representatives.push((i, sk));
        }
    }
    Clustering {
        clusters,
        distance_calls,
        prefilter_skips,
    }
}

/// Consensus of one cluster: column-majority vote over the reads of modal
/// length; if fewer than two reads share the modal length, the medoid read
/// (minimum summed distance to the others) is returned.
///
/// Returns an empty strand for an empty cluster.
pub fn consensus(reads: &[&DnaSequence]) -> DnaSequence {
    if reads.is_empty() {
        return DnaSequence::new();
    }
    if reads.len() == 1 {
        return reads[0].clone();
    }
    // Modal length.
    let mut length_counts = std::collections::HashMap::new();
    for r in reads {
        *length_counts.entry(r.len()).or_insert(0usize) += 1;
    }
    let (&modal_len, &modal_count) = length_counts
        .iter()
        .max_by_key(|&(&len, &count)| (count, std::cmp::Reverse(len)))
        .expect("non-empty cluster");

    if modal_count >= 2 && modal_len > 0 {
        let voters: Vec<&&DnaSequence> = reads.iter().filter(|r| r.len() == modal_len).collect();
        let bases = (0..modal_len)
            .map(|pos| {
                let mut counts = [0usize; 4];
                for v in &voters {
                    counts[v.bases()[pos].to_bits() as usize] += 1;
                }
                let best = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &c)| c)
                    .map(|(i, _)| i)
                    .expect("four bases");
                DnaBase::from_bits(best as u8)
            })
            .collect();
        return DnaSequence::from_bases(bases);
    }

    // Medoid fallback.
    let mut best = (usize::MAX, 0usize);
    for (i, a) in reads.iter().enumerate() {
        let total: usize = reads
            .iter()
            .map(|b| {
                levenshtein_banded(a, b, 24)
                    .distance
                    .unwrap_or(a.len().max(b.len()))
            })
            .sum();
        if total < best.0 {
            best = (total, i);
        }
    }
    reads[best.1].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;
    use f2_core::rng::rng_for;
    use f2_core::rng::Rng;

    fn random_strand(len: usize, rng: &mut impl Rng) -> DnaSequence {
        DnaSequence::from_bases((0..len).map(|_| DnaBase::from_bits(rng.gen())).collect())
    }

    #[test]
    fn identical_reads_form_one_cluster() {
        let mut rng = rng_for(1, "cl");
        let s = random_strand(80, &mut rng);
        let reads = vec![s.clone(), s.clone(), s.clone()];
        let c = cluster_reads(&reads, &ClusterConfig::default());
        assert_eq!(c.clusters.len(), 1);
        assert_eq!(c.clusters[0], vec![0, 1, 2]);
    }

    #[test]
    fn distinct_strands_separate() {
        let mut rng = rng_for(2, "cl2");
        let reads: Vec<DnaSequence> = (0..5).map(|_| random_strand(80, &mut rng)).collect();
        let c = cluster_reads(&reads, &ClusterConfig::default());
        assert_eq!(c.clusters.len(), 5);
    }

    #[test]
    fn noisy_copies_cluster_together() {
        let mut rng = rng_for(3, "cl3");
        let ch = ChannelModel::typical();
        let originals: Vec<DnaSequence> = (0..6).map(|_| random_strand(100, &mut rng)).collect();
        let mut reads = Vec::new();
        let mut truth = Vec::new();
        for (oi, o) in originals.iter().enumerate() {
            for _ in 0..5 {
                reads.push(ch.corrupt(o, &mut rng));
                truth.push(oi);
            }
        }
        let c = cluster_reads(&reads, &ClusterConfig::default());
        assert_eq!(c.clusters.len(), 6, "six oligos, six clusters");
        // Every cluster must be pure.
        for cluster in &c.clusters {
            let first = truth[cluster[0]];
            assert!(cluster.iter().all(|&r| truth[r] == first));
        }
    }

    #[test]
    fn prefilter_skips_work() {
        let mut rng = rng_for(4, "cl4");
        let reads: Vec<DnaSequence> = (0..20).map(|_| random_strand(100, &mut rng)).collect();
        let c = cluster_reads(&reads, &ClusterConfig::default());
        // Random strands mostly fail the sketch overlap, skipping DP calls.
        assert!(
            c.prefilter_skips > c.distance_calls,
            "skips {} vs calls {}",
            c.prefilter_skips,
            c.distance_calls
        );
    }

    #[test]
    fn consensus_fixes_substitutions() {
        let mut rng = rng_for(5, "cl5");
        let original = random_strand(90, &mut rng);
        let ch = ChannelModel {
            substitution: 0.03,
            insertion: 0.0,
            deletion: 0.0,
            dropout: 0.0,
            mean_coverage: 1.0,
        };
        let reads: Vec<DnaSequence> = (0..9).map(|_| ch.corrupt(&original, &mut rng)).collect();
        let refs: Vec<&DnaSequence> = reads.iter().collect();
        let cons = consensus(&refs);
        assert_eq!(cons, original, "majority vote should cancel substitutions");
    }

    #[test]
    fn consensus_single_read_is_identity() {
        let mut rng = rng_for(6, "cl6");
        let s = random_strand(40, &mut rng);
        assert_eq!(consensus(&[&s]), s);
        assert!(consensus(&[]).is_empty());
    }

    #[test]
    fn consensus_medoid_fallback_on_indels() {
        let mut rng = rng_for(7, "cl7");
        let original = random_strand(60, &mut rng);
        // All reads have distinct lengths -> medoid path.
        let mut reads = Vec::new();
        for k in 1..=3usize {
            let mut b = original.bases().to_vec();
            for _ in 0..k {
                b.remove(rng.gen_range(0..b.len()));
            }
            reads.push(DnaSequence::from_bases(b));
        }
        let refs: Vec<&DnaSequence> = reads.iter().collect();
        let cons = consensus(&refs);
        // Medoid should be the least-mutated read.
        assert_eq!(cons, reads[0]);
    }
}
