//! Analog crossbar matrix-vector multiplication.
//!
//! §IV: MLC-capable NVM cells "enable efficient matrix-vector multiplication
//! (MVM) when RRAM and PCM are arranged in crossbar array structures by
//! leveraging physical laws such as Ohm's law for voltage-conductance
//! multiplication and Kirchhoff's current law (KCL) for summation of memory
//! currents in the same bitline/wordline."
//!
//! A [`Crossbar`] stores a real-valued weight matrix as *differential
//! conductance pairs* (G⁺, G⁻), drives word lines with analog voltages, sums
//! bit-line currents, and digitises the result through a configurable
//! [`Adc`]. Device non-idealities (programming error, read noise, drift) and
//! per-operation energy are tracked throughout, so circuit-level choices —
//! ADC precision, analog accumulation — are measurable, reproducing the
//! trade-off analysis of the paper.

use crate::device::DeviceModel;
use crate::error::ImcError;
use crate::program::{program_array, ArrayProgramStats, Programmer};
use crate::Result;
use f2_core::energy::{EnergyLedger, OpKind};
use f2_core::rng::Rng;
use f2_core::tensor::Matrix;

/// Word-line read voltage (V).
pub const READ_VOLTAGE: f64 = 0.2;

/// A successive-approximation ADC model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adc {
    /// Resolution in bits.
    pub bits: u32,
}

impl Adc {
    /// Creates an ADC of the given resolution.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or above 16.
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=16).contains(&bits),
            "ADC resolution must be 1..=16 bits"
        );
        Self { bits }
    }

    /// Quantises a bipolar value to `bits` over ±`full_scale`.
    pub fn quantize(&self, value: f64, full_scale: f64) -> f64 {
        let levels = (1u64 << self.bits) as f64;
        let lsb = 2.0 * full_scale / levels;
        let clamped = value.clamp(-full_scale, full_scale);
        (clamped / lsb).round() * lsb
    }
}

/// Reusable scratch buffers for the `mvm*` kernels.
///
/// The MVM entry points historically rebuilt `vec![0.0; cols]` (and the
/// quantised input vector) on every call — and once per *bit plane* in
/// [`Crossbar::mvm_bit_serial`]. Callers in inner loops (tiled inference,
/// benchmarks) construct one `MvmScratch` and thread it through the
/// `*_with`/`*_into` variants; the plain entry points allocate a throwaway
/// scratch so one-shot call sites are unchanged.
#[derive(Debug, Clone, Default)]
pub struct MvmScratch {
    quantised: Vec<(f64, u32)>,
    currents: Vec<f64>,
}

impl MvmScratch {
    /// An empty scratch; buffers grow to the largest geometry seen.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A programmed crossbar holding one weight matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Crossbar {
    device: DeviceModel,
    g_pos: Matrix,
    g_neg: Matrix,
    weight_scale: f64,
    current_time: f64,
    program_stats: ArrayProgramStats,
}

impl Crossbar {
    /// Programs `weights` (rows = inputs, cols = outputs) onto a crossbar of
    /// `device` cells using `programmer`.
    ///
    /// Each weight maps to a differential pair: the signed magnitude goes on
    /// the matching polarity's cell, the opposite cell rests at `g_min`.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] if `weights` is all zeros (the
    /// weight scale would be degenerate).
    pub fn program<P: Programmer>(
        device: DeviceModel,
        weights: &Matrix,
        programmer: &P,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let w_max = weights.max_abs();
        if w_max == 0.0 {
            return Err(ImcError::InvalidConfig(
                "weight matrix is all zeros".to_string(),
            ));
        }
        Self::program_with_scale(device, weights, w_max, programmer, rng)
    }

    /// Like [`Crossbar::program`], but normalises against an externally
    /// supplied `weight_scale` instead of the matrix's own maximum.
    ///
    /// Tiled layers programmed with one *shared* scale produce column
    /// currents in a common unit, which is what makes cross-tile **analog
    /// accumulation** (summing currents before the ADC) numerically valid.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] if `weight_scale` is not positive
    /// or any `|weight| > weight_scale`.
    pub fn program_with_scale<P: Programmer>(
        device: DeviceModel,
        weights: &Matrix,
        weight_scale: f64,
        programmer: &P,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if weight_scale <= 0.0 {
            return Err(ImcError::InvalidConfig(
                "weight scale must be positive".to_string(),
            ));
        }
        if weights.max_abs() > weight_scale * (1.0 + 1e-12) {
            return Err(ImcError::InvalidConfig(format!(
                "weight magnitude {} exceeds scale {weight_scale}",
                weights.max_abs()
            )));
        }
        let w_max = weight_scale;
        let (rows, cols) = (weights.rows(), weights.cols());
        let mut pos_targets = Vec::with_capacity(rows * cols);
        let mut neg_targets = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let w = weights[(r, c)] / w_max; // normalised to [-1, 1]
                pos_targets.push(w.max(0.0));
                neg_targets.push((-w).max(0.0));
            }
        }
        let (gp, sp) = program_array(programmer, &device, &pos_targets, rng);
        let (gn, sn) = program_array(programmer, &device, &neg_targets, rng);
        let g_pos = Matrix::from_vec(rows, cols, gp).expect("length matches geometry");
        let g_neg = Matrix::from_vec(rows, cols, gn).expect("length matches geometry");
        Ok(Self {
            device,
            g_pos,
            g_neg,
            weight_scale: w_max,
            current_time: device.drift_t0,
            program_stats: ArrayProgramStats {
                total_pulses: sp.total_pulses + sn.total_pulses,
                rms_error: ((sp.rms_error.powi(2) + sn.rms_error.powi(2)) / 2.0).sqrt(),
                failures: sp.failures + sn.failures,
            },
        })
    }

    /// Array geometry `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.g_pos.rows(), self.g_pos.cols())
    }

    /// Statistics of the programming pass.
    pub fn program_stats(&self) -> ArrayProgramStats {
        self.program_stats
    }

    /// Device model of the cells.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Advances conductance drift to absolute time `t` (s since programming
    /// reference).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` is earlier than the current time.
    pub fn drift_to(&mut self, t: f64) {
        debug_assert!(t >= self.current_time, "cannot drift backwards");
        let ratio = (t / self.current_time).powf(-self.device.drift_nu);
        self.g_pos.map_inplace(|g| g * ratio);
        self.g_neg.map_inplace(|g| g * ratio);
        self.current_time = t;
    }

    /// Drift-compensation gain the digital periphery should apply at the
    /// current time ("accurate digital compensation of inaccuracies, such as
    /// drift", §IV).
    pub fn drift_compensation_gain(&self) -> f64 {
        (self.current_time / self.device.drift_t0).powf(self.device.drift_nu)
    }

    /// ADC full-scale current for this array (µA): the expected worst-case
    /// differential bit-line current at ~25% column activity.
    pub fn adc_full_scale(&self) -> f64 {
        0.25 * self.g_pos.rows() as f64 * READ_VOLTAGE * self.device.window()
    }

    /// Analog MVM `y = Wᵀ-style weights · x` with device read noise and ADC
    /// quantisation. Inputs are normalised to `[-1, 1]` against `x_max`.
    ///
    /// `ledger` accrues the energy events of the operation: one DAC drive per
    /// row, one analog MAC per cell, one ADC conversion per column.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::GeometryMismatch`] if `x.len()` ≠ rows.
    pub fn mvm(
        &self,
        x: &[f64],
        x_max: f64,
        adc: &Adc,
        rng: &mut impl Rng,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<f64>> {
        self.mvm_inner(x, x_max, Some(adc), true, rng, ledger)
    }

    /// Ideal MVM: no read noise, no ADC — the numerical reference used to
    /// isolate individual non-idealities.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::GeometryMismatch`] if `x.len()` ≠ rows.
    pub fn mvm_ideal(&self, x: &[f64], x_max: f64) -> Result<Vec<f64>> {
        let mut rng = f2_core::rng::StepRng::new(0, 0);
        let mut ledger = EnergyLedger::new();
        self.mvm_inner(x, x_max, None, false, &mut rng, &mut ledger)
    }

    /// Bit-serial MVM: inputs are quantised to `input_bits` and driven one
    /// bit-plane at a time with *binary* word-line drivers (no DACs), the
    /// per-plane column currents are digitised and recombined by digital
    /// shift-add.
    ///
    /// This is the alternative to the analog-input drive of [`Crossbar::mvm`]
    /// that §IV weighs: analog inputs maximise parallelism (one pass, but a
    /// DAC per row); bit-serial trades `input_bits×` more ADC passes for
    /// DAC-free, variation-immune input delivery.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::GeometryMismatch`] if `x.len()` ≠ rows, or
    /// [`ImcError::InvalidConfig`] if `input_bits` is 0 or above 12.
    pub fn mvm_bit_serial(
        &self,
        x: &[f64],
        x_max: f64,
        input_bits: u32,
        adc: &Adc,
        rng: &mut impl Rng,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<f64>> {
        let mut scratch = MvmScratch::new();
        self.mvm_bit_serial_with(x, x_max, input_bits, adc, rng, ledger, &mut scratch)
    }

    /// [`Crossbar::mvm_bit_serial`] with caller-owned scratch buffers, for
    /// call sites that run many MVMs back to back. Bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::GeometryMismatch`] if `x.len()` ≠ rows, or
    /// [`ImcError::InvalidConfig`] if `input_bits` is 0 or above 12.
    #[allow(clippy::too_many_arguments)]
    pub fn mvm_bit_serial_with(
        &self,
        x: &[f64],
        x_max: f64,
        input_bits: u32,
        adc: &Adc,
        rng: &mut impl Rng,
        ledger: &mut EnergyLedger,
        scratch: &mut MvmScratch,
    ) -> Result<Vec<f64>> {
        let (rows, cols) = self.dims();
        if x.len() != rows {
            return Err(ImcError::GeometryMismatch {
                crossbar: (rows, cols),
                needed: (x.len(), cols),
            });
        }
        if !(1..=12).contains(&input_bits) {
            return Err(ImcError::InvalidConfig(format!(
                "input_bits {input_bits} out of range 1..=12"
            )));
        }
        // Signed-magnitude input quantisation.
        let qmax = ((1u32 << input_bits) - 1) as f64;
        scratch.quantised.clear();
        scratch.quantised.extend(x.iter().map(|&v| {
            let norm = (v / x_max).clamp(-1.0, 1.0);
            (norm.signum(), (norm.abs() * qmax).round() as u32)
        }));
        let fs = self.adc_full_scale();
        let mut y = vec![0.0; cols];
        for bit in 0..input_bits {
            // Binary drivers: ±READ_VOLTAGE or 0 — no DAC conversion events.
            ledger.record(OpKind::AnalogCrossbarMac, (rows * cols * 2) as u64);
            scratch.currents.clear();
            scratch.currents.resize(cols, 0.0);
            for (r, &(sign, mag)) in scratch.quantised.iter().enumerate() {
                if (mag >> bit) & 1 == 0 {
                    continue;
                }
                let v = sign * READ_VOLTAGE;
                for ((acc, &gp0), &gn0) in scratch
                    .currents
                    .iter_mut()
                    .zip(self.g_pos.row(r))
                    .zip(self.g_neg.row(r))
                {
                    let gp = self.device.read(gp0, rng);
                    let gn = self.device.read(gn0, rng);
                    *acc += v * (gp - gn);
                }
            }
            let plane_weight = (1u32 << bit) as f64 / qmax;
            for (o, &i) in y.iter_mut().zip(&scratch.currents) {
                ledger.record(OpKind::AdcConversion, 1);
                ledger.record(OpKind::AluInt32, 1); // shift-add recombine
                let q = adc.quantize(i, fs);
                *o += self.current_to_output(q, x_max) * plane_weight;
            }
        }
        Ok(y)
    }

    /// Raw analog column currents (µA) without digitisation — used by the
    /// tile architecture for *analog accumulation* across arrays, which is
    /// how the paper minimises A/D conversions.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::GeometryMismatch`] if `x.len()` ≠ rows.
    pub fn column_currents(
        &self,
        x: &[f64],
        x_max: f64,
        rng: &mut impl Rng,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<f64>> {
        let mut currents = Vec::new();
        self.column_currents_into(x, x_max, rng, ledger, &mut currents)?;
        Ok(currents)
    }

    /// [`Crossbar::column_currents`] writing into a caller-owned buffer
    /// (cleared and resized to the column count) — the allocation-free path
    /// the tile architecture uses when accumulating across row blocks.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::GeometryMismatch`] if `x.len()` ≠ rows.
    pub fn column_currents_into(
        &self,
        x: &[f64],
        x_max: f64,
        rng: &mut impl Rng,
        ledger: &mut EnergyLedger,
        currents: &mut Vec<f64>,
    ) -> Result<()> {
        let (rows, cols) = self.dims();
        if x.len() != rows {
            return Err(ImcError::GeometryMismatch {
                crossbar: (rows, cols),
                needed: (x.len(), cols),
            });
        }
        ledger.record(OpKind::DacConversion, rows as u64);
        ledger.record(OpKind::AnalogCrossbarMac, (rows * cols * 2) as u64);
        currents.clear();
        currents.resize(cols, 0.0);
        for (r, &xr) in x.iter().enumerate() {
            let v = (xr / x_max).clamp(-1.0, 1.0) * READ_VOLTAGE;
            for ((acc, &gp0), &gn0) in currents
                .iter_mut()
                .zip(self.g_pos.row(r))
                .zip(self.g_neg.row(r))
            {
                let gp = self.device.read(gp0, rng);
                let gn = self.device.read(gn0, rng);
                *acc += v * (gp - gn);
            }
        }
        Ok(())
    }

    /// Converts a differential column current (µA) back to weight-domain
    /// output units.
    pub fn current_to_output(&self, current: f64, x_max: f64) -> f64 {
        current * x_max * self.weight_scale / (READ_VOLTAGE * self.device.window())
    }

    fn mvm_inner(
        &self,
        x: &[f64],
        x_max: f64,
        adc: Option<&Adc>,
        noisy: bool,
        rng: &mut impl Rng,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<f64>> {
        let (rows, cols) = self.dims();
        if x.len() != rows {
            return Err(ImcError::GeometryMismatch {
                crossbar: (rows, cols),
                needed: (x.len(), cols),
            });
        }
        let mut currents = vec![0.0; cols];
        for (r, &xr) in x.iter().enumerate() {
            let v = (xr / x_max).clamp(-1.0, 1.0) * READ_VOLTAGE;
            for ((acc, &gp0), &gn0) in currents
                .iter_mut()
                .zip(self.g_pos.row(r))
                .zip(self.g_neg.row(r))
            {
                let (gp, gn) = if noisy {
                    (self.device.read(gp0, rng), self.device.read(gn0, rng))
                } else {
                    (gp0, gn0)
                };
                *acc += v * (gp - gn);
            }
        }
        if noisy {
            ledger.record(OpKind::DacConversion, rows as u64);
            ledger.record(OpKind::AnalogCrossbarMac, (rows * cols * 2) as u64);
        }
        let fs = self.adc_full_scale();
        Ok(currents
            .into_iter()
            .map(|i| {
                let i = match adc {
                    Some(a) => {
                        ledger.record(OpKind::AdcConversion, 1);
                        a.quantize(i, fs)
                    }
                    None => i,
                };
                self.current_to_output(i, x_max)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{OpenLoop, ProgramVerify};
    use f2_core::rng::rng_for;

    fn test_weights(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * 7 + c * 13) % 19) as f64 / 9.5 - 1.0 // values in [-1, 0.9]
        })
    }

    #[test]
    fn ideal_mvm_matches_matmul() {
        let w = test_weights(16, 8);
        let mut rng = rng_for(1, "xbar");
        let xb = Crossbar::program(DeviceModel::rram(), &w, &ProgramVerify::default(), &mut rng)
            .expect("valid weights");
        let x: Vec<f64> = (0..16).map(|i| (i as f64 / 15.0) * 2.0 - 1.0).collect();
        let y_ref = w.transposed().matvec(&x).expect("shape");
        let y_xbar = xb.mvm_ideal(&x, 1.0).expect("shape");
        for (a, b) in y_ref.iter().zip(&y_xbar) {
            assert!(
                (a - b).abs() < 0.05 * w.rows() as f64 * 0.1,
                "ideal MVM error too large: {a} vs {b}"
            );
        }
    }

    #[test]
    fn noisy_mvm_close_to_ideal_with_pv() {
        let w = test_weights(32, 8);
        let mut rng = rng_for(2, "xbar2");
        let xb = Crossbar::program(DeviceModel::rram(), &w, &ProgramVerify::default(), &mut rng)
            .expect("valid weights");
        let x = vec![0.5; 32];
        let ideal = xb.mvm_ideal(&x, 1.0).expect("shape");
        let mut ledger = EnergyLedger::new();
        let noisy = xb
            .mvm(&x, 1.0, &Adc::new(8), &mut rng, &mut ledger)
            .expect("shape");
        let rms: f64 = (ideal
            .iter()
            .zip(&noisy)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            / 8.0)
            .sqrt();
        let signal: f64 = (ideal.iter().map(|v| v * v).sum::<f64>() / 8.0).sqrt();
        assert!(rms < 0.2 * signal.max(0.5), "rms {rms} vs signal {signal}");
    }

    #[test]
    fn open_loop_programming_degrades_mvm() {
        let w = test_weights(32, 8);
        let mut rng = rng_for(3, "xbar3");
        let pv = Crossbar::program(DeviceModel::rram(), &w, &ProgramVerify::default(), &mut rng)
            .expect("valid");
        let ol = Crossbar::program(DeviceModel::rram(), &w, &OpenLoop, &mut rng).expect("valid");
        let x = vec![0.7; 32];
        let y_ref = w.transposed().matvec(&x).expect("shape");
        let err = |xb: &Crossbar| -> f64 {
            let y = xb.mvm_ideal(&x, 1.0).expect("shape");
            y.iter()
                .zip(&y_ref)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(
            err(&ol) > 2.0 * err(&pv),
            "open loop {} should be much worse than P&V {}",
            err(&ol),
            err(&pv)
        );
    }

    #[test]
    fn mvm_energy_ledger_counts() {
        let w = test_weights(16, 4);
        let mut rng = rng_for(4, "xbar4");
        let xb = Crossbar::program(DeviceModel::rram(), &w, &OpenLoop, &mut rng).expect("valid");
        let mut ledger = EnergyLedger::new();
        xb.mvm(&[0.1; 16], 1.0, &Adc::new(8), &mut rng, &mut ledger)
            .expect("shape");
        assert_eq!(ledger.count(OpKind::DacConversion), 16);
        assert_eq!(ledger.count(OpKind::AnalogCrossbarMac), 16 * 4 * 2);
        assert_eq!(ledger.count(OpKind::AdcConversion), 4);
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let w = test_weights(8, 4);
        let mut rng = rng_for(5, "xbar5");
        let xb = Crossbar::program(DeviceModel::rram(), &w, &OpenLoop, &mut rng).expect("valid");
        assert!(xb.mvm_ideal(&[1.0; 4], 1.0).is_err());
    }

    #[test]
    fn zero_matrix_rejected() {
        let w = Matrix::zeros(4, 4);
        let mut rng = rng_for(6, "xbar6");
        assert!(Crossbar::program(DeviceModel::rram(), &w, &OpenLoop, &mut rng).is_err());
    }

    #[test]
    fn drift_shrinks_outputs_and_compensation_restores() {
        let w = test_weights(16, 4);
        let mut rng = rng_for(7, "xbar7");
        let mut xb = Crossbar::program(DeviceModel::pcm(), &w, &ProgramVerify::default(), &mut rng)
            .expect("valid");
        let x = vec![0.8; 16];
        let before = xb.mvm_ideal(&x, 1.0).expect("shape");
        xb.drift_to(1e6);
        let after = xb.mvm_ideal(&x, 1.0).expect("shape");
        let gain = xb.drift_compensation_gain();
        for (b, a) in before.iter().zip(&after) {
            assert!(a.abs() < b.abs() + 1e-9, "drift must not grow outputs");
            // Compensation gain restores the pre-drift magnitude closely.
            assert!((a * gain - b).abs() < 0.05 * b.abs().max(0.1));
        }
        assert!(
            gain > 1.5,
            "PCM at 1e6 s needs >1.5x compensation, got {gain}"
        );
    }

    #[test]
    fn adc_precision_controls_error() {
        let w = test_weights(64, 8);
        let mut rng = rng_for(8, "xbar8");
        let xb = Crossbar::program(DeviceModel::rram(), &w, &ProgramVerify::default(), &mut rng)
            .expect("valid");
        let x: Vec<f64> = (0..64).map(|i| ((i % 11) as f64 - 5.0) / 5.0).collect();
        let ideal = xb.mvm_ideal(&x, 1.0).expect("shape");
        let err_for = |bits: u32| -> f64 {
            let mut ledger = EnergyLedger::new();
            let mut local_rng = rng_for(8, "xbar8-read");
            let y = xb
                .mvm(&x, 1.0, &Adc::new(bits), &mut local_rng, &mut ledger)
                .expect("shape");
            y.iter()
                .zip(&ideal)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let coarse = err_for(3);
        let fine = err_for(10);
        assert!(
            fine < coarse,
            "10-bit ADC ({fine}) must beat 3-bit ({coarse})"
        );
    }

    #[test]
    fn adc_quantize_saturates() {
        let adc = Adc::new(4);
        assert_eq!(adc.quantize(100.0, 1.0), 1.0);
        assert_eq!(adc.quantize(-100.0, 1.0), -1.0);
        assert_eq!(adc.quantize(0.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "ADC resolution")]
    fn adc_rejects_zero_bits() {
        Adc::new(0);
    }

    #[test]
    fn bit_serial_matches_analog_input_mvm() {
        let w = test_weights(32, 8);
        let mut rng = rng_for(9, "xbar9");
        let xb = Crossbar::program(DeviceModel::rram(), &w, &ProgramVerify::default(), &mut rng)
            .expect("valid");
        let x: Vec<f64> = (0..32).map(|i| ((i % 11) as f64 - 5.0) / 5.0).collect();
        let ideal = xb.mvm_ideal(&x, 1.0).expect("shape");
        let mut ledger = EnergyLedger::new();
        let y = xb
            .mvm_bit_serial(&x, 1.0, 8, &Adc::new(10), &mut rng, &mut ledger)
            .expect("shape");
        let rms: f64 = (ideal
            .iter()
            .zip(&y)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            / 8.0)
            .sqrt();
        let signal = (ideal.iter().map(|v| v * v).sum::<f64>() / 8.0).sqrt();
        assert!(rms < 0.25 * signal.max(0.5), "rms {rms} vs signal {signal}");
    }

    #[test]
    fn bit_serial_trades_dacs_for_adc_passes() {
        let w = test_weights(16, 4);
        let mut rng = rng_for(10, "xbar10");
        let xb = Crossbar::program(DeviceModel::rram(), &w, &OpenLoop, &mut rng).expect("valid");
        let x = vec![0.5; 16];
        let mut analog = EnergyLedger::new();
        xb.mvm(&x, 1.0, &Adc::new(8), &mut rng, &mut analog)
            .expect("shape");
        let mut serial = EnergyLedger::new();
        xb.mvm_bit_serial(&x, 1.0, 4, &Adc::new(8), &mut rng, &mut serial)
            .expect("shape");
        // Analog input: one DAC per row, one ADC pass.
        assert_eq!(analog.count(OpKind::DacConversion), 16);
        assert_eq!(analog.count(OpKind::AdcConversion), 4);
        // Bit-serial: zero DACs, input_bits ADC passes.
        assert_eq!(serial.count(OpKind::DacConversion), 0);
        assert_eq!(serial.count(OpKind::AdcConversion), 4 * 4);
    }

    #[test]
    fn bit_serial_rejects_bad_precision() {
        let w = test_weights(8, 4);
        let mut rng = rng_for(11, "xbar11");
        let xb = Crossbar::program(DeviceModel::rram(), &w, &OpenLoop, &mut rng).expect("valid");
        let mut ledger = EnergyLedger::new();
        assert!(xb
            .mvm_bit_serial(&[0.0; 8], 1.0, 0, &Adc::new(8), &mut rng, &mut ledger)
            .is_err());
        assert!(xb
            .mvm_bit_serial(&[0.0; 8], 1.0, 13, &Adc::new(8), &mut rng, &mut ledger)
            .is_err());
    }
}
