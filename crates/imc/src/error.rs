//! Error type for the IMC crate.

use std::error::Error;
use std::fmt;

/// Error raised by IMC modelling operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ImcError {
    /// A device parameter or MLC level request was invalid.
    InvalidDevice(String),
    /// Matrix and crossbar geometry are incompatible.
    GeometryMismatch {
        /// What the crossbar provides (rows, cols).
        crossbar: (usize, usize),
        /// What the operation needs (rows, cols).
        needed: (usize, usize),
    },
    /// Architecture/mapping configuration error.
    InvalidConfig(String),
}

impl fmt::Display for ImcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImcError::InvalidDevice(msg) => write!(f, "invalid device model: {msg}"),
            ImcError::GeometryMismatch { crossbar, needed } => write!(
                f,
                "geometry mismatch: crossbar is {}x{}, operation needs {}x{}",
                crossbar.0, crossbar.1, needed.0, needed.1
            ),
            ImcError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for ImcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ImcError::GeometryMismatch {
            crossbar: (128, 128),
            needed: (256, 64),
        };
        assert!(e.to_string().contains("128x128"));
        assert!(ImcError::InvalidDevice("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ImcError>();
    }
}
