//! Multi-tile IMC architecture and weight-mapping compiler.
//!
//! §IV (architecture level): "it is essential to develop a multicore system
//! that can harmonize and synchronize the analog MVM operations in each
//! memory array, the digital activation and error compensation, and the data
//! movement between the Processing Elements … a software compiler is
//! essential to map the DNN layers and weights to the multiple cores."
//!
//! [`ImcAccelerator`] implements that system: each dense layer's weight
//! matrix is partitioned by the mapping compiler into crossbar-sized blocks
//! spread over [`ImcTileLayer`] tiles (all programmed with one shared scale);
//! inference runs layer by layer with digital ReLU/bias, NoC transfers
//! between layers, and either per-tile ADCs (digital accumulation) or
//! cross-tile **analog accumulation** that shares one ADC pass per output
//! column — the A/D-minimisation technique of \[11\].

use crate::crossbar::{Adc, Crossbar};
use crate::device::DeviceModel;
use crate::error::ImcError;
use crate::program::Programmer;
use crate::Result;
use f2_core::energy::{EnergyLedger, OpKind};
use f2_core::rng::Rng;
use f2_core::tensor::Matrix;

/// Architectural configuration of the tiled IMC system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileConfig {
    /// Crossbar rows per tile.
    pub tile_rows: usize,
    /// Crossbar columns per tile.
    pub tile_cols: usize,
    /// ADC resolution at the tile/column periphery.
    pub adc_bits: u32,
    /// Sum partial results in the analog domain before a single A/D pass
    /// (true) or convert per tile and add digitally (false).
    pub analog_accumulation: bool,
    /// Apply digital drift compensation at read-out.
    pub drift_compensation: bool,
}

impl Default for TileConfig {
    /// 128×128 tiles, 8-bit ADCs, analog accumulation and compensation on.
    fn default() -> Self {
        Self {
            tile_rows: 128,
            tile_cols: 128,
            adc_bits: 8,
            analog_accumulation: true,
            drift_compensation: true,
        }
    }
}

/// One dense layer mapped onto a grid of crossbar tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ImcTileLayer {
    // tiles[rb][cb] holds rows rb*R..min((rb+1)R, in) × cols cb*C..
    tiles: Vec<Vec<Crossbar>>,
    bias: Vec<f64>,
    in_dim: usize,
    out_dim: usize,
}

impl ImcTileLayer {
    /// Maps `weights` (`in_dim × out_dim`) and `bias` onto tiles.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] on degenerate weights or if
    /// `bias.len() != out_dim`.
    pub fn map<P: Programmer>(
        weights: &Matrix,
        bias: &[f64],
        device: DeviceModel,
        cfg: &TileConfig,
        programmer: &P,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if bias.len() != weights.cols() {
            return Err(ImcError::InvalidConfig(format!(
                "bias length {} != output dim {}",
                bias.len(),
                weights.cols()
            )));
        }
        if cfg.tile_rows == 0 || cfg.tile_cols == 0 {
            return Err(ImcError::InvalidConfig(
                "tile geometry must be positive".to_string(),
            ));
        }
        let scale = weights.max_abs();
        if scale == 0.0 {
            return Err(ImcError::InvalidConfig(
                "layer weights are all zeros".to_string(),
            ));
        }
        let (in_dim, out_dim) = (weights.rows(), weights.cols());
        let row_blocks = in_dim.div_ceil(cfg.tile_rows);
        let col_blocks = out_dim.div_ceil(cfg.tile_cols);
        let mut tiles = Vec::with_capacity(row_blocks);
        for rb in 0..row_blocks {
            let r0 = rb * cfg.tile_rows;
            let r1 = (r0 + cfg.tile_rows).min(in_dim);
            let mut row = Vec::with_capacity(col_blocks);
            for cb in 0..col_blocks {
                let c0 = cb * cfg.tile_cols;
                let c1 = (c0 + cfg.tile_cols).min(out_dim);
                let block = Matrix::from_fn(r1 - r0, c1 - c0, |r, c| weights[(r0 + r, c0 + c)]);
                row.push(Crossbar::program_with_scale(
                    device, &block, scale, programmer, rng,
                )?);
            }
            tiles.push(row);
        }
        Ok(Self {
            tiles,
            bias: bias.to_vec(),
            in_dim,
            out_dim,
        })
    }

    /// Input/output dimensions `(in, out)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.in_dim, self.out_dim)
    }

    /// Number of tiles used by the layer.
    pub fn tile_count(&self) -> usize {
        self.tiles.iter().map(Vec::len).sum()
    }

    /// Advances drift of every tile to time `t`.
    pub fn drift_to(&mut self, t: f64) {
        for row in &mut self.tiles {
            for tile in row {
                tile.drift_to(t);
            }
        }
    }

    /// Runs the layer on `x` (length `in_dim`), returning pre-activation
    /// outputs. `x_max` is the analog input full-scale.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::GeometryMismatch`] if `x.len() != in_dim`.
    pub fn forward(
        &self,
        x: &[f64],
        x_max: f64,
        cfg: &TileConfig,
        rng: &mut impl Rng,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<f64>> {
        if x.len() != self.in_dim {
            return Err(ImcError::GeometryMismatch {
                crossbar: (self.in_dim, self.out_dim),
                needed: (x.len(), self.out_dim),
            });
        }
        let adc = Adc::new(cfg.adc_bits);
        let mut y = vec![0.0; self.out_dim];
        let row_blocks = self.tiles.len();
        // Scratch reused across column blocks: the accumulated currents of
        // one block and the per-tile contribution being summed into them.
        let mut currents: Vec<f64> = Vec::new();
        let mut tile_currents: Vec<f64> = Vec::new();
        for (cb, _) in self.tiles[0].iter().enumerate() {
            let c0 = cb * cfg.tile_cols;
            if cfg.analog_accumulation {
                // Sum raw currents across row blocks, convert once.
                let cols = self.tiles[0][cb].dims().1;
                currents.clear();
                currents.resize(cols, 0.0);
                for rb in 0..row_blocks {
                    let tile = &self.tiles[rb][cb];
                    let r0 = rb * cfg.tile_rows;
                    let rows = tile.dims().0;
                    let xs = &x[r0..r0 + rows];
                    tile.column_currents_into(xs, x_max, rng, ledger, &mut tile_currents)?;
                    for (acc, i) in currents.iter_mut().zip(&tile_currents) {
                        *acc += i;
                    }
                }
                let fs = self.tiles[0][cb].adc_full_scale() * row_blocks as f64;
                let comp = if cfg.drift_compensation {
                    self.tiles[0][cb].drift_compensation_gain()
                } else {
                    1.0
                };
                for (j, &i) in currents.iter().enumerate() {
                    ledger.record(OpKind::AdcConversion, 1);
                    let q = adc.quantize(i, fs);
                    y[c0 + j] = self.tiles[0][cb].current_to_output(q, x_max) * comp;
                }
            } else {
                // Convert per tile, accumulate digitally.
                for rb in 0..row_blocks {
                    let tile = &self.tiles[rb][cb];
                    let r0 = rb * cfg.tile_rows;
                    let rows = tile.dims().0;
                    let xs = &x[r0..r0 + rows];
                    let part = tile.mvm(xs, x_max, &adc, rng, ledger)?;
                    let comp = if cfg.drift_compensation {
                        tile.drift_compensation_gain()
                    } else {
                        1.0
                    };
                    for (j, p) in part.into_iter().enumerate() {
                        y[c0 + j] += p * comp;
                        ledger.record(OpKind::AluInt32, 1);
                    }
                }
            }
        }
        for (v, b) in y.iter_mut().zip(&self.bias) {
            *v += b;
            ledger.record(OpKind::AluInt32, 1);
        }
        Ok(y)
    }
}

/// A multi-layer IMC accelerator (dense layers with ReLU between them).
#[derive(Debug, Clone, PartialEq)]
pub struct ImcAccelerator {
    layers: Vec<ImcTileLayer>,
    cfg: TileConfig,
}

impl ImcAccelerator {
    /// Builds an accelerator by mapping each `(weights, bias)` pair.
    ///
    /// Convenience wrapper over [`ImcAccelerator::map_network_refs`] for
    /// callers that already hold owned pairs; callers with a trained model
    /// should pass borrows instead of cloning layers into this shape.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors; also rejects an empty layer list and
    /// mismatched inter-layer dimensions.
    pub fn map_network<P: Programmer>(
        layers: &[(Matrix, Vec<f64>)],
        device: DeviceModel,
        cfg: TileConfig,
        programmer: &P,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let refs: Vec<(&Matrix, &[f64])> = layers.iter().map(|(w, b)| (w, b.as_slice())).collect();
        Self::map_network_refs(&refs, device, cfg, programmer, rng)
    }

    /// Builds an accelerator from borrowed `(weights, bias)` layers — the
    /// clone-free mapping path.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors; also rejects an empty layer list and
    /// mismatched inter-layer dimensions.
    pub fn map_network_refs<P: Programmer>(
        layers: &[(&Matrix, &[f64])],
        device: DeviceModel,
        cfg: TileConfig,
        programmer: &P,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if layers.is_empty() {
            return Err(ImcError::InvalidConfig("no layers to map".to_string()));
        }
        for w in layers.windows(2) {
            if w[0].0.cols() != w[1].0.rows() {
                return Err(ImcError::InvalidConfig(format!(
                    "layer dims mismatch: {} outputs feed {} inputs",
                    w[0].0.cols(),
                    w[1].0.rows()
                )));
            }
        }
        let mapped = layers
            .iter()
            .map(|(w, b)| ImcTileLayer::map(w, b, device, &cfg, programmer, rng))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            layers: mapped,
            cfg,
        })
    }

    /// The architecture configuration.
    pub fn config(&self) -> &TileConfig {
        &self.cfg
    }

    /// Total tiles across all layers.
    pub fn tile_count(&self) -> usize {
        self.layers.iter().map(ImcTileLayer::tile_count).sum()
    }

    /// Advances drift of the whole chip to time `t`.
    pub fn drift_to(&mut self, t: f64) {
        for layer in &mut self.layers {
            layer.drift_to(t);
        }
    }

    /// Full forward pass with ReLU between layers (logits returned raw).
    /// Inter-layer activations move over the on-chip network (one hop per
    /// value, logged in `ledger`).
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from the layers.
    pub fn forward(
        &self,
        x: &[f64],
        rng: &mut impl Rng,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<f64>> {
        let mut act = x.to_vec();
        let mut x_max = act.iter().fold(1e-9f64, |m, v| m.max(v.abs()));
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut y = layer.forward(&act, x_max, &self.cfg, rng, ledger)?;
            ledger.record(OpKind::NocHop, y.len() as u64);
            if i != last {
                for v in &mut y {
                    *v = v.max(0.0); // digital ReLU in the periphery
                }
                ledger.record(OpKind::AluInt32, y.len() as u64);
            }
            x_max = y.iter().fold(1e-9f64, |m, v| m.max(v.abs()));
            act = y;
        }
        Ok(act)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramVerify;
    use f2_core::rng::rng_for;

    fn layer_weights(i: usize, o: usize) -> (Matrix, Vec<f64>) {
        let w = Matrix::from_fn(i, o, |r, c| ((r * 13 + c * 7) % 21) as f64 / 10.0 - 1.0);
        let b = (0..o).map(|j| (j % 3) as f64 * 0.1).collect();
        (w, b)
    }

    fn small_cfg(analog: bool) -> TileConfig {
        TileConfig {
            tile_rows: 16,
            tile_cols: 16,
            adc_bits: 9,
            analog_accumulation: analog,
            drift_compensation: true,
        }
    }

    #[test]
    fn mapping_partitions_into_expected_tiles() {
        let (w, b) = layer_weights(40, 33);
        let mut rng = rng_for(1, "tile");
        let layer = ImcTileLayer::map(
            &w,
            &b,
            DeviceModel::rram(),
            &small_cfg(true),
            &ProgramVerify::default(),
            &mut rng,
        )
        .expect("valid layer");
        // ceil(40/16)=3 row blocks × ceil(33/16)=3 col blocks.
        assert_eq!(layer.tile_count(), 9);
        assert_eq!(layer.dims(), (40, 33));
    }

    #[test]
    fn layer_forward_approximates_dense() {
        let (w, b) = layer_weights(32, 10);
        let mut rng = rng_for(2, "tile2");
        let cfg = small_cfg(true);
        let layer = ImcTileLayer::map(
            &w,
            &b,
            DeviceModel::rram(),
            &cfg,
            &ProgramVerify::default(),
            &mut rng,
        )
        .expect("valid layer");
        let x: Vec<f64> = (0..32).map(|i| ((i % 9) as f64 - 4.0) / 4.0).collect();
        let mut want = w.transposed().matvec(&x).expect("shape");
        for (v, bi) in want.iter_mut().zip(&b) {
            *v += bi;
        }
        let mut ledger = EnergyLedger::new();
        let got = layer
            .forward(&x, 1.0, &cfg, &mut rng, &mut ledger)
            .expect("shape");
        let err: f64 = got
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        let norm: f64 = want.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < 0.25 * norm.max(1.0), "err {err} vs norm {norm}");
    }

    #[test]
    fn analog_accumulation_saves_adc_conversions() {
        // The §IV / [11] claim: accumulate partial sums in analog to
        // minimise A/D conversions.
        let (w, b) = layer_weights(64, 16); // 4 row blocks of 16
        let count_adc = |analog: bool| -> u64 {
            let cfg = small_cfg(analog);
            let mut local = rng_for(3, "tile3-map");
            let mut rng = rng_for(3, "tile3-fwd");
            let layer = ImcTileLayer::map(
                &w,
                &b,
                DeviceModel::rram(),
                &cfg,
                &ProgramVerify::default(),
                &mut local,
            )
            .expect("valid layer");
            let mut ledger = EnergyLedger::new();
            layer
                .forward(&vec![0.5; 64], 1.0, &cfg, &mut rng, &mut ledger)
                .expect("shape");
            ledger.count(OpKind::AdcConversion)
        };
        let analog = count_adc(true);
        let digital = count_adc(false);
        assert_eq!(analog, 16);
        assert_eq!(digital, 64); // 4 row blocks × 16 columns
    }

    #[test]
    fn network_forward_runs_and_is_finite() {
        let net = vec![layer_weights(20, 16), layer_weights(16, 8)];
        let mut rng = rng_for(4, "tile4");
        let acc = ImcAccelerator::map_network(
            &net,
            DeviceModel::rram(),
            small_cfg(true),
            &ProgramVerify::default(),
            &mut rng,
        )
        .expect("valid network");
        let mut ledger = EnergyLedger::new();
        let y = acc
            .forward(&[0.3; 20], &mut rng, &mut ledger)
            .expect("shape");
        assert_eq!(y.len(), 8);
        assert!(y.iter().all(|v| v.is_finite()));
        assert!(ledger.count(OpKind::NocHop) > 0);
    }

    #[test]
    fn mismatched_network_rejected() {
        let net = vec![layer_weights(20, 16), layer_weights(15, 8)];
        let mut rng = rng_for(5, "tile5");
        assert!(ImcAccelerator::map_network(
            &net,
            DeviceModel::rram(),
            small_cfg(true),
            &ProgramVerify::default(),
            &mut rng,
        )
        .is_err());
    }

    #[test]
    fn empty_network_rejected() {
        let mut rng = rng_for(6, "tile6");
        assert!(ImcAccelerator::map_network(
            &[],
            DeviceModel::rram(),
            small_cfg(true),
            &ProgramVerify::default(),
            &mut rng,
        )
        .is_err());
    }

    #[test]
    fn bad_bias_rejected() {
        let (w, _) = layer_weights(8, 4);
        let mut rng = rng_for(7, "tile7");
        assert!(ImcTileLayer::map(
            &w,
            &[0.0; 3],
            DeviceModel::rram(),
            &small_cfg(true),
            &ProgramVerify::default(),
            &mut rng,
        )
        .is_err());
    }
}
