//! End-to-end DNN accuracy evaluation under IMC non-idealities.
//!
//! The §IV claims are ultimately about *network accuracy*: imprecise weight
//! mapping "and consequent degradation of the DNN accuracy" is what
//! program-and-verify and drift compensation exist to prevent. This module
//! provides the full loop: a synthetic classification dataset, an MLP trained
//! in full precision (plain SGD back-propagation, implemented here), and
//! deployment of the trained weights onto an [`ImcAccelerator`] for
//! inference-accuracy measurement under configurable non-idealities.
//!
//! The dataset is synthetic (Gaussian class clusters) because no external
//! datasets are available offline; accuracy *deltas* between programming
//! schemes and drift conditions — the quantities the paper reasons about —
//! are preserved by construction.

use crate::device::DeviceModel;
use crate::program::Programmer;
use crate::tile::{ImcAccelerator, TileConfig};
use crate::Result;
use f2_core::energy::EnergyLedger;
use f2_core::rng::Rng;
use f2_core::rng::{rng_for, sample_normal};
use f2_core::tensor::Matrix;

/// A labelled classification dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature vectors.
    pub features: Vec<Vec<f64>>,
    /// Class labels in `0..classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Generates a `classes`-way Gaussian-cluster dataset in `dim` dimensions
/// with `per_class` samples per class and intra-cluster noise `sigma`.
pub fn make_dataset(
    classes: usize,
    dim: usize,
    per_class: usize,
    sigma: f64,
    seed: u64,
) -> Dataset {
    let mut rng = rng_for(seed, "dataset");
    // Well-separated unit-norm centres.
    let centers: Vec<Vec<f64>> = (0..classes)
        .map(|_| {
            let v: Vec<f64> = (0..dim)
                .map(|_| sample_normal(&mut rng, 0.0, 1.0))
                .collect();
            let n = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
            v.into_iter().map(|x| x / n).collect()
        })
        .collect();
    let mut features = Vec::with_capacity(classes * per_class);
    let mut labels = Vec::with_capacity(classes * per_class);
    for (c, center) in centers.iter().enumerate() {
        for _ in 0..per_class {
            features.push(
                center
                    .iter()
                    .map(|&m| m + sample_normal(&mut rng, 0.0, sigma))
                    .collect(),
            );
            labels.push(c);
        }
    }
    Dataset {
        features,
        labels,
        classes,
    }
}

/// Generates a train/test pair drawn from the *same* class centres (the
/// centres are derived from `seed`; the two sample sets use independent
/// noise streams).
pub fn make_train_test(
    classes: usize,
    dim: usize,
    train_per_class: usize,
    test_per_class: usize,
    sigma: f64,
    seed: u64,
) -> (Dataset, Dataset) {
    let mut center_rng = rng_for(seed, "dataset-centers");
    let centers: Vec<Vec<f64>> = (0..classes)
        .map(|_| {
            let v: Vec<f64> = (0..dim)
                .map(|_| sample_normal(&mut center_rng, 0.0, 1.0))
                .collect();
            let n = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
            v.into_iter().map(|x| x / n).collect()
        })
        .collect();
    let sample = |per_class: usize, label: &str| -> Dataset {
        let mut rng = rng_for(seed, label);
        let mut features = Vec::with_capacity(classes * per_class);
        let mut labels = Vec::with_capacity(classes * per_class);
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..per_class {
                features.push(
                    center
                        .iter()
                        .map(|&m| m + sample_normal(&mut rng, 0.0, sigma))
                        .collect(),
                );
                labels.push(c);
            }
        }
        Dataset {
            features,
            labels,
            classes,
        }
    };
    (
        sample(train_per_class, "dataset-train"),
        sample(test_per_class, "dataset-test"),
    )
}

/// A two-layer MLP (`dim → hidden → classes`) with ReLU, trained in `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    /// First-layer weights (`dim × hidden`).
    pub w1: Matrix,
    /// First-layer bias.
    pub b1: Vec<f64>,
    /// Second-layer weights (`hidden × classes`).
    pub w2: Matrix,
    /// Second-layer bias.
    pub b2: Vec<f64>,
}

impl Mlp {
    /// Full-precision forward pass returning class logits.
    ///
    /// Uses [`Matrix::matvec_t`] on the row-major weights directly — no
    /// per-forward transposed copies of `w1`/`w2` — with bit-identical
    /// results to the historical `transposed().matvec(x)` path.
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        let mut h = self.w1.matvec_t(x).expect("dims fixed at training");
        for (v, b) in h.iter_mut().zip(&self.b1) {
            *v = (*v + b).max(0.0);
        }
        let mut o = self.w2.matvec_t(&h).expect("dims fixed at training");
        for (v, b) in o.iter_mut().zip(&self.b2) {
            *v += b;
        }
        o
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .features
            .iter()
            .zip(&data.labels)
            .filter(|(x, &y)| argmax(&self.logits(x)) == y)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Borrowed layer list in the format the IMC mapper consumes
    /// ([`ImcAccelerator::map_network_refs`]) — no weight or bias clones.
    pub fn layers(&self) -> [(&Matrix, &[f64]); 2] {
        [(&self.w1, &self.b1), (&self.w2, &self.b2)]
    }
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits are finite"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Trains a `dim → hidden → classes` MLP with plain SGD + softmax
/// cross-entropy for `epochs` passes over `data`.
///
/// # Panics
///
/// Panics if the dataset is empty or features have inconsistent length.
pub fn train_mlp(data: &Dataset, hidden: usize, epochs: usize, lr: f64, seed: u64) -> Mlp {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let dim = data.features[0].len();
    assert!(
        data.features.iter().all(|f| f.len() == dim),
        "inconsistent feature dimensions"
    );
    let mut rng = rng_for(seed, "mlp-init");
    let scale1 = (2.0 / dim as f64).sqrt();
    let scale2 = (2.0 / hidden as f64).sqrt();
    let mut w1 = Matrix::from_fn(dim, hidden, |_, _| sample_normal(&mut rng, 0.0, scale1));
    let mut b1 = vec![0.0; hidden];
    let mut w2 = Matrix::from_fn(hidden, data.classes, |_, _| {
        sample_normal(&mut rng, 0.0, scale2)
    });
    let mut b2 = vec![0.0; data.classes];

    let mut order: Vec<usize> = (0..data.len()).collect();
    for _ in 0..epochs {
        // Fisher-Yates with the deterministic stream.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &idx in &order {
            let x = &data.features[idx];
            let y = data.labels[idx];
            // Forward (matvec_t: no per-sample transposed weight copies).
            let mut h_pre = w1.matvec_t(x).expect("shape");
            for (v, b) in h_pre.iter_mut().zip(&b1) {
                *v += b;
            }
            let h: Vec<f64> = h_pre.iter().map(|&v| v.max(0.0)).collect();
            let mut o = w2.matvec_t(&h).expect("shape");
            for (v, b) in o.iter_mut().zip(&b2) {
                *v += b;
            }
            // Softmax + CE gradient.
            let max = o.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = o.iter().map(|v| (v - max).exp()).collect();
            let sum: f64 = exps.iter().sum();
            let mut dout: Vec<f64> = exps.iter().map(|e| e / sum).collect();
            dout[y] -= 1.0;
            // Backprop to layer 2.
            let mut dh = vec![0.0; h.len()];
            for j in 0..h.len() {
                for k in 0..data.classes {
                    dh[j] += w2[(j, k)] * dout[k];
                    w2[(j, k)] -= lr * h[j] * dout[k];
                }
            }
            for (b, d) in b2.iter_mut().zip(&dout) {
                *b -= lr * d;
            }
            // Through ReLU to layer 1.
            for j in 0..dh.len() {
                if h_pre[j] <= 0.0 {
                    dh[j] = 0.0;
                }
            }
            for i in 0..dim {
                for j in 0..h.len() {
                    w1[(i, j)] -= lr * x[i] * dh[j];
                }
            }
            for (b, d) in b1.iter_mut().zip(&dh) {
                *b -= lr * d;
            }
        }
    }
    Mlp { w1, b1, w2, b2 }
}

/// Non-ideality scenario for an IMC deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentScenario {
    /// Device technology.
    pub device: DeviceModel,
    /// Time (s) since programming at which inference runs.
    pub inference_time: f64,
    /// Architecture configuration.
    pub tile: TileConfig,
}

/// Deploys a trained MLP onto the tiled IMC architecture and measures its
/// inference accuracy on `data` under `scenario`.
///
/// # Errors
///
/// Propagates mapping/geometry errors from the architecture.
pub fn imc_accuracy<P: Programmer>(
    mlp: &Mlp,
    data: &Dataset,
    scenario: &DeploymentScenario,
    programmer: &P,
    seed: u64,
) -> Result<ImcEvaluation> {
    let mut rng = rng_for(seed, "imc-deploy");
    let mut acc = ImcAccelerator::map_network_refs(
        &mlp.layers(),
        scenario.device,
        scenario.tile,
        programmer,
        &mut rng,
    )?;
    if scenario.inference_time > scenario.device.drift_t0 {
        acc.drift_to(scenario.inference_time);
    }
    let mut ledger = EnergyLedger::new();
    let mut correct = 0usize;
    for (x, &y) in data.features.iter().zip(&data.labels) {
        let logits = acc.forward(x, &mut rng, &mut ledger)?;
        if argmax(&logits) == y {
            correct += 1;
        }
    }
    Ok(ImcEvaluation {
        accuracy: correct as f64 / data.len().max(1) as f64,
        tiles: acc.tile_count(),
        ledger,
    })
}

/// Evaluates many deployment scenarios on `pool`'s work-stealing workers
/// ([`f2_core::exec::Pool`]).
///
/// Each scenario derives its randomness from the same `seed` through
/// [`imc_accuracy`]'s per-deployment stream, so the result vector is
/// identical to a sequential sweep, in input order, at any worker count.
///
/// # Errors
///
/// Returns the first mapping/geometry error.
pub fn sweep_scenarios<P: Programmer + Sync>(
    pool: &f2_core::exec::Pool,
    mlp: &Mlp,
    data: &Dataset,
    scenarios: &[DeploymentScenario],
    programmer: &P,
    seed: u64,
) -> Result<Vec<ImcEvaluation>> {
    pool.map(scenarios, |scenario| {
        imc_accuracy(mlp, data, scenario, programmer, seed)
    })
    .into_iter()
    .collect()
}

/// Outcome of one IMC deployment evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ImcEvaluation {
    /// Classification accuracy on the evaluation set.
    pub accuracy: f64,
    /// Tiles used by the mapping.
    pub tiles: usize,
    /// Energy events of the full evaluation.
    pub ledger: EnergyLedger,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{OpenLoop, ProgramVerify};

    fn trained_setup() -> (Mlp, Dataset) {
        let (train, test) = make_train_test(6, 12, 60, 25, 0.25, 7);
        let mlp = train_mlp(&train, 20, 12, 0.05, 9);
        (mlp, test)
    }

    fn tile_cfg() -> TileConfig {
        TileConfig {
            tile_rows: 16,
            tile_cols: 16,
            adc_bits: 9,
            analog_accumulation: true,
            drift_compensation: false,
        }
    }

    #[test]
    fn parallel_scenario_sweep_matches_sequential() {
        let (mlp, test) = trained_setup();
        let scenarios: Vec<DeploymentScenario> = [1.0f64, 1e3, 1e6]
            .iter()
            .map(|&t| DeploymentScenario {
                device: DeviceModel::pcm(),
                inference_time: t,
                tile: tile_cfg(),
            })
            .collect();
        let pool = f2_core::exec::Pool::new(3);
        let parallel =
            sweep_scenarios(&pool, &mlp, &test, &scenarios, &ProgramVerify::default(), 5)
                .expect("deployable");
        let sequential: Vec<ImcEvaluation> = scenarios
            .iter()
            .map(|s| {
                imc_accuracy(&mlp, &test, s, &ProgramVerify::default(), 5).expect("deployable")
            })
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn fp_training_reaches_high_accuracy() {
        let (mlp, test) = trained_setup();
        let acc = mlp.accuracy(&test);
        assert!(acc > 0.9, "float accuracy {acc}");
    }

    #[test]
    fn pv_deployment_close_to_float() {
        let (mlp, test) = trained_setup();
        let float_acc = mlp.accuracy(&test);
        let scenario = DeploymentScenario {
            device: DeviceModel::rram(),
            inference_time: 1.0,
            tile: tile_cfg(),
        };
        let eval =
            imc_accuracy(&mlp, &test, &scenario, &ProgramVerify::default(), 1).expect("deployable");
        assert!(
            eval.accuracy > float_acc - 0.05,
            "P&V IMC accuracy {} vs float {}",
            eval.accuracy,
            float_acc
        );
        assert!(eval.tiles >= 2);
    }

    #[test]
    fn open_loop_is_worse_than_pv() {
        let (mlp, test) = trained_setup();
        let scenario = DeploymentScenario {
            device: DeviceModel::rram(),
            inference_time: 1.0,
            tile: tile_cfg(),
        };
        let pv =
            imc_accuracy(&mlp, &test, &scenario, &ProgramVerify::default(), 2).expect("deployable");
        let ol = imc_accuracy(&mlp, &test, &scenario, &OpenLoop, 2).expect("deployable");
        // Near-ties can flip by sampling noise on this small task; P&V must
        // at minimum stay within noise of open-loop and keep high accuracy.
        assert!(
            pv.accuracy >= ol.accuracy - 0.04,
            "P&V {} must not lose to open-loop {} beyond noise",
            pv.accuracy,
            ol.accuracy
        );
        assert!(
            pv.accuracy > 0.85,
            "P&V accuracy collapsed: {}",
            pv.accuracy
        );
    }

    #[test]
    fn pcm_drift_degrades_uncompensated_accuracy() {
        let (mlp, test) = trained_setup();
        let fresh = DeploymentScenario {
            device: DeviceModel::pcm(),
            inference_time: 1.0,
            tile: tile_cfg(),
        };
        let aged = DeploymentScenario {
            inference_time: 1e7,
            ..fresh
        };
        let a0 =
            imc_accuracy(&mlp, &test, &fresh, &ProgramVerify::default(), 3).expect("deployable");
        let a1 =
            imc_accuracy(&mlp, &test, &aged, &ProgramVerify::default(), 3).expect("deployable");
        assert!(
            a1.accuracy <= a0.accuracy + 0.02,
            "drift should not improve accuracy: {} -> {}",
            a0.accuracy,
            a1.accuracy
        );
    }

    #[test]
    fn drift_compensation_recovers_accuracy() {
        let (mlp, test) = trained_setup();
        let mut cfg = tile_cfg();
        let uncomp = DeploymentScenario {
            device: DeviceModel::pcm(),
            inference_time: 1e7,
            tile: cfg,
        };
        cfg.drift_compensation = true;
        let comp = DeploymentScenario {
            device: DeviceModel::pcm(),
            inference_time: 1e7,
            tile: cfg,
        };
        let plain =
            imc_accuracy(&mlp, &test, &uncomp, &ProgramVerify::default(), 4).expect("deployable");
        let with =
            imc_accuracy(&mlp, &test, &comp, &ProgramVerify::default(), 4).expect("deployable");
        assert!(
            with.accuracy >= plain.accuracy - 0.04,
            "compensated {} must not lose to uncompensated {} beyond noise",
            with.accuracy,
            plain.accuracy
        );
        assert!(
            with.accuracy > 0.8,
            "compensated accuracy collapsed: {}",
            with.accuracy
        );
    }

    #[test]
    fn dataset_shape() {
        let d = make_dataset(3, 8, 10, 0.2, 1);
        assert_eq!(d.len(), 30);
        assert_eq!(d.features[0].len(), 8);
        assert!(d.labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = make_dataset(3, 8, 5, 0.2, 42);
        let b = make_dataset(3, 8, 5, 0.2, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[]), 0);
    }
}
