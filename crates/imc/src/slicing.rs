//! Bit-sliced weight mapping across multiple cells.
//!
//! A single analog cell stores at best a handful of reliable levels (§IV's
//! MLC discussion); DNN weights need 6–8 bits. The standard architectural
//! answer is *bit slicing*: split each weight's magnitude into base-2ᵇ
//! digits, store each digit in its own crossbar column group as a discrete
//! MLC level, run the MVM per slice, and recombine the partial sums with a
//! digital shift-add after the ADC. Coarse levels are far apart relative to
//! programming noise, so sliced mappings tolerate device variability far
//! better than one continuous-analog cell per weight — at the cost of
//! `slices×` more cells and ADC passes.

use crate::crossbar::READ_VOLTAGE;
use crate::device::DeviceModel;
use crate::error::ImcError;
use crate::program::Programmer;
use crate::Result;
use f2_core::energy::{EnergyLedger, OpKind};
use f2_core::rng::Rng;
use f2_core::tensor::Matrix;

/// Bit-slicing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlicingConfig {
    /// Number of slices per weight.
    pub slices: u32,
    /// Bits stored per cell (2ᵇ MLC levels).
    pub bits_per_slice: u32,
}

impl SlicingConfig {
    /// 4 slices × 2 bits = 8-bit effective weights on 4-level cells.
    pub fn int8_on_2bit_cells() -> Self {
        Self {
            slices: 4,
            bits_per_slice: 2,
        }
    }

    /// Total weight precision in bits.
    pub fn total_bits(&self) -> u32 {
        self.slices * self.bits_per_slice
    }

    /// MLC levels each cell must hold.
    pub fn levels(&self) -> usize {
        1 << self.bits_per_slice
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] for zero slices/bits or more than
    /// 16 total bits.
    pub fn validate(&self) -> Result<()> {
        if self.slices == 0 || self.bits_per_slice == 0 {
            return Err(ImcError::InvalidConfig(
                "slices and bits per slice must be positive".to_string(),
            ));
        }
        if self.total_bits() > 16 {
            return Err(ImcError::InvalidConfig(format!(
                "{} total bits exceeds the supported 16",
                self.total_bits()
            )));
        }
        Ok(())
    }
}

/// A weight matrix stored as differential bit slices on MLC cells.
#[derive(Debug, Clone, PartialEq)]
pub struct SlicedCrossbar {
    device: DeviceModel,
    config: SlicingConfig,
    // conductances[slice] holds (pos, neg) matrices of programmed cells.
    slices_pos: Vec<Matrix>,
    slices_neg: Vec<Matrix>,
    weight_scale: f64,
    rows: usize,
    cols: usize,
}

impl SlicedCrossbar {
    /// Quantises `weights` to `config.total_bits()` signed magnitude, splits
    /// the magnitude into base-2ᵇ digits and programs each digit as an MLC
    /// level with `programmer`.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] for invalid configs or an
    /// all-zero matrix.
    pub fn program<P: Programmer>(
        device: DeviceModel,
        weights: &Matrix,
        config: SlicingConfig,
        programmer: &P,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        config.validate()?;
        let scale = weights.max_abs();
        if scale == 0.0 {
            return Err(ImcError::InvalidConfig(
                "weight matrix is all zeros".to_string(),
            ));
        }
        let (rows, cols) = (weights.rows(), weights.cols());
        let qmax = (1u32 << config.total_bits()) - 1;
        let levels = config.levels();
        let base = levels as u32;
        let mut slices_pos = vec![Matrix::zeros(rows, cols); config.slices as usize];
        let mut slices_neg = vec![Matrix::zeros(rows, cols); config.slices as usize];
        for r in 0..rows {
            for c in 0..cols {
                let w = weights[(r, c)] / scale; // [-1, 1]
                let magnitude = (w.abs() * qmax as f64).round() as u32;
                let mut rem = magnitude;
                for s in 0..config.slices as usize {
                    let digit = (rem % base) as usize;
                    rem /= base;
                    let g_digit = device.level_conductance(digit, levels)?;
                    let g_zero = device.level_conductance(0, levels)?;
                    let (g_pos, g_neg) = if w >= 0.0 {
                        (g_digit, g_zero)
                    } else {
                        (g_zero, g_digit)
                    };
                    slices_pos[s][(r, c)] = programmer.program(&device, g_pos, rng).conductance;
                    slices_neg[s][(r, c)] = programmer.program(&device, g_neg, rng).conductance;
                }
            }
        }
        Ok(Self {
            device,
            config,
            slices_pos,
            slices_neg,
            weight_scale: scale,
            rows,
            cols,
        })
    }

    /// Array geometry `(rows, cols)` per slice.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total cells used (differential pairs × slices).
    pub fn cell_count(&self) -> usize {
        2 * self.rows * self.cols * self.config.slices as usize
    }

    /// Runs the sliced MVM with read noise: per-slice analog MVMs, per-slice
    /// digitisation (ideal ADC here; slicing isolates the device error,
    /// which is the §IV comparison of interest), digital shift-add recombine.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::GeometryMismatch`] if `x.len()` ≠ rows.
    #[allow(clippy::needless_range_loop)]
    pub fn mvm(
        &self,
        x: &[f64],
        x_max: f64,
        rng: &mut impl Rng,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(ImcError::GeometryMismatch {
                crossbar: (self.rows, self.cols),
                needed: (x.len(), self.cols),
            });
        }
        let levels = self.config.levels();
        let g_min = self.device.level_conductance(0, levels)?;
        let g_max = self.device.level_conductance(levels - 1, levels)?;
        let digit_span = g_max - g_min;
        let qmax = ((1u64 << self.config.total_bits()) - 1) as f64;
        let base = levels as f64;
        let mut y = vec![0.0; self.cols];
        for s in 0..self.config.slices as usize {
            ledger.record(OpKind::DacConversion, self.rows as u64);
            ledger.record(
                OpKind::AnalogCrossbarMac,
                (self.rows * self.cols * 2) as u64,
            );
            ledger.record(OpKind::AdcConversion, self.cols as u64);
            let weight_of_slice = base.powi(s as i32);
            for c in 0..self.cols {
                let mut current = 0.0;
                for r in 0..self.rows {
                    let v = (x[r] / x_max).clamp(-1.0, 1.0) * READ_VOLTAGE;
                    let gp = self.device.read(self.slices_pos[s][(r, c)], rng);
                    let gn = self.device.read(self.slices_neg[s][(r, c)], rng);
                    current += v * (gp - gn);
                }
                // Convert current to digit-domain value, then weight it.
                let digit_value = current / (READ_VOLTAGE * digit_span / (base - 1.0));
                y[c] += digit_value * weight_of_slice;
                ledger.record(OpKind::AluInt32, 1); // shift-add recombine
            }
        }
        // Back to weight domain.
        Ok(y.into_iter()
            .map(|v| v * x_max * self.weight_scale / qmax)
            .collect())
    }
}

impl SlicedCrossbar {
    /// Reads one stored weight back through the digital level-decision path:
    /// each slice's differential conductance is snapped to the nearest MLC
    /// level (this per-cell quantisation is where slicing rejects analog
    /// noise), then the digits are recombined. Returns the weight-domain
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::GeometryMismatch`] for out-of-range indices.
    pub fn read_weight(&self, r: usize, c: usize, rng: &mut impl Rng) -> Result<f64> {
        if r >= self.rows || c >= self.cols {
            return Err(ImcError::GeometryMismatch {
                crossbar: (self.rows, self.cols),
                needed: (r + 1, c + 1),
            });
        }
        let levels = self.config.levels();
        let g_min = self.device.level_conductance(0, levels)?;
        let g_max = self.device.level_conductance(levels - 1, levels)?;
        let step = (g_max - g_min) / (levels - 1) as f64;
        let base = levels as f64;
        let qmax = ((1u64 << self.config.total_bits()) - 1) as f64;
        let mut magnitude = 0.0;
        let mut signed = 0.0;
        for s in 0..self.config.slices as usize {
            let gp = self.device.read(self.slices_pos[s][(r, c)], rng);
            let gn = self.device.read(self.slices_neg[s][(r, c)], rng);
            let diff = gp - gn;
            // Level decision on the magnitude of the differential signal.
            let digit = (diff.abs() / step).round().min((levels - 1) as f64);
            magnitude += digit * base.powi(s as i32);
            signed += diff;
        }
        let sign = if signed >= 0.0 { 1.0 } else { -1.0 };
        Ok(sign * magnitude / qmax * self.weight_scale)
    }
}

/// Relative RMS output error of a mapping strategy on a reference MVM —
/// the §IV comparison metric for slicing studies.
pub fn mvm_rms_error(reference: &[f64], measured: &[f64]) -> f64 {
    let num: f64 = reference
        .iter()
        .zip(measured)
        .map(|(a, b)| (a - b).powi(2))
        .sum();
    let den: f64 = reference.iter().map(|a| a * a).sum();
    (num / den.max(1e-12)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::Crossbar;
    use crate::program::{OpenLoop, ProgramVerify};
    use f2_core::rng::rng_for;

    fn weights(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * 17 + c * 5) % 23) as f64 / 11.0 - 1.0
        })
    }

    #[test]
    fn sliced_mvm_matches_reference_under_pv() {
        let w = weights(24, 6);
        let mut rng = rng_for(1, "slice");
        let sliced = SlicedCrossbar::program(
            DeviceModel::rram(),
            &w,
            SlicingConfig::int8_on_2bit_cells(),
            &ProgramVerify::default(),
            &mut rng,
        )
        .expect("valid");
        let x: Vec<f64> = (0..24).map(|i| ((i % 7) as f64 - 3.0) / 3.0).collect();
        let reference = w.transposed().matvec(&x).expect("shape");
        let mut ledger = EnergyLedger::new();
        let got = sliced.mvm(&x, 1.0, &mut rng, &mut ledger).expect("shape");
        let err = mvm_rms_error(&reference, &got);
        assert!(err < 0.1, "sliced MVM error {err}");
    }

    #[test]
    fn slicing_tolerates_open_loop_better_than_continuous() {
        // The headline slicing claim: per-cell level decisions reject
        // programming noise, so open-loop-programmed sliced storage recalls
        // weights far more precisely than continuous-analog storage.
        let w = weights(32, 8);
        let mut rng = rng_for(2, "slice-ol");
        // Binary cells maximise the level margin (window/1), which is what
        // makes open-loop programming survivable: 8 x 1-bit slices.
        let sliced = SlicedCrossbar::program(
            DeviceModel::rram(),
            &w,
            SlicingConfig {
                slices: 8,
                bits_per_slice: 1,
            },
            &OpenLoop,
            &mut rng,
        )
        .expect("valid");
        // Continuous analog: one differential pair per weight.
        let continuous =
            Crossbar::program(DeviceModel::rram(), &w, &OpenLoop, &mut rng).expect("valid");
        // Weight recall error (RMS over all weights, weight units).
        let mut sliced_se = 0.0;
        let mut cont_se = 0.0;
        for r in 0..32 {
            // Continuous readback via a one-hot MVM row probe.
            let mut probe = vec![0.0; 32];
            probe[r] = 1.0;
            let row = continuous.mvm_ideal(&probe, 1.0).expect("shape");
            for c in 0..8 {
                let ws = sliced.read_weight(r, c, &mut rng).expect("in range");
                sliced_se += (ws - w[(r, c)]).powi(2);
                cont_se += (row[c] - w[(r, c)]).powi(2);
            }
        }
        let sliced_rms = (sliced_se / 256.0).sqrt();
        let cont_rms = (cont_se / 256.0).sqrt();
        assert!(
            sliced_rms < cont_rms * 0.5,
            "sliced recall {sliced_rms:.4} should clearly beat continuous {cont_rms:.4}"
        );
    }

    #[test]
    fn more_slices_raise_precision() {
        let w = weights(16, 4);
        let x = vec![0.6; 16];
        let reference = w.transposed().matvec(&x).expect("shape");
        let mut errs = Vec::new();
        for slices in [1u32, 2, 4] {
            let cfg = SlicingConfig {
                slices,
                bits_per_slice: 2,
            };
            let mut rng = rng_for(3, "slice-n");
            let xb = SlicedCrossbar::program(
                DeviceModel::rram(),
                &w,
                cfg,
                &ProgramVerify::default(),
                &mut rng,
            )
            .expect("valid");
            let mut ledger = EnergyLedger::new();
            let y = xb.mvm(&x, 1.0, &mut rng, &mut ledger).expect("shape");
            errs.push(mvm_rms_error(&reference, &y));
        }
        assert!(
            errs[2] < errs[0],
            "8-bit slicing ({:.4}) must beat 2-bit single slice ({:.4})",
            errs[2],
            errs[0]
        );
    }

    #[test]
    fn slicing_costs_cells_and_adc_passes() {
        let w = weights(16, 4);
        let mut rng = rng_for(4, "slice-cost");
        let cfg = SlicingConfig::int8_on_2bit_cells();
        let xb = SlicedCrossbar::program(
            DeviceModel::rram(),
            &w,
            cfg,
            &ProgramVerify::default(),
            &mut rng,
        )
        .expect("valid");
        assert_eq!(xb.cell_count(), 2 * 16 * 4 * 4);
        let mut ledger = EnergyLedger::new();
        xb.mvm(&[0.5; 16], 1.0, &mut rng, &mut ledger)
            .expect("shape");
        assert_eq!(ledger.count(OpKind::AdcConversion), 4 * 4); // slices × cols
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SlicingConfig {
            slices: 0,
            bits_per_slice: 2
        }
        .validate()
        .is_err());
        assert!(SlicingConfig {
            slices: 9,
            bits_per_slice: 2
        }
        .validate()
        .is_err());
        let w = Matrix::zeros(4, 4);
        let mut rng = rng_for(5, "slice-bad");
        assert!(SlicedCrossbar::program(
            DeviceModel::rram(),
            &w,
            SlicingConfig::int8_on_2bit_cells(),
            &OpenLoop,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let w = weights(8, 4);
        let mut rng = rng_for(6, "slice-geom");
        let xb = SlicedCrossbar::program(
            DeviceModel::rram(),
            &w,
            SlicingConfig::int8_on_2bit_cells(),
            &OpenLoop,
            &mut rng,
        )
        .expect("valid");
        let mut ledger = EnergyLedger::new();
        assert!(xb.mvm(&[0.5; 4], 1.0, &mut rng, &mut ledger).is_err());
    }
}
