//! Stochastic device models for RRAM and PCM computational memories.
//!
//! §IV: "both PCM and RRAM devices are characterized by non-ideal behavior in
//! terms of variability, drift, and noise issues which severely limit the
//! device performance." This module captures those three non-idealities with
//! the standard compact models used in the IMC literature (Ielmini & Wong,
//! Nature Electronics 2018; Lepri et al., IEEE JEDS 2023):
//!
//! * **Programming variability** — an open-loop pulse lands at the target
//!   conductance plus Gaussian error proportional to the conductance window.
//! * **Read noise** — every read adds zero-mean Gaussian noise (1/f + RTN
//!   aggregate) proportional to the current conductance.
//! * **Conductance drift** — PCM conductance decays as a power law
//!   `g(t) = g(t₀) · (t/t₀)^(−ν)`; RRAM drifts far more weakly.
//!
//! Conductances are in microsiemens (µS); times in seconds.

use crate::error::ImcError;
use crate::Result;
use f2_core::rng::sample_normal;
use f2_core::rng::Rng;

/// Technology of a computational memory cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Resistive-switching RAM (1T1R HfO₂-class).
    Rram,
    /// Phase-change memory (GST mushroom-cell class).
    Pcm,
}

/// Compact stochastic model of one memory technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceModel {
    /// Technology.
    pub kind: DeviceKind,
    /// Minimum programmable conductance (µS).
    pub g_min: f64,
    /// Maximum programmable conductance (µS).
    pub g_max: f64,
    /// Open-loop programming sigma, as a fraction of the conductance window.
    pub program_sigma: f64,
    /// Read-noise sigma as a fraction of the current conductance.
    pub read_noise: f64,
    /// Drift exponent ν of the power-law decay.
    pub drift_nu: f64,
    /// Reference time t₀ (s) at which programming is verified.
    pub drift_t0: f64,
}

impl DeviceModel {
    /// HfO₂ RRAM calibration (Milo et al., IEEE TED 2021 ranges).
    pub fn rram() -> Self {
        Self {
            kind: DeviceKind::Rram,
            g_min: 2.0,
            g_max: 100.0,
            program_sigma: 0.12,
            read_noise: 0.01,
            drift_nu: 0.005,
            drift_t0: 1.0,
        }
    }

    /// GST PCM calibration: stronger drift, slightly tighter programming.
    pub fn pcm() -> Self {
        Self {
            kind: DeviceKind::Pcm,
            g_min: 0.5,
            g_max: 50.0,
            program_sigma: 0.10,
            read_noise: 0.015,
            drift_nu: 0.05,
            drift_t0: 1.0,
        }
    }

    /// Conductance window width (µS).
    pub fn window(&self) -> f64 {
        self.g_max - self.g_min
    }

    /// Target conductance of MLC `level` out of `levels` equally spaced
    /// states (level 0 = `g_min`, level `levels-1` = `g_max`).
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidDevice`] if `levels < 2` or
    /// `level >= levels`.
    pub fn level_conductance(&self, level: usize, levels: usize) -> Result<f64> {
        if levels < 2 {
            return Err(ImcError::InvalidDevice(format!(
                "MLC needs at least 2 levels, got {levels}"
            )));
        }
        if level >= levels {
            return Err(ImcError::InvalidDevice(format!(
                "level {level} out of range for {levels}-level cell"
            )));
        }
        Ok(self.g_min + self.window() * level as f64 / (levels - 1) as f64)
    }

    /// Maps a normalised weight magnitude `w ∈ [0, 1]` to a conductance
    /// target inside the window (the analog-MLC mapping of §IV).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `w` is outside `[0, 1]`.
    pub fn weight_to_conductance(&self, w: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&w), "weight {w} not normalised");
        self.g_min + self.window() * w
    }

    /// Inverse of [`DeviceModel::weight_to_conductance`].
    pub fn conductance_to_weight(&self, g: f64) -> f64 {
        ((g - self.g_min) / self.window()).clamp(0.0, 1.0)
    }

    /// One open-loop programming pulse aimed at `target` (µS): returns the
    /// conductance actually reached, clamped to the device window.
    pub fn program_open_loop(&self, target: f64, rng: &mut impl Rng) -> f64 {
        let g = sample_normal(rng, target, self.program_sigma * self.window());
        g.clamp(self.g_min, self.g_max)
    }

    /// A corrective pulse from conductance `from` toward `target`: moves a
    /// fraction of the gap with pulse-to-pulse noise. Used by
    /// program-and-verify.
    pub fn program_step(&self, from: f64, target: f64, rng: &mut impl Rng) -> f64 {
        let gap = target - from;
        // Each trim pulse closes ~60% of the gap, with noise proportional to
        // the step size plus a small absolute floor.
        let noise_scale = 0.2 * gap.abs() + 0.005 * self.window();
        let g = from + 0.6 * gap + sample_normal(rng, 0.0, noise_scale);
        g.clamp(self.g_min, self.g_max)
    }

    /// Conductance after drifting from the verify time `t0` to time `t` (s).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t < drift_t0`.
    pub fn drift(&self, g: f64, t: f64) -> f64 {
        debug_assert!(t >= self.drift_t0, "drift time before reference");
        g * (t / self.drift_t0).powf(-self.drift_nu)
    }

    /// One noisy read of a cell at conductance `g`.
    pub fn read(&self, g: f64, rng: &mut impl Rng) -> f64 {
        (g + sample_normal(rng, 0.0, self.read_noise * g)).max(0.0)
    }

    /// Cell area in F² (1T1R NVM vs 6T SRAM — the §IV density argument).
    pub fn cell_area_f2(&self) -> f64 {
        25.0
    }
}

/// Area of a 6T SRAM bit-cell in F², for density comparisons against NVM.
pub const SRAM_CELL_AREA_F2: f64 = 150.0;

#[cfg(test)]
mod tests {
    use super::*;
    use f2_core::rng::rng_for;

    #[test]
    fn mlc_levels_span_window() {
        let d = DeviceModel::rram();
        assert_eq!(d.level_conductance(0, 4).expect("valid"), d.g_min);
        assert_eq!(d.level_conductance(3, 4).expect("valid"), d.g_max);
        let mid = d.level_conductance(1, 3).expect("valid");
        assert!((mid - (d.g_min + d.g_max) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn mlc_rejects_bad_levels() {
        let d = DeviceModel::rram();
        assert!(d.level_conductance(0, 1).is_err());
        assert!(d.level_conductance(4, 4).is_err());
    }

    #[test]
    fn weight_mapping_round_trip() {
        let d = DeviceModel::pcm();
        for w in [0.0, 0.25, 0.5, 1.0] {
            let g = d.weight_to_conductance(w);
            assert!((d.conductance_to_weight(g) - w).abs() < 1e-12);
        }
    }

    #[test]
    fn open_loop_has_expected_spread() {
        let d = DeviceModel::rram();
        let mut rng = rng_for(3, "openloop");
        let target = 50.0;
        let n = 5000;
        let shots: Vec<f64> = (0..n)
            .map(|_| d.program_open_loop(target, &mut rng))
            .collect();
        let mean = shots.iter().sum::<f64>() / n as f64;
        let sd = (shots.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((mean - target).abs() < 0.5, "mean {mean}");
        let expect_sd = d.program_sigma * d.window();
        assert!(
            (sd - expect_sd).abs() / expect_sd < 0.1,
            "sd {sd} vs {expect_sd}"
        );
    }

    #[test]
    fn program_step_converges_toward_target() {
        let d = DeviceModel::rram();
        let mut rng = rng_for(4, "step");
        let mut g = d.g_min;
        let target = 80.0;
        for _ in 0..20 {
            g = d.program_step(g, target, &mut rng);
        }
        assert!((g - target).abs() < 0.1 * d.window(), "g={g}");
    }

    #[test]
    fn pcm_drifts_more_than_rram() {
        let pcm = DeviceModel::pcm();
        let rram = DeviceModel::rram();
        let g0 = 30.0;
        let t = 1e4;
        let pcm_loss = 1.0 - pcm.drift(g0, t) / g0;
        let rram_loss = 1.0 - rram.drift(g0, t) / g0;
        assert!(
            pcm_loss > 5.0 * rram_loss,
            "pcm {pcm_loss} rram {rram_loss}"
        );
        assert!(pcm_loss > 0.3, "PCM should lose >30% over 4 decades");
    }

    #[test]
    fn drift_is_identity_at_reference_time() {
        let d = DeviceModel::pcm();
        assert!((d.drift(10.0, d.drift_t0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn read_noise_is_proportional() {
        let d = DeviceModel::rram();
        let mut rng = rng_for(5, "read");
        let n = 5000;
        let g = 50.0;
        let reads: Vec<f64> = (0..n).map(|_| d.read(g, &mut rng)).collect();
        let mean = reads.iter().sum::<f64>() / n as f64;
        assert!((mean - g).abs() < 0.1);
        let sd = (reads.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((sd - d.read_noise * g).abs() < 0.1);
    }

    #[test]
    fn nvm_denser_than_sram() {
        assert!(DeviceModel::rram().cell_area_f2() * 4.0 < SRAM_CELL_AREA_F2);
    }

    #[test]
    fn clamping_at_window_edges() {
        let d = DeviceModel::rram();
        let mut rng = rng_for(6, "clamp");
        for _ in 0..100 {
            let g = d.program_open_loop(d.g_max, &mut rng);
            assert!(g >= d.g_min && g <= d.g_max);
        }
    }
}
