//! SRAM-based digital in-memory computing (DIMC).
//!
//! §IV: "SRAM-based digital IMC (DIMC) has been proposed with outstanding
//! energy-efficient characteristics … DIMC relieves all the burdens described
//! so far but introduces new challenges such as the design of fast adder
//! trees and multipliers and the design of energy-efficient peripheral
//! circuitry." The reference design is the ST 18-nm multi-tiled macro of
//! Desoli et al. (ISSCC'23) delivering **40–310 TOPS/W at 1–4-bit precision**.
//!
//! [`DimcMacro`] computes bit-exact low-precision MVMs (no analog error — the
//! defining property of DIMC) and models throughput/energy of the in-array
//! multiply + adder-tree reduction, exposing the precision/efficiency
//! trade-off that spans the 40–310 TOPS/W band.

use crate::error::ImcError;
use crate::Result;
use f2_core::energy::{EnergyLedger, OpKind, TechNode};
use f2_core::kpi::{Megahertz, Tops, TopsPerWatt, Watts};

/// A digital IMC macro: an SRAM array with per-column multipliers and an
/// adder tree, computing signed integer MVMs bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct DimcMacro {
    rows: usize,
    cols: usize,
    weight_bits: u32,
    activation_bits: u32,
    weights: Vec<i32>, // row-major, clamped to weight_bits
    clock: Megahertz,
    node: TechNode,
}

impl DimcMacro {
    /// Creates a macro and loads `weights` (row-major `rows × cols`), which
    /// are clamped into the signed `weight_bits` range.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidConfig`] if geometry/bit widths are invalid
    /// or `weights.len() != rows * cols`.
    pub fn new(
        rows: usize,
        cols: usize,
        weight_bits: u32,
        activation_bits: u32,
        weights: &[i32],
        clock: Megahertz,
        node: TechNode,
    ) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(ImcError::InvalidConfig(
                "macro geometry must be positive".to_string(),
            ));
        }
        if !(1..=8).contains(&weight_bits) || !(1..=8).contains(&activation_bits) {
            return Err(ImcError::InvalidConfig(
                "DIMC precision must be 1..=8 bits".to_string(),
            ));
        }
        if weights.len() != rows * cols {
            return Err(ImcError::InvalidConfig(format!(
                "expected {} weights, got {}",
                rows * cols,
                weights.len()
            )));
        }
        let lo = -(1i32 << (weight_bits - 1));
        let hi = (1i32 << (weight_bits - 1)) - 1;
        Ok(Self {
            rows,
            cols,
            weight_bits,
            activation_bits,
            weights: weights.iter().map(|&w| w.clamp(lo, hi)).collect(),
            clock,
            node,
        })
    }

    /// Geometry `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Bit-exact MVM of signed activations (clamped to `activation_bits`).
    ///
    /// The bit-serial datapath processes one activation bit per cycle, so the
    /// operation takes `activation_bits` array cycles; energy is logged in
    /// `ledger`.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::GeometryMismatch`] if `x.len()` ≠ rows.
    #[allow(clippy::needless_range_loop)]
    pub fn mvm(&self, x: &[i32], ledger: &mut EnergyLedger) -> Result<Vec<i64>> {
        if x.len() != self.rows {
            return Err(ImcError::GeometryMismatch {
                crossbar: (self.rows, self.cols),
                needed: (x.len(), self.cols),
            });
        }
        let lo = -(1i32 << (self.activation_bits - 1));
        let hi = (1i32 << (self.activation_bits - 1)) - 1;
        let mut y = vec![0i64; self.cols];
        for r in 0..self.rows {
            let a = x[r].clamp(lo, hi) as i64;
            if a == 0 {
                continue;
            }
            for c in 0..self.cols {
                y[c] += a * self.weights[r * self.cols + c] as i64;
            }
        }
        // In-SRAM MACs, charged at the low-precision integer rate scaled by
        // the operand widths relative to the 8x8-bit anchor (min 1 per MVM).
        let ops = (self.rows * self.cols) as u64;
        let scaled = (ops * self.weight_bits as u64 * self.activation_bits as u64 / 64).max(1);
        ledger.record(OpKind::MacInt8, scaled);
        Ok(y)
    }

    /// Peak throughput: every cell performs one MAC (2 ops) per
    /// `activation_bits` cycles.
    pub fn peak_throughput(&self) -> Tops {
        let macs_per_cycle = (self.rows * self.cols) as f64 / self.activation_bits as f64;
        Tops::new(2.0 * macs_per_cycle * self.clock.to_hertz() / 1e12)
    }

    /// Power at peak activity.
    pub fn power(&self) -> Watts {
        let table = f2_core::energy::OpEnergy::for_node(self.node);
        // Bit-serial MAC energy shrinks sub-linearly with the operand-width
        // product: narrower operands cut the multiplier array but the adder
        // tree and clocking persist (exponent fitted to the ISSCC'23 macro's
        // 40-310 TOPS/W precision scaling).
        let width_scale = ((self.weight_bits * self.activation_bits) as f64 / 64.0).powf(0.6);
        let mac_pj = table.energy(OpKind::MacInt8).value() * 1.35 * width_scale;
        let macs_per_s =
            (self.rows * self.cols) as f64 / self.activation_bits as f64 * self.clock.to_hertz();
        Watts::new(macs_per_s * mac_pj * 1e-12)
    }

    /// Peak energy efficiency in TOPS/W — the Fig. 1 / ISSCC'23 metric.
    pub fn efficiency(&self) -> TopsPerWatt {
        self.peak_throughput() / self.power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn macro_with(wb: u32, ab: u32) -> DimcMacro {
        let weights: Vec<i32> = (0..64 * 64).map(|i| (i % 15) - 7).collect();
        DimcMacro::new(
            64,
            64,
            wb,
            ab,
            &weights,
            Megahertz::new(500.0),
            TechNode::N16,
        )
        .expect("valid macro")
    }

    #[test]
    fn mvm_is_bit_exact() {
        let m = macro_with(4, 4);
        let x: Vec<i32> = (0..64).map(|i| (i % 7) - 3).collect();
        let mut ledger = EnergyLedger::new();
        let y = m.mvm(&x, &mut ledger).expect("shape");
        // Reference computation with the same clamping.
        let weights: Vec<i32> = (0..64 * 64).map(|i| ((i % 15) - 7).clamp(-8, 7)).collect();
        for c in 0..64 {
            let want: i64 = (0..64)
                .map(|r| (x[r].clamp(-8, 7) as i64) * weights[r * 64 + c] as i64)
                .sum();
            assert_eq!(y[c], want, "column {c}");
        }
        assert!(ledger.total_ops() > 0);
    }

    #[test]
    fn efficiency_in_published_band() {
        // ISSCC'23 macro: 40-310 TOPS/W from 4-bit down to 1-bit.
        let low_precision = macro_with(1, 1).efficiency();
        let high_precision = macro_with(4, 4).efficiency();
        assert!(
            low_precision.value() > 200.0 && low_precision.value() < 400.0,
            "1-bit efficiency {low_precision}"
        );
        assert!(
            high_precision.value() > 30.0 && high_precision.value() < 120.0,
            "4-bit efficiency {high_precision}"
        );
        assert!(low_precision.value() > high_precision.value());
    }

    #[test]
    fn throughput_scales_with_array_and_precision() {
        let small = macro_with(4, 4);
        let weights: Vec<i32> = vec![1; 128 * 128];
        let big = DimcMacro::new(
            128,
            128,
            4,
            4,
            &weights,
            Megahertz::new(500.0),
            TechNode::N16,
        )
        .expect("valid");
        assert!(big.peak_throughput().value() > small.peak_throughput().value());
        let fast = macro_with(4, 1);
        assert!(fast.peak_throughput().value() > small.peak_throughput().value());
    }

    #[test]
    fn weights_clamped_to_precision() {
        let m = DimcMacro::new(
            1,
            2,
            2, // signed 2-bit: [-2, 1]
            4,
            &[100, -100],
            Megahertz::new(100.0),
            TechNode::N28,
        )
        .expect("valid");
        let mut ledger = EnergyLedger::new();
        let y = m.mvm(&[1], &mut ledger).expect("shape");
        assert_eq!(y, vec![1, -2]);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(DimcMacro::new(0, 4, 4, 4, &[], Megahertz::new(1.0), TechNode::N16).is_err());
        assert!(DimcMacro::new(2, 2, 9, 4, &[0; 4], Megahertz::new(1.0), TechNode::N16).is_err());
        assert!(DimcMacro::new(2, 2, 4, 4, &[0; 3], Megahertz::new(1.0), TechNode::N16).is_err());
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let m = macro_with(4, 4);
        let mut ledger = EnergyLedger::new();
        assert!(m.mvm(&[0; 3], &mut ledger).is_err());
    }
}
