//! # f2-imc
//!
//! Reproduction of the §IV thrust of the ICSC Flagship 2 paper:
//! **in-memory computing (IMC) architectures** based on emerging non-volatile
//! memories (RRAM, PCM) and on SRAM digital IMC.
//!
//! The paper organises the challenges on three levels, and so does this
//! crate:
//!
//! * **Device** ([`device`], [`program`]) — RRAM/PCM conductance models with
//!   programming variability, read noise, conductance drift and multi-level
//!   cell (MLC) operation; high-precision *program-and-verify* loops that
//!   counter the non-idealities (Milo et al. \[10\]).
//! * **Circuit** ([`crossbar`], [`dimc`]) — analog matrix-vector
//!   multiplication via Ohm's law and Kirchhoff's current law on crossbar
//!   arrays, DAC/ADC interfaces, analog accumulation that minimises A/D
//!   conversions (Neural-PIM-style \[11\]), and SRAM-based digital IMC with
//!   adder trees.
//! * **Architecture** ([`tile`], [`eval`]) — a multi-tile IMC system with a
//!   weight-mapping compiler, plus end-to-end DNN accuracy/energy evaluation
//!   under device non-idealities.
//!
//! ```
//! use f2_imc::device::DeviceModel;
//! use f2_imc::program::{ProgramVerify, Programmer};
//! use f2_core::rng::rng_for;
//!
//! let dev = DeviceModel::rram();
//! let mut rng = rng_for(1, "demo");
//! let target = dev.level_conductance(2, 4)?; // level 2 of a 4-level MLC
//! let outcome = ProgramVerify::default().program(&dev, target, &mut rng);
//! assert!((outcome.conductance - target).abs() / target < 0.05);
//! # Ok::<(), f2_imc::ImcError>(())
//! ```

pub mod crossbar;
pub mod device;
pub mod dimc;
pub mod error;
pub mod eval;
pub mod experiments;
pub mod program;
pub mod slicing;
pub mod tile;

pub use error::ImcError;

/// Convenience result alias used across `f2-imc`.
pub type Result<T> = std::result::Result<T, ImcError>;
