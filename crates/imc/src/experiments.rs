//! This thrust's registry entries for the unified `f2` runner.

use f2_core::energy::{EnergyLedger, OpEnergy, OpKind, TechNode};
use f2_core::experiment::render::fmt;
use f2_core::experiment::{Experiment, ExperimentCtx, ExperimentReport, ParamSpec};
use f2_core::kpi::Megahertz;
use f2_core::tensor::Matrix;

use crate::crossbar::{Adc, Crossbar};
use crate::device::DeviceModel;
use crate::dimc::DimcMacro;
use crate::eval::{imc_accuracy, make_train_test, train_mlp, DeploymentScenario};
use crate::program::{program_array, OpenLoop, ProgramVerify, Programmer};
use crate::tile::{ImcTileLayer, TileConfig};

/// E3 / §IV (device level) — program-and-verify vs open-loop programming.
///
/// Reproduces: (a) P&V collapses the conductance-error distribution at the
/// cost of more pulses; (b) deployed-DNN accuracy is retained under P&V and
/// degraded by open-loop programming; (c) PCM drift erodes accuracy over
/// time and digital compensation restores it.
pub struct ImcAccuracy;

impl ImcAccuracy {
    fn programming_table(&self, ctx: &mut ExperimentCtx) {
        let cells = ctx.param_u64("cells", if ctx.quick() { 500 } else { 2000 }) as usize;
        ctx.section(&format!(
            "Programming error vs pulse budget (RRAM, {cells} cells)"
        ));
        let dev = DeviceModel::rram();
        let weights: Vec<f64> = (0..cells).map(|i| (i % 101) as f64 / 100.0).collect();
        let mut rows = Vec::new();
        let mut rng = ctx.rng_for("e3-open");
        let (_, ol) = program_array(&OpenLoop, &dev, &weights, &mut rng);
        rows.push(vec![
            "open-loop".to_string(),
            fmt(ol.rms_error * 100.0, 2),
            fmt(ol.total_pulses as f64 / weights.len() as f64, 1),
        ]);
        ctx.kpi("programming/open_loop_rms_pct", ol.rms_error * 100.0);
        for tol in [0.05, 0.02, 0.01, 0.005] {
            let pv = ProgramVerify {
                tolerance: tol,
                max_pulses: 64,
            };
            let mut rng = ctx.rng_for("e3-pv");
            let (_, st) = program_array(&pv, &dev, &weights, &mut rng);
            rows.push(vec![
                format!("P&V tol {:.1}%", tol * 100.0),
                fmt(st.rms_error * 100.0, 2),
                fmt(st.total_pulses as f64 / weights.len() as f64, 1),
            ]);
            if tol == 0.01 {
                ctx.kpi("programming/pv_1pct_rms_pct", st.rms_error * 100.0);
                ctx.kpi(
                    "programming/pv_1pct_pulses_per_cell",
                    st.total_pulses as f64 / weights.len() as f64,
                );
            }
        }
        ctx.table(&["Scheme", "RMS error (% window)", "Pulses/cell"], &rows);
    }

    fn accuracy_table(&self, ctx: &mut ExperimentCtx) {
        ctx.section("Deployed MLP accuracy (6-class synthetic task, tiled IMC)");
        let (train_d, test_d, epochs_d) = if ctx.quick() {
            (40, 24, 10)
        } else {
            (80, 40, 15)
        };
        let train_n = ctx.param_u64("train_n", train_d) as usize;
        let test_n = ctx.param_u64("test_n", test_d) as usize;
        let epochs = ctx.param_u64("epochs", epochs_d) as usize;
        let (train, test) = make_train_test(6, 12, train_n, test_n, 0.25, 7);
        let mlp = train_mlp(&train, 20, epochs, 0.05, 9);
        let float_acc = mlp.accuracy(&test);
        ctx.note(&format!("float32 reference accuracy: {float_acc:.3}"));
        ctx.kpi("accuracy/float32", float_acc);

        let tile = TileConfig {
            tile_rows: 16,
            tile_cols: 16,
            adc_bits: 9,
            analog_accumulation: true,
            drift_compensation: false,
        };
        let scenarios: [(&str, &str, DeviceModel, f64, bool, bool); 5] = [
            (
                "RRAM P&V, t=1s",
                "rram_pv",
                DeviceModel::rram(),
                1.0,
                false,
                true,
            ),
            (
                "RRAM open-loop, t=1s",
                "rram_open",
                DeviceModel::rram(),
                1.0,
                false,
                false,
            ),
            (
                "PCM P&V, t=1s",
                "pcm_pv",
                DeviceModel::pcm(),
                1.0,
                false,
                true,
            ),
            (
                "PCM P&V, t=1e7s",
                "pcm_drift",
                DeviceModel::pcm(),
                1e7,
                false,
                true,
            ),
            (
                "PCM P&V, t=1e7s +comp",
                "pcm_drift_comp",
                DeviceModel::pcm(),
                1e7,
                true,
                true,
            ),
        ];
        let mut rows = Vec::new();
        for (label, key, dev, t, comp, pv) in scenarios {
            let scenario = DeploymentScenario {
                device: dev,
                inference_time: t,
                tile: TileConfig {
                    drift_compensation: comp,
                    ..tile
                },
            };
            let acc = if pv {
                deployed_accuracy(&mlp, &test, &scenario, &ProgramVerify::default())
            } else {
                deployed_accuracy(&mlp, &test, &scenario, &OpenLoop)
            };
            rows.push(vec![label.to_string(), fmt(acc, 3)]);
            ctx.kpi(&format!("accuracy/{key}"), acc);
        }
        ctx.table(&["Scenario", "Accuracy"], &rows);
        ctx.note("\nShape check: P&V ≈ float; open-loop loses accuracy; PCM drift");
        ctx.note("erodes it over 7 decades; digital compensation restores it (§IV).");
    }
}

fn deployed_accuracy<P: Programmer>(
    mlp: &crate::eval::Mlp,
    test: &crate::eval::Dataset,
    scenario: &DeploymentScenario,
    programmer: &P,
) -> f64 {
    imc_accuracy(mlp, test, scenario, programmer, 11)
        .expect("deployment is valid")
        .accuracy
}

impl Experiment for ImcAccuracy {
    fn name(&self) -> &'static str {
        "imc_accuracy"
    }

    fn summary(&self) -> &'static str {
        "E3 / §IV: program-and-verify vs open-loop programming, drift"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["e3", "imc"]
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::u64("cells", "programmed RRAM cells (quick 500, full 2000)"),
            ParamSpec::u64(
                "train_n",
                "MLP training samples per class (quick 40, full 80)",
            ),
            ParamSpec::u64("test_n", "MLP test samples per class (quick 24, full 40)"),
            ParamSpec::u64("epochs", "MLP training epochs (quick 10, full 15)"),
        ]
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> f2_core::Result<ExperimentReport> {
        {
            let _phase = ctx.span("imc:programming");
            self.programming_table(ctx);
        }
        {
            let _phase = ctx.span("imc:accuracy");
            self.accuracy_table(ctx);
        }
        Ok(ctx.report(self.name()))
    }
}

/// E4 / §IV (circuit level) — analog IMC vs digital baselines, the ADC
/// bottleneck, analog accumulation, and the DIMC efficiency band.
pub struct ImcEnergy;

impl ImcEnergy {
    fn mvm_energy_breakdown(&self, ctx: &mut ExperimentCtx) {
        let n = ctx.param_u64("mvm_n", if ctx.quick() { 64 } else { 128 }) as usize;
        ctx.section(&format!(
            "{n}x{n} MVM energy: analog IMC vs digital MAC baseline (45nm)"
        ));
        let table = OpEnergy::for_node(TechNode::N45);
        let weights = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 41) as f64 / 20.0 - 1.0);
        let mut rng = ctx.rng_for("e4");
        let xbar = Crossbar::program(
            DeviceModel::rram(),
            &weights,
            &ProgramVerify::default(),
            &mut rng,
        )
        .expect("valid weights");
        let x = vec![0.5; n];
        let mut ledger = EnergyLedger::new();
        xbar.mvm(&x, 1.0, &Adc::new(8), &mut rng, &mut ledger)
            .expect("valid geometry");

        let analog_total = ledger.total_energy(&table);
        let adc_share = ledger.energy_of(OpKind::AdcConversion, &table);
        // Digital baseline: n*n 8-bit MACs + SRAM weight reads.
        let mut digital = EnergyLedger::new();
        digital.record(OpKind::MacInt8, (n * n) as u64);
        digital.record(OpKind::SramRead32, (n * n / 4) as u64);
        let digital_total = digital.total_energy(&table);

        let rows = vec![
            vec![
                "analog crossbar (8b ADC)".to_string(),
                fmt(analog_total.to_picojoules().value() / 1000.0, 2),
                fmt(adc_share.value() / analog_total.value() * 100.0, 1),
            ],
            vec![
                "digital MAC + SRAM".to_string(),
                fmt(digital_total.to_picojoules().value() / 1000.0, 2),
                "-".to_string(),
            ],
        ];
        ctx.table(
            &["Implementation", "Energy (nJ/MVM)", "ADC share (%)"],
            &rows,
        );
        let advantage = digital_total.value() / analog_total.value();
        ctx.note(&format!(
            "Analog advantage: {advantage:.1}x lower energy; ADC dominates the analog budget (§IV)."
        ));
        ctx.kpi(
            "mvm/analog_nj",
            analog_total.to_picojoules().value() / 1000.0,
        );
        ctx.kpi(
            "mvm/digital_nj",
            digital_total.to_picojoules().value() / 1000.0,
        );
        ctx.kpi(
            "mvm/adc_share_pct",
            adc_share.value() / analog_total.value() * 100.0,
        );
        ctx.kpi("mvm/analog_advantage", advantage);
    }

    fn adc_ablation(&self, ctx: &mut ExperimentCtx) {
        ctx.section("Ablation: ADC precision vs energy and output error (64x16 layer)");
        let weights = Matrix::from_fn(64, 16, |r, c| ((r * 13 + c * 7) % 23) as f64 / 11.0 - 1.0);
        let table = OpEnergy::for_node(TechNode::N45);
        let bits_list: &[u32] = if ctx.quick() {
            &[4, 8, 12]
        } else {
            &[4, 6, 8, 10, 12]
        };
        // Each precision point reprograms and evaluates a fresh crossbar from
        // its own seeded RNG stream, so the points are independent — run them
        // on the context's worker budget.
        let seed = ctx.seed();
        let results = ctx.exec().map(bits_list, |&bits| {
            let mut rng = f2_core::rng::rng_for(seed, "e4-adc");
            let xbar = Crossbar::program(
                DeviceModel::rram(),
                &weights,
                &ProgramVerify::default(),
                &mut rng,
            )
            .expect("valid weights");
            let x: Vec<f64> = (0..64).map(|i| ((i % 9) as f64 - 4.0) / 4.0).collect();
            let ideal = xbar.mvm_ideal(&x, 1.0).expect("valid geometry");
            let mut ledger = EnergyLedger::new();
            let got = xbar
                .mvm(&x, 1.0, &Adc::new(bits), &mut rng, &mut ledger)
                .expect("valid geometry");
            let rmse: f64 = (got
                .iter()
                .zip(&ideal)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                / 16.0)
                .sqrt();
            // SAR ADC energy scales ~2x per extra bit; rebuild the total with
            // a precision-scaled conversion cost (anchor: 2 pJ at 8 bits).
            let adc_pj = 2.0 * 2f64.powi(bits as i32 - 8);
            let non_adc = ledger.total_energy(&table).to_picojoules().value()
                - ledger.count(OpKind::AdcConversion) as f64 * 2.0;
            let e = non_adc + ledger.count(OpKind::AdcConversion) as f64 * adc_pj;
            (e / 1000.0, rmse)
        });
        let mut rows = Vec::new();
        for (&bits, &(energy_nj, rmse)) in bits_list.iter().zip(&results) {
            rows.push(vec![bits.to_string(), fmt(energy_nj, 3), fmt(rmse, 4)]);
            ctx.kpi(&format!("adc/rmse_{bits}b"), rmse);
        }
        ctx.table(&["ADC bits", "Energy (nJ/MVM)", "Output RMSE"], &rows);
    }

    fn analog_accumulation(&self, ctx: &mut ExperimentCtx) {
        ctx.section("Analog accumulation: A/D conversions per 64x16 layer (16-row tiles)");
        let weights = Matrix::from_fn(64, 16, |r, c| ((r * 3 + c) % 13) as f64 / 6.0 - 1.0);
        let bias = vec![0.0; 16];
        let mut rows = Vec::new();
        for analog in [false, true] {
            let cfg = TileConfig {
                tile_rows: 16,
                tile_cols: 16,
                adc_bits: 8,
                analog_accumulation: analog,
                drift_compensation: false,
            };
            let mut rng = ctx.rng_for("e4-acc");
            let layer = ImcTileLayer::map(
                &weights,
                &bias,
                DeviceModel::rram(),
                &cfg,
                &ProgramVerify::default(),
                &mut rng,
            )
            .expect("valid layer");
            let mut ledger = EnergyLedger::new();
            layer
                .forward(&vec![0.5; 64], 1.0, &cfg, &mut rng, &mut ledger)
                .expect("valid geometry");
            let conversions = ledger.count(OpKind::AdcConversion);
            rows.push(vec![
                if analog {
                    "analog accumulation"
                } else {
                    "per-tile ADC"
                }
                .to_string(),
                conversions.to_string(),
            ]);
            ctx.kpi(
                &format!(
                    "accumulation/adc_conversions_{}",
                    if analog { "analog" } else { "per_tile" }
                ),
                conversions as f64,
            );
        }
        ctx.table(&["Scheme", "ADC conversions"], &rows);
        ctx.note("Analog accumulation divides conversions by the row-block count ([11]).");
    }

    fn input_mode_ablation(&self, ctx: &mut ExperimentCtx) {
        ctx.section("Ablation: analog-input vs bit-serial input drive (64x16 layer)");
        let weights = Matrix::from_fn(64, 16, |r, c| ((r * 11 + c * 3) % 19) as f64 / 9.0 - 1.0);
        let table = OpEnergy::for_node(TechNode::N45);
        let mut rng = ctx.rng_for("e4-input");
        let xbar = Crossbar::program(
            DeviceModel::rram(),
            &weights,
            &ProgramVerify::default(),
            &mut rng,
        )
        .expect("valid weights");
        let x: Vec<f64> = (0..64).map(|i| ((i % 13) as f64 - 6.0) / 6.0).collect();
        let ideal = xbar.mvm_ideal(&x, 1.0).expect("valid geometry");
        let rmse = |y: &[f64]| -> f64 {
            (y.iter()
                .zip(&ideal)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                / 16.0)
                .sqrt()
        };
        let mut rows = Vec::new();
        {
            let mut ledger = EnergyLedger::new();
            let y = xbar
                .mvm(&x, 1.0, &Adc::new(8), &mut rng, &mut ledger)
                .expect("valid geometry");
            rows.push(vec![
                "analog input (1 pass)".to_string(),
                ledger.count(OpKind::DacConversion).to_string(),
                ledger.count(OpKind::AdcConversion).to_string(),
                fmt(
                    ledger.total_energy(&table).to_picojoules().value() / 1000.0,
                    3,
                ),
                fmt(rmse(&y), 4),
            ]);
        }
        for bits in [2u32, 4, 8] {
            let mut ledger = EnergyLedger::new();
            let y = xbar
                .mvm_bit_serial(&x, 1.0, bits, &Adc::new(8), &mut rng, &mut ledger)
                .expect("valid geometry");
            let conversions = ledger.count(OpKind::AdcConversion);
            rows.push(vec![
                format!("bit-serial ({bits} passes)"),
                "0".to_string(),
                conversions.to_string(),
                fmt(
                    ledger.total_energy(&table).to_picojoules().value() / 1000.0,
                    3,
                ),
                fmt(rmse(&y), 4),
            ]);
            ctx.kpi(
                &format!("input_drive/bit_serial_{bits}b_adc_conversions"),
                conversions as f64,
            );
        }
        ctx.table(
            &[
                "Input drive",
                "DACs",
                "ADC convs",
                "Energy nJ",
                "Output RMSE",
            ],
            &rows,
        );
        ctx.note("Analog input maximises parallelism (one pass); bit-serial removes");
        ctx.note("DACs at the cost of one ADC pass per input bit (§IV trade-off).");
    }

    fn dimc_band(&self, ctx: &mut ExperimentCtx) {
        ctx.section("SRAM digital IMC: precision vs TOPS/W (ISSCC'23 band: 40-310)");
        let weights: Vec<i32> = (0..128 * 128).map(|i| (i % 15) - 7).collect();
        let mut rows = Vec::new();
        for bits in [1u32, 2, 4, 8] {
            let m = DimcMacro::new(
                128,
                128,
                bits,
                bits,
                &weights,
                Megahertz::new(500.0),
                TechNode::N16,
            )
            .expect("valid macro");
            rows.push(vec![
                format!("{bits}b x {bits}b"),
                fmt(m.peak_throughput().value(), 2),
                fmt(m.power().value() * 1000.0, 1),
                fmt(m.efficiency().value(), 0),
            ]);
            ctx.kpi(
                &format!("dimc/tops_per_watt_{bits}b"),
                m.efficiency().value(),
            );
        }
        ctx.table(&["Precision", "Peak TOPS", "Power mW", "TOPS/W"], &rows);
    }
}

impl Experiment for ImcEnergy {
    fn name(&self) -> &'static str {
        "imc_energy"
    }

    fn summary(&self) -> &'static str {
        "E4 / §IV: analog vs digital MVM energy, ADC bottleneck, DIMC band"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["e4", "imc", "energy"]
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![ParamSpec::u64(
            "mvm_n",
            "square MVM dimension of the energy breakdown (quick 64, full 128)",
        )]
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> f2_core::Result<ExperimentReport> {
        for (label, phase) in [
            (
                "imc:mvm_energy",
                Self::mvm_energy_breakdown as fn(&Self, &mut ExperimentCtx),
            ),
            ("imc:adc_ablation", Self::adc_ablation),
            ("imc:analog_accumulation", Self::analog_accumulation),
            ("imc:input_mode_ablation", Self::input_mode_ablation),
            ("imc:dimc_band", Self::dimc_band),
        ] {
            let _phase = ctx.span(label);
            phase(self, ctx);
        }
        Ok(ctx.report(self.name()))
    }
}

/// This crate's experiments, for registry assembly.
pub fn experiments() -> Vec<Box<dyn Experiment>> {
    vec![Box::new(ImcAccuracy), Box::new(ImcEnergy)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imc_accuracy_preserves_pv_vs_open_loop_ordering() {
        let mut ctx = ExperimentCtx::quiet(f2_core::rng::DEFAULT_SEED, true, 2);
        let report = ImcAccuracy.run(&mut ctx).expect("runs");
        let open = report.kpi("programming/open_loop_rms_pct").expect("kpi");
        let pv = report.kpi("programming/pv_1pct_rms_pct").expect("kpi");
        assert!(pv < open, "P&V must collapse the programming error");
    }

    #[test]
    fn imc_energy_analog_beats_digital() {
        let mut ctx = ExperimentCtx::quiet(f2_core::rng::DEFAULT_SEED, true, 2);
        let report = ImcEnergy.run(&mut ctx).expect("runs");
        assert!(report.kpi("mvm/analog_advantage").expect("kpi") > 1.0);
        // ADC RMSE shrinks with precision.
        let coarse = report.kpi("adc/rmse_4b").expect("kpi");
        let fine = report.kpi("adc/rmse_12b").expect("kpi");
        assert!(fine < coarse);
    }
}
