//! Programming schemes: open-loop vs program-and-verify.
//!
//! §IV: "we developed high-precision program-and-verify algorithms to counter
//! these non-ideal device effects, while avoiding imprecise mapping of
//! coefficients and consequent degradation of the DNN accuracy."
//!
//! [`OpenLoop`] fires a single pulse; [`ProgramVerify`] iterates
//! pulse→read→compare until the cell lands within a tolerance band around the
//! target. The outcome records the pulse count, which the energy model
//! converts into programming cost — exposing the §IV accuracy/energy
//! trade-off.

use crate::device::DeviceModel;
use f2_core::rng::Rng;

/// Result of programming one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramOutcome {
    /// Final conductance reached (µS), as verified at `t₀`.
    pub conductance: f64,
    /// Number of programming pulses applied.
    pub pulses: u32,
    /// Whether the verify loop converged within its pulse budget
    /// (always `true` for open-loop, which does not verify).
    pub converged: bool,
}

/// A cell-programming strategy.
pub trait Programmer {
    /// Programs a cell of `device` toward `target` µS.
    fn program(&self, device: &DeviceModel, target: f64, rng: &mut impl Rng) -> ProgramOutcome
    where
        Self: Sized;
}

/// Single-pulse open-loop programming (the imprecise baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenLoop;

impl Programmer for OpenLoop {
    fn program(&self, device: &DeviceModel, target: f64, rng: &mut impl Rng) -> ProgramOutcome {
        ProgramOutcome {
            conductance: device.program_open_loop(target, rng),
            pulses: 1,
            converged: true,
        }
    }
}

/// Iterative program-and-verify with a relative tolerance band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramVerify {
    /// Acceptance band as a fraction of the conductance window.
    pub tolerance: f64,
    /// Maximum pulses before giving up.
    pub max_pulses: u32,
}

impl Default for ProgramVerify {
    /// 1% of the window, up to 32 pulses — the high-precision regime of \[10\].
    fn default() -> Self {
        Self {
            tolerance: 0.01,
            max_pulses: 32,
        }
    }
}

impl Programmer for ProgramVerify {
    fn program(&self, device: &DeviceModel, target: f64, rng: &mut impl Rng) -> ProgramOutcome {
        let band = self.tolerance * device.window();
        let mut g = device.program_open_loop(target, rng);
        let mut pulses = 1;
        while (g - target).abs() > band && pulses < self.max_pulses {
            g = device.program_step(g, target, rng);
            pulses += 1;
        }
        ProgramOutcome {
            conductance: g,
            pulses,
            converged: (g - target).abs() <= band,
        }
    }
}

/// Programs a whole normalised weight array (`w ∈ [0, 1]`) and returns the
/// achieved conductances plus aggregate statistics.
pub fn program_array<P: Programmer>(
    programmer: &P,
    device: &DeviceModel,
    weights: &[f64],
    rng: &mut impl Rng,
) -> (Vec<f64>, ArrayProgramStats) {
    let mut conductances = Vec::with_capacity(weights.len());
    let mut total_pulses = 0u64;
    let mut err_sq = 0.0;
    let mut failures = 0u64;
    for &w in weights {
        let target = device.weight_to_conductance(w);
        let out = programmer.program(device, target, rng);
        total_pulses += out.pulses as u64;
        err_sq += ((out.conductance - target) / device.window()).powi(2);
        if !out.converged {
            failures += 1;
        }
        conductances.push(out.conductance);
    }
    let n = weights.len().max(1) as f64;
    (
        conductances,
        ArrayProgramStats {
            total_pulses,
            rms_error: (err_sq / n).sqrt(),
            failures,
        },
    )
}

/// Aggregate statistics of programming an array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayProgramStats {
    /// Pulses summed over all cells (∝ programming energy).
    pub total_pulses: u64,
    /// RMS conductance error normalised to the window.
    pub rms_error: f64,
    /// Cells that failed to converge.
    pub failures: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_core::rng::rng_for;

    #[test]
    fn verify_is_tighter_than_open_loop() {
        let dev = DeviceModel::rram();
        let mut rng = rng_for(1, "pv");
        let weights: Vec<f64> = (0..500).map(|i| (i % 97) as f64 / 96.0).collect();
        let (_, open) = program_array(&OpenLoop, &dev, &weights, &mut rng);
        let (_, pv) = program_array(&ProgramVerify::default(), &dev, &weights, &mut rng);
        // The §IV claim: P&V shrinks the error distribution dramatically.
        assert!(
            pv.rms_error < open.rms_error / 5.0,
            "P&V rms {} vs open-loop rms {}",
            pv.rms_error,
            open.rms_error
        );
    }

    #[test]
    fn verify_costs_more_pulses() {
        let dev = DeviceModel::rram();
        let mut rng = rng_for(2, "pulses");
        let weights = vec![0.5; 200];
        let (_, open) = program_array(&OpenLoop, &dev, &weights, &mut rng);
        let (_, pv) = program_array(&ProgramVerify::default(), &dev, &weights, &mut rng);
        assert_eq!(open.total_pulses, 200);
        assert!(pv.total_pulses > 2 * open.total_pulses);
    }

    #[test]
    fn tighter_tolerance_more_pulses() {
        let dev = DeviceModel::pcm();
        let mut rng = rng_for(3, "tol");
        let weights = vec![0.3; 200];
        let loose = ProgramVerify {
            tolerance: 0.05,
            max_pulses: 64,
        };
        let tight = ProgramVerify {
            tolerance: 0.005,
            max_pulses: 64,
        };
        let (_, l) = program_array(&loose, &dev, &weights, &mut rng);
        let (_, t) = program_array(&tight, &dev, &weights, &mut rng);
        assert!(t.total_pulses > l.total_pulses);
        assert!(t.rms_error < l.rms_error);
    }

    #[test]
    fn outcomes_respect_tolerance_when_converged() {
        let dev = DeviceModel::rram();
        let mut rng = rng_for(4, "band");
        let pv = ProgramVerify::default();
        for w in [0.1, 0.5, 0.9] {
            let target = dev.weight_to_conductance(w);
            let out = pv.program(&dev, target, &mut rng);
            if out.converged {
                assert!((out.conductance - target).abs() <= pv.tolerance * dev.window() + 1e-12);
            }
            assert!(out.pulses <= pv.max_pulses);
        }
    }

    #[test]
    fn pulse_budget_caps_effort() {
        let dev = DeviceModel::pcm();
        let mut rng = rng_for(5, "budget");
        let pv = ProgramVerify {
            tolerance: 1e-6, // unreachable under noise
            max_pulses: 8,
        };
        let out = pv.program(&dev, 25.0, &mut rng);
        assert_eq!(out.pulses, 8);
        assert!(!out.converged);
    }

    #[test]
    fn empty_array_stats() {
        let dev = DeviceModel::rram();
        let mut rng = rng_for(6, "empty");
        let (gs, stats) = program_array(&OpenLoop, &dev, &[], &mut rng);
        assert!(gs.is_empty());
        assert_eq!(stats.total_pulses, 0);
        assert_eq!(stats.rms_error, 0.0);
    }
}

f2_core::impl_to_json!(ProgramOutcome {
    conductance,
    pulses,
    converged
});
