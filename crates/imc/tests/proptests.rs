//! Property-based tests of IMC device and circuit invariants.

use f2_core::energy::EnergyLedger;
use f2_core::ptest::assume;
use f2_core::rng::rng_for;
use f2_core::tensor::Matrix;
use f2_imc::crossbar::{Adc, Crossbar};
use f2_imc::device::DeviceModel;
use f2_imc::program::{ProgramVerify, Programmer};

f2_core::ptest! {
    /// Programmed conductances always stay inside the device window.
    fn programming_stays_in_window(g) {
        let target_frac = g.f64_in(0.0, 1.0);
        let seed = g.u64();
        for dev in [DeviceModel::rram(), DeviceModel::pcm()] {
            let target = dev.g_min + target_frac * dev.window();
            let mut rng = rng_for(seed, "prop-prog");
            let out = ProgramVerify::default().program(&dev, target, &mut rng);
            assert!(out.conductance >= dev.g_min && out.conductance <= dev.g_max);
            assert!(out.pulses >= 1 && out.pulses <= 32);
        }
    }

    /// Drift never increases conductance and is monotone in time.
    fn drift_monotone(g) {
        let g_frac = g.f64_in(0.01, 1.0);
        let t1 = g.f64_in(1.0, 1e6);
        let scale = g.f64_in(1.1, 100.0);
        let dev = DeviceModel::pcm();
        let cond = dev.g_min + g_frac * dev.window();
        let d1 = dev.drift(cond, t1);
        let d2 = dev.drift(cond, t1 * scale);
        assert!(d1 <= cond + 1e-12);
        assert!(d2 <= d1 + 1e-12);
        assert!(d2 > 0.0);
    }

    /// MLC level targets are ordered and span the window.
    fn mlc_levels_ordered(g) {
        let levels = g.usize_in(2..16);
        let dev = DeviceModel::rram();
        let mut last = f64::NEG_INFINITY;
        for l in 0..levels {
            let cond = dev.level_conductance(l, levels).expect("in range");
            assert!(cond > last);
            last = cond;
        }
        assert!((dev.level_conductance(0, levels).expect("in range") - dev.g_min).abs() < 1e-12);
        assert!((last - dev.g_max).abs() < 1e-12);
    }

    /// Ideal crossbar MVM is linear: scaling the input scales the output.
    fn crossbar_mvm_linear(g) {
        let scale = g.f64_in(0.1, 1.0);
        let seed = g.u64();
        let w = Matrix::from_fn(12, 5, |r, c| {
            (((r * 7 + c * 3 + seed as usize) % 17) as f64) / 8.0 - 1.0
        });
        assume(w.max_abs() > 0.0);
        let mut rng = rng_for(seed, "prop-xbar");
        let xb = Crossbar::program(DeviceModel::rram(), &w, &ProgramVerify::default(), &mut rng)
            .expect("valid weights");
        let x: Vec<f64> = (0..12).map(|i| ((i % 5) as f64 - 2.0) / 4.0).collect();
        let xs: Vec<f64> = x.iter().map(|v| v * scale).collect();
        let y1 = xb.mvm_ideal(&x, 1.0).expect("shape");
        let y2 = xb.mvm_ideal(&xs, 1.0).expect("shape");
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a * scale - b).abs() < 1e-6, "{a} * {scale} vs {b}");
        }
    }

    /// ADC quantisation is idempotent and bounded by full scale.
    fn adc_idempotent(g) {
        let value = g.f64_in(-10.0, 10.0);
        let bits = g.u32_in(1..13);
        let fs = g.f64_in(0.5, 8.0);
        let adc = Adc::new(bits);
        let q = adc.quantize(value, fs);
        assert!((adc.quantize(q, fs) - q).abs() < 1e-12);
        assert!(q.abs() <= fs + 1e-12);
        // Error bounded by one LSB.
        let lsb = 2.0 * fs / (1u64 << bits) as f64;
        if value.abs() <= fs {
            assert!((q - value).abs() <= lsb / 2.0 + 1e-12);
        }
    }

    /// Reusing bit-serial MVM scratch buffers across calls is bit-identical
    /// to allocating fresh buffers per call, for any geometry, input
    /// precision and seed — the noise-RNG draw order is part of the
    /// contract.
    fn mvm_scratch_reuse_bit_identical(g) {
        let rows = g.usize_in(2..20);
        let cols = g.usize_in(2..20);
        let bits = g.u32_in(1..9);
        let seed = g.u64();
        let w = Matrix::from_fn(rows, cols, |r, c| {
            (((r * 7 + c * 3 + seed as usize) % 17) as f64) / 8.0 - 1.0
        });
        let mut rng = rng_for(seed, "prop-mvm-prog");
        let xbar = Crossbar::program(DeviceModel::rram(), &w, &ProgramVerify::default(), &mut rng)
            .expect("valid weights");
        let x: Vec<f64> = (0..rows).map(|i| ((i % 7) as f64 - 3.0) / 3.0).collect();
        let adc = Adc::new(8);
        let mut rng_fresh = rng_for(seed, "prop-mvm-run");
        let mut rng_reuse = rng_for(seed, "prop-mvm-run");
        let mut scratch = f2_imc::crossbar::MvmScratch::new();
        for _ in 0..3 {
            let mut ledger_fresh = EnergyLedger::new();
            let mut ledger_reuse = EnergyLedger::new();
            let fresh = xbar
                .mvm_bit_serial(&x, 1.0, bits, &adc, &mut rng_fresh, &mut ledger_fresh)
                .expect("valid geometry");
            let reused = xbar
                .mvm_bit_serial_with(
                    &x, 1.0, bits, &adc, &mut rng_reuse, &mut ledger_reuse, &mut scratch,
                )
                .expect("valid geometry");
            assert_eq!(fresh.len(), reused.len());
            for (a, b) in fresh.iter().zip(&reused) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
            }
        }
    }

    /// The MLP forward pass over row-major weights (`matvec_t`) is
    /// bit-identical to the historical transposed-copy reference, for any
    /// layer shape and weight values.
    fn mlp_forward_matches_transposed_reference(g) {
        use f2_imc::eval::Mlp;
        let dim = g.usize_in(1..16);
        let hidden = g.usize_in(1..16);
        let classes = g.usize_in(1..8);
        let seed = g.u64() as usize;
        let noise = |r: usize, c: usize| (((r * 13 + c * 5 + seed) % 23) as f64) / 11.0 - 1.0;
        let mlp = Mlp {
            w1: Matrix::from_fn(dim, hidden, noise),
            b1: (0..hidden).map(|i| noise(i, 1)).collect(),
            w2: Matrix::from_fn(hidden, classes, noise),
            b2: (0..classes).map(|i| noise(i, 2)).collect(),
        };
        let x: Vec<f64> = (0..dim).map(|i| noise(i, 3)).collect();
        let fast = mlp.logits(&x);
        // Reference: the pre-optimization transposed-copy path.
        let mut h = mlp.w1.transposed().matvec(&x).expect("shape");
        for (v, b) in h.iter_mut().zip(&mlp.b1) {
            *v = (*v + b).max(0.0);
        }
        let mut o = mlp.w2.transposed().matvec(&h).expect("shape");
        for (v, b) in o.iter_mut().zip(&mlp.b2) {
            *v += b;
        }
        assert_eq!(fast.len(), o.len());
        for (a, b) in fast.iter().zip(&o) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    /// Energy ledgers merge additively.
    fn ledger_merge_additive(g) {
        use f2_core::energy::OpKind;
        let n1 = g.u64_in(0..1000);
        let n2 = g.u64_in(0..1000);
        let mut a = EnergyLedger::new();
        a.record(OpKind::AnalogCrossbarMac, n1);
        let mut b = EnergyLedger::new();
        b.record(OpKind::AnalogCrossbarMac, n2);
        a.merge(&b);
        assert_eq!(a.count(OpKind::AnalogCrossbarMac), n1 + n2);
    }
}
