//! Property-based tests of IMC device and circuit invariants.

use f2_core::energy::EnergyLedger;
use f2_core::rng::rng_for;
use f2_core::tensor::Matrix;
use f2_imc::crossbar::{Adc, Crossbar};
use f2_imc::device::DeviceModel;
use f2_imc::program::{ProgramVerify, Programmer};
use proptest::prelude::*;

proptest! {
    /// Programmed conductances always stay inside the device window.
    #[test]
    fn programming_stays_in_window(target_frac in 0.0f64..1.0, seed in any::<u64>()) {
        for dev in [DeviceModel::rram(), DeviceModel::pcm()] {
            let target = dev.g_min + target_frac * dev.window();
            let mut rng = rng_for(seed, "prop-prog");
            let out = ProgramVerify::default().program(&dev, target, &mut rng);
            prop_assert!(out.conductance >= dev.g_min && out.conductance <= dev.g_max);
            prop_assert!(out.pulses >= 1 && out.pulses <= 32);
        }
    }

    /// Drift never increases conductance and is monotone in time.
    #[test]
    fn drift_monotone(g_frac in 0.01f64..1.0, t1 in 1.0f64..1e6, scale in 1.1f64..100.0) {
        let dev = DeviceModel::pcm();
        let g = dev.g_min + g_frac * dev.window();
        let d1 = dev.drift(g, t1);
        let d2 = dev.drift(g, t1 * scale);
        prop_assert!(d1 <= g + 1e-12);
        prop_assert!(d2 <= d1 + 1e-12);
        prop_assert!(d2 > 0.0);
    }

    /// MLC level targets are ordered and span the window.
    #[test]
    fn mlc_levels_ordered(levels in 2usize..16) {
        let dev = DeviceModel::rram();
        let mut last = f64::NEG_INFINITY;
        for l in 0..levels {
            let g = dev.level_conductance(l, levels).expect("in range");
            prop_assert!(g > last);
            last = g;
        }
        prop_assert!((dev.level_conductance(0, levels).expect("in range") - dev.g_min).abs() < 1e-12);
        prop_assert!((last - dev.g_max).abs() < 1e-12);
    }

    /// Ideal crossbar MVM is linear: scaling the input scales the output.
    #[test]
    fn crossbar_mvm_linear(scale in 0.1f64..1.0, seed in any::<u64>()) {
        let w = Matrix::from_fn(12, 5, |r, c| {
            (((r * 7 + c * 3 + seed as usize) % 17) as f64) / 8.0 - 1.0
        });
        prop_assume!(w.max_abs() > 0.0);
        let mut rng = rng_for(seed, "prop-xbar");
        let xb = Crossbar::program(DeviceModel::rram(), &w, &ProgramVerify::default(), &mut rng)
            .expect("valid weights");
        let x: Vec<f64> = (0..12).map(|i| ((i % 5) as f64 - 2.0) / 4.0).collect();
        let xs: Vec<f64> = x.iter().map(|v| v * scale).collect();
        let y1 = xb.mvm_ideal(&x, 1.0).expect("shape");
        let y2 = xb.mvm_ideal(&xs, 1.0).expect("shape");
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a * scale - b).abs() < 1e-6, "{a} * {scale} vs {b}");
        }
    }

    /// ADC quantisation is idempotent and bounded by full scale.
    #[test]
    fn adc_idempotent(value in -10.0f64..10.0, bits in 1u32..13, fs in 0.5f64..8.0) {
        let adc = Adc::new(bits);
        let q = adc.quantize(value, fs);
        prop_assert!((adc.quantize(q, fs) - q).abs() < 1e-12);
        prop_assert!(q.abs() <= fs + 1e-12);
        // Error bounded by one LSB.
        let lsb = 2.0 * fs / (1u64 << bits) as f64;
        if value.abs() <= fs {
            prop_assert!((q - value).abs() <= lsb / 2.0 + 1e-12);
        }
    }

    /// Energy ledgers merge additively.
    #[test]
    fn ledger_merge_additive(n1 in 0u64..1000, n2 in 0u64..1000) {
        use f2_core::energy::OpKind;
        let mut a = EnergyLedger::new();
        a.record(OpKind::AnalogCrossbarMac, n1);
        let mut b = EnergyLedger::new();
        b.record(OpKind::AnalogCrossbarMac, n2);
        a.merge(&b);
        prop_assert_eq!(a.count(OpKind::AnalogCrossbarMac), n1 + n2);
    }
}
