//! Integration suite: one test per paper experiment (E1-E13 in DESIGN.md),
//! each asserting the headline claim *shape* end-to-end through the public
//! facade. These are the executable form of EXPERIMENTS.md.

use flagship2::core::kpi::GigabytesPerSecond;
use flagship2::core::platform::{
    fig1_catalog, median_efficiency, riscv_sota_catalog, PlatformClass, PowerBand,
};
use flagship2::core::rng::DEFAULT_SEED;
use flagship2::core::workload::dnn::fsrcnn;
use flagship2::core::workload::graph::rmat;
use flagship2::core::workload::transformer::bert_base_block;

#[test]
fn e1_fig1_landscape_ordering() {
    let cat = fig1_catalog();
    let median = |c| {
        median_efficiency(&cat, c)
            .expect("class has entries")
            .value()
    };
    let cpu = median(PlatformClass::Cpu);
    let gpu = median(PlatformClass::Gpu);
    let cgra = median(PlatformClass::Cgra);
    let fpga = median(PlatformClass::Fpga);
    let sram = median(PlatformClass::NpuSramImc);
    let nvm = median(PlatformClass::NpuNvmImc);
    assert!(cpu < gpu && cpu < fpga, "CPUs least efficient");
    assert!(cgra > fpga, "CGRA between FPGA and ASIC");
    assert!(sram > gpu * 10.0 && nvm > gpu * 10.0, "IMC dominates");
}

#[test]
fn e2_sparta_beats_sequential_hls() {
    use flagship2::core::workload::sparse::SparseMatrix;
    use flagship2::hls::sparta::{run, CacheConfig, Kernel, SpartaConfig, WorkloadBuilder};
    let graph = rmat(9, 8, DEFAULT_SEED);
    let wl = WorkloadBuilder::new(&SparseMatrix::from_csr_graph(&graph))
        .kernel(Kernel::Spmv)
        .build();
    let base = run(&wl, &SpartaConfig::sequential_baseline(100)).expect("valid config");
    let cfg = SpartaConfig {
        accelerators: 4,
        contexts_per_accel: 8,
        mem_channels: 4,
        mem_latency: 100,
        noc_hop_latency: 2,
        context_switch_penalty: 1,
        cache: Some(CacheConfig::small()),
    };
    let opt = run(&wl, &cfg).expect("valid config");
    assert!(
        base.cycles as f64 / opt.cycles as f64 > 4.0,
        "SPARTA speedup too small: {} vs {}",
        base.cycles,
        opt.cycles
    );
}

#[test]
fn e3_program_and_verify_protects_accuracy() {
    use flagship2::imc::device::DeviceModel;
    use flagship2::imc::eval::{imc_accuracy, make_train_test, train_mlp, DeploymentScenario};
    use flagship2::imc::program::ProgramVerify;
    use flagship2::imc::tile::TileConfig;
    let (train, test) = make_train_test(6, 12, 60, 30, 0.25, 7);
    let mlp = train_mlp(&train, 20, 12, 0.05, 9);
    let float_acc = mlp.accuracy(&test);
    let scenario = DeploymentScenario {
        device: DeviceModel::rram(),
        inference_time: 1.0,
        tile: TileConfig {
            tile_rows: 16,
            tile_cols: 16,
            adc_bits: 9,
            analog_accumulation: true,
            drift_compensation: false,
        },
    };
    let eval =
        imc_accuracy(&mlp, &test, &scenario, &ProgramVerify::default(), 3).expect("deployable");
    assert!(float_acc > 0.9, "float accuracy {float_acc}");
    assert!(
        eval.accuracy > float_acc - 0.05,
        "IMC accuracy {} too far below float {}",
        eval.accuracy,
        float_acc
    );
}

#[test]
fn e4_analog_imc_beats_digital_energy_and_adc_dominates() {
    use flagship2::core::energy::{EnergyLedger, OpEnergy, OpKind, TechNode};
    let table = OpEnergy::for_node(TechNode::N45);
    // Analog 128x128 MVM event counts (from the crossbar model).
    let mut analog = EnergyLedger::new();
    analog.record(OpKind::DacConversion, 128);
    analog.record(OpKind::AnalogCrossbarMac, 128 * 128 * 2);
    analog.record(OpKind::AdcConversion, 128);
    let mut digital = EnergyLedger::new();
    digital.record(OpKind::MacInt8, 128 * 128);
    digital.record(OpKind::SramRead32, 128 * 128 / 4);
    let a = analog.total_energy(&table).value();
    let d = digital.total_energy(&table).value();
    assert!(d / a > 5.0, "analog advantage only {:.1}x", d / a);
    let adc = analog.energy_of(OpKind::AdcConversion, &table).value();
    assert!(
        adc / a > 0.2,
        "ADC share {:.2} should dominate analog cost",
        adc / a
    );
}

#[test]
fn e5_htconv_saves_macs_with_small_psnr_loss() {
    use flagship2::approx::htconv::{htconv_upscale2x, FoveaSpec};
    use flagship2::approx::image::Image;
    use flagship2::approx::psnr::psnr_cropped;
    use flagship2::approx::tconv::{bicubic_kernel, tconv_upscale2x};
    let hr = Image::synthetic(96, 96, 5);
    let lr = hr.downsample2x().expect("even dims");
    let (exact, _) = tconv_upscale2x(&lr, &bicubic_kernel());
    let fovea = FoveaSpec::centered_fraction(48, 48, 0.15);
    let (hybrid, stats) = htconv_upscale2x(&lr, &bicubic_kernel(), &fovea);
    let pe = psnr_cropped(&hr, &exact, 6).expect("same dims");
    let ph = psnr_cropped(&hr, &hybrid, 6).expect("same dims");
    assert!(stats.mac_saving_vs_exact() > 0.6);
    assert!(
        (pe - ph) / pe < 0.10,
        "PSNR loss too large: {pe:.2} -> {ph:.2}"
    );
    // Model-level: approximate model saves >80% vs the FSRCNN(56,12,4) baseline.
    let baseline = fsrcnn(56, 12, 4, 270, 480).expect("valid model");
    let small = fsrcnn(25, 5, 1, 270, 480).expect("valid model");
    let deconv: u64 = small
        .layers()
        .iter()
        .filter(|l| l.name() == "deconv")
        .map(|l| l.macs())
        .sum();
    let approx_macs = small.total_macs() - (deconv as f64 * 0.72) as u64;
    assert!(
        1.0 - approx_macs as f64 / baseline.total_macs() as f64 > 0.8,
        "model-level MAC saving under 80%"
    );
}

#[test]
fn e6_table1_new_row_relations() {
    use flagship2::approx::fpga_model::{chang2020_row, table1_rows};
    let rows = table1_rows();
    let new = &rows[2];
    let chang = chang2020_row();
    assert!(chang.luts as f64 / new.luts as f64 > 4.0);
    assert!(new.fmax.value() > chang.fmax.value());
    let gain = new.energy_efficiency().expect("modelled").value()
        / chang.energy_efficiency().expect("published").value();
    assert!(gain > 1.8, "efficiency gain {gain:.2}");
}

#[test]
fn e7_platform_tradeoffs_hold() {
    use flagship2::hetero::device::ComputeDevice;
    use flagship2::hetero::pipeline::{run_inference, run_training, PipelineSpec};
    use flagship2::hetero::storage::StorageDevice;
    let spec = PipelineSpec::segmentation_default();
    let nvme = StorageDevice::nvme_ssd();
    let gpu_t = run_training(&spec, &ComputeDevice::datacenter_gpu(), &nvme);
    let cpu_t = run_training(&spec, &ComputeDevice::server_cpu(), &nvme);
    assert!(gpu_t.total_time < cpu_t.total_time / 2.0);
    let fpga_i = run_inference(&spec, &ComputeDevice::fpga_card(), &nvme);
    let gpu_i = run_inference(&spec, &ComputeDevice::datacenter_gpu(), &nvme);
    assert!(fpga_i.energy.value() < gpu_i.energy.value());
}

#[test]
fn e8_computational_storage_buys_about_ten_percent() {
    use flagship2::hetero::device::ComputeDevice;
    use flagship2::hetero::pipeline::{run_inference, run_training, PipelineSpec};
    use flagship2::hetero::storage::StorageDevice;
    let spec = PipelineSpec::segmentation_default();
    let t_base = run_training(
        &spec,
        &ComputeDevice::datacenter_gpu(),
        &StorageDevice::nvme_ssd(),
    );
    let t_cs = run_training(
        &spec,
        &ComputeDevice::datacenter_gpu(),
        &StorageDevice::computational_storage(),
    );
    let train_gain = 1.0 - t_cs.total_time / t_base.total_time;
    assert!(
        (0.02..=0.15).contains(&train_gain),
        "training gain {train_gain:.3}"
    );
    let i_base = run_inference(
        &spec,
        &ComputeDevice::fpga_card(),
        &StorageDevice::nvme_ssd(),
    );
    let i_cs = run_inference(
        &spec,
        &ComputeDevice::fpga_card(),
        &StorageDevice::computational_storage(),
    );
    let infer_gain = i_cs.throughput / i_base.throughput - 1.0;
    assert!(
        (0.02..=0.2).contains(&infer_gain),
        "inference gain {infer_gain:.3}"
    );
}

#[test]
fn e9_dna_accelerator_published_figures() {
    use flagship2::dna::accelerator::{AcceleratorConfig, CpuBaseline};
    let fpga = AcceleratorConfig::alveo_u50();
    assert!((fpga.throughput().value() - 16.8).abs() / 16.8 < 0.05);
    assert!((fpga.pair_efficiency(150).value() - 46.0).abs() / 46.0 < 0.05);
    assert!(fpga.throughput().value() / CpuBaseline::server().throughput().value() > 100.0);
}

#[test]
fn e10_dna_pipeline_round_trip() {
    use flagship2::dna::pipeline::{run_pipeline, PipelineConfig};
    let payload =
        b"ICSC Flagship 2: architectures and design methodologies to accelerate AI workloads";
    let (recovered, report) =
        run_pipeline(payload, &PipelineConfig::default(), 42).expect("valid config");
    assert!(report.payload_recovered, "typical channel must round-trip");
    assert_eq!(recovered.expect("recovered").as_slice(), payload.as_slice());
}

#[test]
fn e11_riscv_sota_clusters_sub_watt() {
    let cat = riscv_sota_catalog();
    let band = |b| {
        cat.iter()
            .filter(|p| PowerBand::classify(p.power) == b)
            .count()
    };
    let mid = band(PowerBand::HundredMilliwattToWatt);
    assert!(mid > band(PowerBand::SubHundredMilliwatt));
    assert!(mid >= band(PowerBand::AboveWatt));
}

#[test]
fn e12_compute_unit_kpis() {
    use flagship2::scf::cluster::ComputeUnit;
    let report = ComputeUnit::prototype().run_transformer_block(&bert_base_block());
    assert!((120.0..=176.0).contains(&report.achieved.value()));
    let tflops_w = report.efficiency.value() / 1000.0;
    assert!((1.2..=1.8).contains(&tflops_w), "efficiency {tflops_w:.2}");
    // Area matches the Fig. 9 figure (~1.21 mm2).
    let area = ComputeUnit::prototype().power_model().area.value();
    assert!((area - 1.21).abs() < 1e-9);
}

#[test]
fn e13_fabric_scales_then_saturates() {
    use flagship2::scf::fabric::scaling_sweep;
    let reports = scaling_sweep(
        &[1, 4, 512],
        &bert_base_block(),
        GigabytesPerSecond::new(410.0),
    )
    .expect("valid sweep");
    assert!(reports[1].achieved.value() / reports[0].achieved.value() > 3.5);
    assert!(reports[2].hbm_bound);
    assert!(
        reports[2].power.value() > 1.0,
        "fabric must enter the >1W regime"
    );
}
