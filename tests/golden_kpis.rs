//! Golden-KPI regression gate.
//!
//! Every registered experiment runs in quick mode with the default seed and
//! a fixed thread budget, and its KPI report is diffed against the snapshot
//! in `tests/golden/<name>.json` using the per-KPI relative tolerance
//! stored in the snapshot.
//!
//! To refresh the snapshots after an intentional modelling change:
//!
//! ```text
//! F2_BLESS=1 cargo test --test golden_kpis
//! ```
//!
//! The bless run rewrites every snapshot and then fails itself with a
//! reminder so a bless can never silently pass in CI.

use std::collections::BTreeSet;
use std::path::PathBuf;

use flagship2::core::experiment::{golden, ExperimentCtx};
use flagship2::core::rng::DEFAULT_SEED;

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden"))
}

#[test]
fn quick_mode_kpis_match_golden_snapshots() {
    let registry = flagship2::experiments::registry();
    let dir = golden_dir();
    let bless = golden::bless_requested();
    let mut failures = Vec::new();
    let mut seen = BTreeSet::new();

    for exp in registry.entries() {
        // The snapshot fidelity: quick, quiet, default seed. Two threads
        // exercise the parallel sweeps, whose results are bit-identical at
        // any worker count.
        let mut ctx = ExperimentCtx::quiet(DEFAULT_SEED, true, 2);
        let report = match exp.run(&mut ctx) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("{}: run failed: {e}", exp.name()));
                continue;
            }
        };
        seen.insert(format!("{}.json", exp.name()));
        let path = golden::snapshot_path(&dir, exp.name());
        if bless {
            golden::save(&path, &report).expect("snapshot dir writable");
            continue;
        }
        match golden::load(&path) {
            Ok(expected) => {
                for diff in golden::compare(&expected, &report) {
                    failures.push(format!("{}: {diff}", exp.name()));
                }
            }
            Err(e) => failures.push(format!(
                "{}: cannot load snapshot: {e}\n  (bless with `F2_BLESS=1 cargo test --test golden_kpis`)",
                exp.name()
            )),
        }
    }

    if bless {
        panic!(
            "snapshots blessed into {}; unset {} and re-run to verify",
            dir.display(),
            golden::BLESS_ENV
        );
    }

    // Orphan snapshots mean an experiment was renamed or removed without
    // updating the goldens — catch that too.
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".json") && !seen.contains(&name) {
                failures.push(format!("orphan snapshot {name}: no such experiment"));
            }
        }
    }

    assert!(
        failures.is_empty(),
        "golden KPI mismatches:\n{}",
        failures.join("\n")
    );
}
