//! Cross-crate integration: flows that span multiple thrust crates through
//! the facade, plus JSON round-trips of the report types.

use flagship2::core::pareto::{DesignSpace, Direction};
use flagship2::core::rng::DEFAULT_SEED;
use flagship2::core::workload::graph::{bfs, rmat};

/// The core DSE engine drives the HLS flow: sweep SPARTA context counts and
/// confirm the Pareto front prefers more contexts only while they pay off.
#[test]
fn core_dse_engine_explores_sparta_configs() {
    use flagship2::core::workload::sparse::SparseMatrix;
    use flagship2::hls::sparta::{run, Kernel, SpartaConfig, WorkloadBuilder};
    let graph = rmat(8, 8, DEFAULT_SEED);
    let wl = WorkloadBuilder::new(&SparseMatrix::from_csr_graph(&graph))
        .kernel(Kernel::Spmv)
        .build();
    let space = DesignSpace::new()
        .axis("contexts", [1.0, 2.0, 4.0, 8.0, 16.0])
        .axis("channels", [1.0, 2.0, 4.0]);
    let sweep = space.sweep(&[Direction::Minimize, Direction::Minimize], |point| {
        let cfg = SpartaConfig {
            accelerators: 2,
            contexts_per_accel: point["contexts"] as usize,
            mem_channels: point["channels"] as usize,
            mem_latency: 100,
            noc_hop_latency: 2,
            context_switch_penalty: 1,
            cache: None,
        };
        let r = run(&wl, &cfg).expect("valid config");
        // Objectives: cycles, hardware cost proxy (contexts × channels).
        vec![
            r.cycles as f64,
            point["contexts"] * 4.0 + point["channels"] * 8.0,
        ]
    });
    assert_eq!(sweep.points().len(), 15);
    let front: Vec<_> = sweep.front_entries().collect();
    assert!(
        front.len() >= 3,
        "expected a trade-off front, got {}",
        front.len()
    );
    // The fastest point on the front uses many contexts.
    let fastest = front
        .iter()
        .min_by(|a, b| a.1[0].partial_cmp(&b.1[0]).expect("finite"))
        .expect("non-empty front");
    assert!(fastest.0["contexts"] >= 8.0);
}

/// The SPARTA accelerator must compute the same BFS reachability the golden
/// software kernel computes (the workload generator walks the same CSR).
#[test]
fn sparta_workload_covers_whole_graph() {
    use flagship2::core::workload::sparse::SparseMatrix;
    use flagship2::hls::sparta::{Kernel, WorkloadBuilder};
    let graph = rmat(8, 4, 3);
    let levels = bfs(&graph, 0);
    let reachable = levels.iter().filter(|&&l| l != usize::MAX).count();
    assert!(reachable > 1, "test graph must be partly connected");
    // One task per vertex in both generated workloads.
    let m = SparseMatrix::from_csr_graph(&graph);
    for kernel in [Kernel::Bfs, Kernel::Spmv] {
        let wl = WorkloadBuilder::new(&m).kernel(kernel).build();
        assert_eq!(wl.tasks.len(), graph.num_nodes());
    }
}

/// Train in float (imc crate), deploy on the IMC tile architecture, and
/// check the energy ledger against the core energy model's invariants.
#[test]
fn imc_deployment_energy_is_dominated_by_analog_macs_not_adc_when_accumulating() {
    use flagship2::core::energy::{OpEnergy, OpKind, TechNode};
    use flagship2::imc::device::DeviceModel;
    use flagship2::imc::eval::{imc_accuracy, make_train_test, train_mlp, DeploymentScenario};
    use flagship2::imc::program::ProgramVerify;
    use flagship2::imc::tile::TileConfig;
    let (train, test) = make_train_test(4, 10, 40, 20, 0.25, 5);
    let mlp = train_mlp(&train, 16, 10, 0.05, 6);
    let scenario = DeploymentScenario {
        device: DeviceModel::rram(),
        inference_time: 1.0,
        tile: TileConfig {
            tile_rows: 16,
            tile_cols: 16,
            adc_bits: 8,
            analog_accumulation: true,
            drift_compensation: false,
        },
    };
    let eval =
        imc_accuracy(&mlp, &test, &scenario, &ProgramVerify::default(), 8).expect("deployable");
    let table = OpEnergy::for_node(TechNode::N45);
    let adc = eval.ledger.energy_of(OpKind::AdcConversion, &table).value();
    let total = eval.ledger.total_energy(&table).value();
    assert!(total > 0.0);
    // With analog accumulation the ADC share stays bounded.
    assert!(adc / total < 0.8, "ADC share {:.2}", adc / total);
    assert!(eval.accuracy > 0.7);
}

/// The transformer workload definition (core) must agree with the CU
/// simulator (scf) on FLOP counts.
#[test]
fn core_and_scf_agree_on_transformer_flops() {
    use flagship2::core::workload::transformer::bert_base_block;
    use flagship2::scf::cluster::ComputeUnit;
    let block = bert_base_block();
    let report = ComputeUnit::prototype().run_transformer_block(&block);
    assert_eq!(report.flops, block.flops().total());
}

/// The RV32 ISS executes a real reduction and matches a host-side result.
#[test]
fn iss_sum_matches_host() {
    use flagship2::scf::cpu::Cpu;
    use flagship2::scf::isa::asm;
    use flagship2::scf::memory::{FlatMemory, Memory};
    let mut mem = FlatMemory::new(64 * 1024);
    let values: Vec<u32> = (0..32).map(|i| i * i + 1).collect();
    for (i, &v) in values.iter().enumerate() {
        mem.store_u32(0x700 + (i as u32) * 4, v).expect("in range");
    }
    let program = [
        asm::addi(1, 0, 0x700), // ptr
        asm::addi(2, 0, 32),    // count
        asm::addi(3, 0, 0),     // acc
        asm::lw(4, 1, 0),
        asm::add(3, 3, 4),
        asm::addi(1, 1, 4),
        asm::addi(2, 2, -1),
        asm::bne(2, 0, -16),
        asm::ecall(),
    ];
    mem.load_program(0, &program);
    let mut cpu = Cpu::new(0);
    cpu.run(&mut mem, 100_000).expect("program halts");
    assert_eq!(cpu.reg(3), values.iter().sum::<u32>());
}

/// Report types serialise to JSON via `f2_core::json::ToJson` and keep the
/// derived traits — the contract downstream tooling relies on.
#[test]
fn reports_are_clonable_comparable_and_serializable() {
    fn assert_traits<T: Clone + PartialEq + flagship2::core::json::ToJson + Send + Sync>() {}
    assert_traits::<flagship2::hls::sparta::SpartaReport>();
    assert_traits::<flagship2::imc::program::ProgramOutcome>();
    assert_traits::<flagship2::approx::htconv::HtconvStats>();
    assert_traits::<flagship2::dna::pipeline::PipelineReport>();
    assert_traits::<flagship2::hetero::pipeline::PipelineReport>();
    assert_traits::<flagship2::scf::cluster::BlockReport>();
    assert_traits::<flagship2::scf::fabric::FabricReport>();
}

/// A serialised report must parse back into an equivalent JSON document with
/// its fields intact.
#[test]
fn report_json_round_trips() {
    use flagship2::core::json::{Json, ToJson};
    use flagship2::core::workload::sparse::SparseMatrix;
    use flagship2::hls::sparta::{run, SpartaConfig, WorkloadBuilder};
    let graph = rmat(6, 4, DEFAULT_SEED);
    let wl = WorkloadBuilder::new(&SparseMatrix::from_csr_graph(&graph)).build();
    let report = run(&wl, &SpartaConfig::sequential_baseline(100)).expect("valid config");
    let doc = report.to_json();
    let parsed = Json::parse(&doc.encode()).expect("well-formed");
    assert_eq!(parsed, doc);
    assert_eq!(
        parsed.get("cycles").and_then(Json::as_f64),
        Some(report.cycles as f64)
    );
}

/// The hetero campaign, the rotation-coded DNA pipeline and the vectorised
/// CU all run end-to-end through the facade.
#[test]
fn new_subsystem_flows_compose() {
    // Campaign query helpers.
    use flagship2::hetero::campaign::run_campaign;
    use flagship2::hetero::device::Phase;
    use flagship2::hetero::pipeline::PipelineSpec;
    let campaign = run_campaign(&PipelineSpec::segmentation_default());
    assert_eq!(campaign.entries.len(), 30);
    assert!(campaign.fastest(Phase::Training).is_some());

    // Constraint-compliant DNA archive.
    use flagship2::dna::codec::{decode_constrained, encode_constrained, CodecConfig};
    use flagship2::dna::constraints::max_homopolymer;
    let payload = b"homopolymer-free archive";
    let archive = encode_constrained(payload, CodecConfig::default()).expect("encodable");
    assert!(archive.strands.iter().all(|s| max_homopolymer(s) == 1));
    let (decoded, _) = decode_constrained(&archive.strands, archive.payload_len, archive.config)
        .expect("decodable");
    assert_eq!(decoded, payload);

    // Vector-augmented CU still agrees with the workload FLOP count.
    use flagship2::core::workload::transformer::bert_base_block;
    use flagship2::scf::cluster::{ComputeUnit, CuConfig};
    use flagship2::scf::power::CuPowerModel;
    let cu = ComputeUnit::new(
        CuConfig::prototype_with_vector(),
        CuPowerModel::gf12_prototype(),
    )
    .expect("valid");
    let r = cu.run_transformer_block(&bert_base_block());
    assert_eq!(r.flops, bert_base_block().flops().total());
}

/// Loop pipelining and the AXI interface model compose into a throughput
/// estimate: iterations/s = fmax / II, bounded by the AXI feed rate.
#[test]
fn pipelined_kernel_with_axi_feed() {
    use flagship2::hls::interface::Axi4Master;
    use flagship2::hls::pipeline::{mac_loop_kernel, modulo_schedule};
    use flagship2::hls::schedule::{OpLatency, ResourceBudget};
    let schedule = modulo_schedule(
        &mac_loop_kernel(),
        &OpLatency::default(),
        &ResourceBudget::new(2, 2, 2),
    )
    .expect("feasible");
    assert_eq!(schedule.ii(), 1);
    // Each iteration consumes 8 bytes (two 32-bit operands).
    let n = 1_000_000u64;
    let compute_cycles = schedule.total_cycles(n);
    // A wide 64-byte AXI port feeds the II=1 datapath easily…
    let wide = Axi4Master::hls_default();
    assert!(wide.transfer_cycles(8 * n) < compute_cycles);
    // …but a 4-byte port cannot: the interface becomes the bottleneck —
    // the insight interface DSE exists for.
    let narrow = Axi4Master {
        data_bytes: 4,
        ..Axi4Master::hls_default()
    };
    assert!(narrow.transfer_cycles(8 * n) > compute_cycles);
}

/// Fixed-point and bf16 formats from core behave consistently when both are
/// used to quantise the same image (approx crate).
#[test]
fn numeric_formats_compose_on_images() {
    use flagship2::approx::image::Image;
    use flagship2::core::bf16::Bf16;
    use flagship2::core::fixed::QFormat;
    let img = Image::synthetic(16, 16, 3);
    let q = QFormat::new(16, 12).expect("valid format");
    let fixed = img.quantized(q);
    for (a, b) in img.as_slice().iter().zip(fixed.as_slice()) {
        assert!((a - b).abs() <= q.resolution());
        let bf = Bf16::from_f64(*a).to_f64();
        assert!((a - bf).abs() < 0.01);
    }
}
