//! Hermeticity guard: the workspace must stay zero-dependency.
//!
//! Every crate manifest is parsed and any dependency that is not an in-tree
//! `f2-*` path crate (or the `flagship2` facade itself) fails the test. This
//! is what keeps `cargo build` working on an air-gapped machine — the
//! property the whole CI pipeline is built on. If you are reading this
//! because the test failed: the fix is to extend `f2-core`, not to add the
//! external crate.

use std::path::PathBuf;

/// Manifest sections whose entries are dependencies.
const DEP_SECTIONS: &[&str] = &[
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn manifest_paths() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut paths = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates).expect("crates/ directory exists");
    for entry in entries {
        let manifest = entry.expect("readable dir entry").path().join("Cargo.toml");
        assert!(
            manifest.is_file(),
            "every crates/ entry must be a crate: {manifest:?}"
        );
        paths.push(manifest);
    }
    assert!(paths.len() >= 9, "expected the full 8-crate workspace");
    paths
}

/// Extracts `(section, dependency-name)` pairs from a manifest. Handles the
/// two forms the workspace uses: `name = ...` lines under a `[section]`
/// header, and `[section.name]` table headers.
fn dependencies_of(text: &str) -> Vec<(String, String)> {
    let mut deps = Vec::new();
    let mut section: Option<String> = None;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            let header = &line[1..line.len() - 1];
            section = None;
            for s in DEP_SECTIONS {
                if header == *s {
                    section = Some((*s).to_string());
                } else if let Some(name) = header.strip_prefix(&format!("{s}.")) {
                    // [dependencies.foo] style: the header itself is a dep.
                    deps.push(((*s).to_string(), name.to_string()));
                }
            }
            continue;
        }
        if let Some(s) = &section {
            if let Some((key, _)) = line.split_once('=') {
                // `f2-core.workspace = true` names the dependency `f2-core`.
                let name = key.trim().trim_matches('"');
                let name = name.split('.').next().unwrap_or(name);
                deps.push((s.clone(), name.to_string()));
            }
        }
    }
    deps
}

fn is_in_tree(name: &str) -> bool {
    name.starts_with("f2-") || name == "flagship2"
}

#[test]
fn workspace_has_no_external_dependencies() {
    for manifest in manifest_paths() {
        let text = std::fs::read_to_string(&manifest).expect("readable manifest");
        for (section, name) in dependencies_of(&text) {
            assert!(
                is_in_tree(&name),
                "{}: [{section}] pulls in external crate `{name}` — the \
                 workspace is hermetic by design; extend f2-core instead",
                manifest.display()
            );
        }
    }
}

#[test]
fn in_tree_dependencies_are_path_only() {
    // The workspace dependency table must declare f2-* crates via `path`,
    // never by registry version.
    let root = workspace_root().join("Cargo.toml");
    let text = std::fs::read_to_string(root).expect("readable manifest");
    for (section, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.starts_with("f2-") && line.contains('=') {
            assert!(
                line.contains("path") || line.contains(".workspace"),
                "workspace Cargo.toml line {}: `{line}` must be a path dependency",
                section + 1
            );
        }
    }
}

#[test]
fn dependency_parser_sees_all_section_forms() {
    let text = r#"
[package]
name = "demo"

[dependencies]
f2-core.workspace = true
serde = "1"

[dev-dependencies.proptest]
version = "1"

[target.x.dependencies]
ignored = "0"
"#;
    let deps = dependencies_of(text);
    assert!(deps.contains(&("dependencies".into(), "f2-core".into())));
    assert!(deps.contains(&("dependencies".into(), "serde".into())));
    assert!(deps.contains(&("dev-dependencies".into(), "proptest".into())));
    // `name = "demo"` under [package] must not be reported.
    assert!(!deps.iter().any(|(_, n)| n == "demo"));
}

#[test]
fn guard_catches_this_workspace_if_it_regresses() {
    // Self-check on the real root manifest: it must contain dependencies at
    // all (otherwise the guard guards nothing).
    let text = std::fs::read_to_string(workspace_root().join("Cargo.toml")).expect("readable");
    let deps = dependencies_of(&text);
    assert!(
        deps.iter().filter(|(_, n)| n.starts_with("f2-")).count() >= 7,
        "root manifest should declare the seven f2-* crates, got {deps:?}"
    );
}
